//! A minimal row-store table with the operators the paper's plans need:
//! scan, filter, projection, hash (equi) self-join and sort-merge
//! interval join. Every operator reports the number of rows it touched,
//! which is the cost unit of experiment X14.

use crate::value::Value;
use std::collections::HashMap;

/// One relation.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Empty table with a schema.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Table {
            name: name.to_owned(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column index by name.
    ///
    /// # Panics
    /// Panics on an unknown column (schema errors are programming errors
    /// in this embedded setting).
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.name))
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn insert(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch for {}",
            self.name
        );
        self.rows.push(row);
    }

    /// Borrow the raw rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Filter into a new table; `touched` counts scanned rows.
    pub fn filter<F: Fn(&[Value]) -> bool>(&self, pred: F, touched: &mut u64) -> Table {
        let mut out = Table::new(&format!("σ({})", self.name), &self.column_refs());
        for row in &self.rows {
            *touched += 1;
            if pred(row) {
                out.rows.push(row.clone());
            }
        }
        out
    }

    /// Select rows whose `column` equals `value` (index-free scan).
    pub fn filter_eq(&self, column: &str, value: &Value, touched: &mut u64) -> Table {
        let idx = self.col(column);
        self.filter(|row| &row[idx] == value, touched)
    }

    /// Hash equi-join: rows of `self` joined with rows of `right` where
    /// `self.left_key == right.right_key`. Output columns are the
    /// concatenation. `touched` counts build+probe rows.
    pub fn hash_join(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
        touched: &mut u64,
    ) -> Table {
        let lk = self.col(left_key);
        let rk = right.col(right_key);
        let mut cols: Vec<String> = self.columns.iter().map(|c| format!("l.{c}")).collect();
        cols.extend(right.columns.iter().map(|c| format!("r.{c}")));
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut out = Table::new(&format!("({} ⋈ {})", self.name, right.name), &col_refs);
        // Build on the smaller side for form; probe with the other.
        let mut build: HashMap<&Value, Vec<&Vec<Value>>> = HashMap::new();
        for row in &self.rows {
            *touched += 1;
            if !row[lk].is_null() {
                build.entry(&row[lk]).or_default().push(row);
            }
        }
        for rrow in &right.rows {
            *touched += 1;
            if let Some(matches) = build.get(&rrow[rk]) {
                for lrow in matches {
                    let mut joined = (*lrow).clone();
                    joined.extend(rrow.iter().cloned());
                    out.rows.push(joined);
                }
            }
        }
        out
    }

    /// Sort-merge **interval containment join** — the paper's "exactly
    /// one self-join with label comparisons as predicates". Joins each
    /// row of `inner` (candidate descendants) to any row of `self`
    /// (candidate ancestors) with
    /// `self.begin < inner.begin && inner.end < self.end`,
    /// returning the matching `inner` rows (set semantics, document
    /// order). Both inputs are sorted by `begin` internally.
    pub fn interval_containment_semijoin(
        &self,
        inner: &Table,
        begin_col: &str,
        end_col: &str,
        touched: &mut u64,
    ) -> Table {
        let (ob, oe) = (self.col(begin_col), self.col(end_col));
        let (ib, ie) = (inner.col(begin_col), inner.col(end_col));
        let mut outer_idx: Vec<(u128, u128)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r[ob].as_big().expect("begin is Big"),
                    r[oe].as_big().expect("end is Big"),
                )
            })
            .collect();
        outer_idx.sort_unstable();
        let mut inner_rows: Vec<(u128, u128, &Vec<Value>)> = inner
            .rows
            .iter()
            .map(|r| {
                (
                    r[ib].as_big().expect("begin is Big"),
                    r[ie].as_big().expect("end is Big"),
                    r,
                )
            })
            .collect();
        inner_rows.sort_unstable_by_key(|&(b, ..)| b);
        *touched += (self.rows.len() + inner.rows.len()) as u64;

        let mut out = Table::new(
            &format!("({} ⊇ {})", self.name, inner.name),
            &inner.column_refs(),
        );
        let mut stack: Vec<(u128, u128)> = Vec::new();
        let mut oi = 0usize;
        for (b, e, row) in inner_rows {
            while oi < outer_idx.len() && outer_idx[oi].0 < b {
                let a = outer_idx[oi];
                oi += 1;
                while let Some(&top) = stack.last() {
                    if top.1 < a.0 {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(a);
            }
            while let Some(&top) = stack.last() {
                if top.1 < b {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                if b > top.0 && e < top.1 {
                    out.rows.push(row.clone());
                }
            }
        }
        out
    }

    /// Keep only the given columns (by name), in order.
    pub fn project(&self, keep: &[&str]) -> Table {
        let idxs: Vec<usize> = keep.iter().map(|c| self.col(c)).collect();
        let mut out = Table::new(&format!("π({})", self.name), keep);
        for row in &self.rows {
            out.rows
                .push(idxs.iter().map(|&i| row[i].clone()).collect());
        }
        out
    }

    /// Sort by a column (ascending) and drop duplicate rows.
    pub fn sort_dedup_by(&mut self, column: &str) {
        let idx = self.col(column);
        self.rows.sort_by(|a, b| a[idx].cmp(&b[idx]));
        self.rows.dedup();
    }

    /// Rename (used by self-join plans to keep names readable).
    pub fn renamed(mut self, name: &str) -> Table {
        self.name = name.to_owned();
        self
    }

    /// Strip join prefixes like `l.`/`r.` back to plain names, keeping
    /// the **last** occurrence of duplicated names.
    pub fn strip_prefixes(mut self) -> Table {
        for c in &mut self.columns {
            if let Some(stripped) = c.rsplit('.').next() {
                *c = stripped.to_owned();
            }
        }
        self
    }

    fn column_refs(&self) -> Vec<&str> {
        self.columns.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new("people", &["id", "name", "boss"]);
        t.insert(vec![Value::Int(1), "ada".into(), Value::Null]);
        t.insert(vec![Value::Int(2), "bob".into(), Value::Int(1)]);
        t.insert(vec![Value::Int(3), "eve".into(), Value::Int(1)]);
        t.insert(vec![Value::Int(4), "kim".into(), Value::Int(2)]);
        t
    }

    #[test]
    fn filter_and_project() {
        let t = people();
        let mut touched = 0;
        let bosses = t.filter_eq("boss", &Value::Int(1), &mut touched);
        assert_eq!(bosses.len(), 2);
        assert_eq!(touched, 4);
        let names = bosses.project(&["name"]);
        assert_eq!(names.rows()[0][0], Value::from("bob"));
        assert_eq!(names.columns(), &["name".to_string()]);
    }

    #[test]
    fn hash_self_join_finds_reports() {
        // One self-join per parent-child step, exactly like the edge
        // table approach of the paper.
        let t = people();
        let mut touched = 0;
        let joined = t.hash_join(&t, "id", "boss", &mut touched);
        // ada->bob, ada->eve, bob->kim.
        assert_eq!(joined.len(), 3);
        assert_eq!(touched, 8, "build + probe each row once");
    }

    #[test]
    fn interval_join_matches_containment() {
        let mut outer = Table::new("anc", &["begin", "end"]);
        outer.insert(vec![Value::Big(0), Value::Big(100)]);
        outer.insert(vec![Value::Big(10), Value::Big(20)]);
        let mut inner = Table::new("desc", &["begin", "end"]);
        inner.insert(vec![Value::Big(11), Value::Big(12)]); // in both
        inner.insert(vec![Value::Big(50), Value::Big(60)]); // in first only
        inner.insert(vec![Value::Big(200), Value::Big(201)]); // in none
        let mut touched = 0;
        let out = outer.interval_containment_semijoin(&inner, "begin", "end", &mut touched);
        assert_eq!(out.len(), 2);
        assert!(touched >= 5);
    }

    #[test]
    fn sort_dedup() {
        let mut t = Table::new("t", &["v"]);
        t.insert(vec![Value::Int(3)]);
        t.insert(vec![Value::Int(1)]);
        t.insert(vec![Value::Int(3)]);
        t.sort_dedup_by("v");
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "has no column")]
    fn unknown_column_panics() {
        people().col("nope");
    }
}
