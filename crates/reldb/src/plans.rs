//! The two query plans of the paper's introduction, side by side.
//!
//! Query shape: `//a₁//a₂//…//aₖ` — find all elements with tag `aₖ` that
//! have an `aₖ₋₁` ancestor which has an `aₖ₋₂` ancestor, and so on.
//!
//! * **Edge plan**: the descendant axis over the `edge(id, parent, tag)`
//!   table has no direct operator — it must transitively close the
//!   parent relation, "many self-joins" (one per tree level).
//! * **Region plan**: each `//` step is *one* sort-merge interval
//!   containment join over `(begin, end)` — "exactly one self-join with
//!   label comparisons as predicates".

use crate::shred::{EdgeTable, RegionTable};
use crate::table::Table;
use crate::value::Value;

/// What a plan did, for the X14 table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// Plan name.
    pub plan: &'static str,
    /// Node ids of the final result, sorted ascending.
    pub result_ids: Vec<i64>,
    /// Rows touched by all operators (the paper's cost unit).
    pub rows_touched: u64,
    /// Number of join operators executed.
    pub joins: u64,
}

/// Evaluate `//a₁//…//aₖ` over the edge table by fixpoint self-joins:
/// every descendant step closes the parent relation level by level
/// (`max_depth` bounds the iteration — the document height).
pub fn descendants_via_edge_joins(edge: &EdgeTable, tags: &[&str], max_depth: usize) -> PlanReport {
    let table = &edge.0;
    let mut touched = 0u64;
    let mut joins = 0u64;
    // Current frontier: ids whose subtrees we are inside of.
    let mut frontier = table
        .filter_eq("tag", &Value::from(tags[0]), &mut touched)
        .project(&["id"]);
    for tag in &tags[1..] {
        // Descendants of the frontier: iterate child self-joins to a
        // fixpoint (bounded by the document height).
        let mut reachable = Table::new("reach", &["id"]);
        let mut current = frontier.renamed("cur");
        for _ in 0..max_depth {
            if current.is_empty() {
                break;
            }
            // child step: edge.parent IN current.id — one self-join.
            joins += 1;
            let children = current
                .hash_join(table, "id", "parent", &mut touched)
                .project(&["r.id"])
                .strip_prefixes();
            let mut next = Table::new("cur", &["id"]);
            for row in children.rows() {
                reachable.insert(row.clone());
                next.insert(row.clone());
            }
            next.sort_dedup_by("id");
            current = next;
        }
        reachable.sort_dedup_by("id");
        // Filter the reachable set by the step's tag (join with edge).
        joins += 1;
        let joined = reachable.hash_join(table, "id", "id", &mut touched);
        let tag_idx = joined.col("r.tag");
        frontier = joined
            .filter(|row| row[tag_idx].as_str() == Some(*tag), &mut touched)
            .project(&["l.id"])
            .strip_prefixes();
        frontier.sort_dedup_by("id");
    }
    let id = frontier.col("id");
    let mut result_ids: Vec<i64> = frontier
        .rows()
        .iter()
        .map(|r| r[id].as_int().expect("id is Int"))
        .collect();
    result_ids.sort_unstable();
    result_ids.dedup();
    PlanReport {
        plan: "edge self-joins",
        result_ids,
        rows_touched: touched,
        joins,
    }
}

/// Evaluate `//a₁//…//aₖ` over the region table: one tag selection per
/// step plus one interval containment join per `//`.
pub fn descendants_via_region_join(region: &RegionTable, tags: &[&str]) -> PlanReport {
    let table = &region.0;
    let mut touched = 0u64;
    let mut joins = 0u64;
    let mut frontier = table.filter_eq("tag", &Value::from(tags[0]), &mut touched);
    for tag in &tags[1..] {
        let candidates = table.filter_eq("tag", &Value::from(*tag), &mut touched);
        joins += 1;
        frontier =
            frontier.interval_containment_semijoin(&candidates, "begin", "end", &mut touched);
    }
    let id = frontier.col("id");
    let mut result_ids: Vec<i64> = frontier
        .rows()
        .iter()
        .map(|r| r[id].as_int().expect("id is Int"))
        .collect();
    result_ids.sort_unstable();
    result_ids.dedup();
    PlanReport {
        plan: "region interval join",
        result_ids,
        rows_touched: touched,
        joins,
    }
}

#[cfg(test)]
mod tests {
    use crate::shred::shred;
    use ltree_core::{LTree, Params};
    use xmldb::Document;

    use super::*;

    fn doc() -> Document<LTree> {
        Document::parse_str(
            "<site><regions><europe><item><name>n1</name></item></europe>\
             <asia><item><name>n2</name></item></asia></regions>\
             <people><person><name>n3</name></person></people></site>",
            LTree::new(Params::new(4, 2).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn plans_agree_and_match_ground_truth() {
        let d = doc();
        let (edge, region) = shred(&d);
        for tags in [
            &["site", "item"][..],
            &["regions", "name"][..],
            &["site", "regions", "item", "name"][..],
        ] {
            let e = descendants_via_edge_joins(&edge, tags, 8);
            let r = descendants_via_region_join(&region, tags);
            assert_eq!(e.result_ids, r.result_ids, "plans disagree on {tags:?}");
            // Ground truth through the DOM query engine.
            let path = format!("//{}", tags.join("//"));
            let truth = xmldb::Path::parse(&path)
                .unwrap()
                .eval_navigational(&d)
                .unwrap()
                .iter()
                .map(|id| i64::from(id.raw()))
                .collect::<std::collections::BTreeSet<i64>>();
            let got: std::collections::BTreeSet<i64> = e.result_ids.iter().copied().collect();
            assert_eq!(got, truth, "plan result wrong for {path}");
        }
    }

    #[test]
    fn region_plan_uses_one_join_per_step() {
        let d = doc();
        let (edge, region) = shred(&d);
        let tags = ["site", "regions", "item"];
        let e = descendants_via_edge_joins(&edge, &tags, 8);
        let r = descendants_via_region_join(&region, &tags);
        assert_eq!(r.joins, 2, "one interval join per // step");
        assert!(
            e.joins > r.joins,
            "edge plan needs a join per level per step"
        );
        assert!(e.rows_touched > r.rows_touched, "and touches more rows");
    }

    #[test]
    fn missing_tags_yield_empty_results() {
        let d = doc();
        let (edge, region) = shred(&d);
        let tags = ["site", "nonexistent"];
        let e = descendants_via_edge_joins(&edge, &tags, 8);
        let r = descendants_via_region_join(&region, &tags);
        assert!(e.result_ids.is_empty());
        assert!(r.result_ids.is_empty());
    }
}
