//! # `reldb` — the relational storage context of the paper
//!
//! The L-Tree paper's introduction is set inside an RDBMS storing XML:
//!
//! * the **edge table** approach (\[11\] Florescu/Kossmann) "generated a
//!   tuple for every XML node with its parent node identifier … to
//!   process queries with structural navigation, one self-join is needed
//!   to obtain each parent-child relationship", and "to answer
//!   descendant-axis `//` … many self-joins are needed";
//! * the **region-label** approach (Figure 1, \[17\] Zhang et al.) stores
//!   `(begin, end)` per node so that "ancestor-descendant queries can be
//!   processed by exactly one self-join with label comparisons as
//!   predicates, which is as efficient as child-axis".
//!
//! This crate is that substrate, built from scratch: a tiny in-memory
//! row-store with scans, filters, hash self-joins and a sort-merge
//! interval join; a shredder that turns any labeled
//! [`xmldb::Document`] into the two relational layouts; and the two query
//! plans the paper contrasts. Experiment X14 regenerates the comparison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod plans;
pub mod shred;
pub mod table;
pub mod value;

pub use plans::{descendants_via_edge_joins, descendants_via_region_join, PlanReport};
pub use shred::{shred, EdgeTable, RegionTable};
pub use table::Table;
pub use value::Value;
