//! Shredding a labeled XML document into the two relational layouts the
//! paper's introduction compares.

use crate::table::Table;
use crate::value::Value;
use ltree_core::LabelingScheme;
use xmldb::Document;

/// The edge-table layout of Florescu/Kossmann (\[11\] in the paper):
/// `node(id, parent, tag)`.
pub struct EdgeTable(pub Table);

/// The region layout of Figure 1 / \[17\]: `node(id, tag, begin, end,
/// depth)`.
pub struct RegionTable(pub Table);

/// Shred `doc` into both layouts. Node ids are the DOM ids, so results
/// can be compared across plans and against the DOM ground truth.
pub fn shred<S: LabelingScheme>(doc: &Document<S>) -> (EdgeTable, RegionTable) {
    let mut edge = Table::new("edge", &["id", "parent", "tag"]);
    let mut region = Table::new("region", &["id", "tag", "begin", "end", "depth"]);
    for id in doc.tree().all_elements() {
        let tag = doc.tree().tag_name(id).expect("live element");
        let parent = match doc.tree().parent(id).expect("live element") {
            Some(p) => Value::Int(i64::from(p.raw())),
            None => Value::Null,
        };
        edge.insert(vec![Value::Int(i64::from(id.raw())), parent, tag.into()]);
        let (b, e) = doc.span(id).expect("labeled element");
        region.insert(vec![
            Value::Int(i64::from(id.raw())),
            tag.into(),
            Value::Big(b),
            Value::Big(e),
            Value::Int(i64::from(doc.depth(id).expect("labeled element"))),
        ]);
    }
    (EdgeTable(edge), RegionTable(region))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{LTree, Params};

    fn doc() -> Document<LTree> {
        Document::parse_str(
            "<book><chapter><title>t</title></chapter><title>top</title></book>",
            LTree::new(Params::new(4, 2).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn shreds_every_element_once() {
        let d = doc();
        let (EdgeTable(edge), RegionTable(region)) = shred(&d);
        assert_eq!(edge.len(), 4);
        assert_eq!(region.len(), 4);
        // Exactly one root row (NULL parent).
        let mut touched = 0;
        let roots = edge.filter(|r| r[1].is_null(), &mut touched);
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn region_rows_carry_document_order() {
        let d = doc();
        let (_, RegionTable(region)) = shred(&d);
        let b = region.col("begin");
        let mut begins: Vec<u128> = region
            .rows()
            .iter()
            .map(|r| r[b].as_big().unwrap())
            .collect();
        let sorted = {
            let mut s = begins.clone();
            s.sort_unstable();
            s
        };
        begins.sort_unstable();
        assert_eq!(begins, sorted);
    }
}
