//! Cell values for the row store.

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit integer (node ids, depths).
    Int(i64),
    /// 128-bit unsigned integer (region labels).
    Big(u128),
    /// Interned-ish string (tag names).
    Str(String),
    /// SQL-ish NULL (absent parent, etc.).
    Null,
}

impl Value {
    /// The contained `i64`, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained `u128`, if this is a [`Value::Big`].
    pub fn as_big(&self) -> Option<u128> {
        match self {
            Value::Big(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => v.fmt(f),
            Value::Big(v) => v.fmt(f),
            Value::Str(s) => s.fmt(f),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u128> for Value {
    fn from(v: u128) -> Self {
        Value::Big(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_big(), None);
        assert_eq!(Value::Big(9).as_big(), Some(9));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn ordering_within_variants() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Big(1) < Value::Big(2));
    }
}
