//! # `ltree-tuning` — choosing `(f, s)` (paper, Section 3.2)
//!
//! The paper derives exact cost and label-width formulas and then tunes
//! the two L-Tree parameters for three application settings:
//!
//! 1. **Minimize the update cost** — unconstrained minimization of
//!    `cost(f, s, n)` (the paper solves `∂cost/∂f = ∂cost/∂s = 0`);
//! 2. **Minimize the update cost for a given number of bits** — the
//!    constrained problem `min cost s.t. bits ≤ β`, solved by checking
//!    whether the interior optimum is feasible and otherwise optimizing
//!    on the boundary `bits = β` (the paper uses a Lagrange multiplier);
//! 3. **Minimize the overall cost of queries and updates** — a workload-
//!    weighted sum where a label comparison is free while labels fit a
//!    machine word and costs proportionally more beyond it.
//!
//! We solve all three numerically and *integer-feasibly*: the returned
//! `(f, s)` always satisfies the structural requirements (`s ≥ 2`,
//! `f = s·a`, `a ≥ 2`), so the result can be fed straight into
//! [`ltree_core::LTree`]. A continuous optimizer (golden-section on both
//! axes) is also provided; the tests verify the integer grid answer
//! brackets it.
//!
//! ```
//! use ltree_tuning::optimize_cost;
//!
//! let tuned = optimize_cost(100_000);
//! // For n = 1e5 the model favours a small split width and moderate arity.
//! assert!(tuned.params.s() >= 2);
//! assert!(tuned.predicted_cost > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use ltree_core::cost_model::{amortized_cost, label_bits, overall_cost};
use ltree_core::Params;

/// Search bounds: arity and split width up to 64, fanout up to 4096.
const MAX_A: u32 = 64;
const MAX_S: u32 = 64;
const MAX_F: u32 = 4096;

/// A tuned parameter choice with its model predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// The integer-feasible parameters.
    pub params: Params,
    /// Predicted amortized insertion cost (node accesses).
    pub predicted_cost: f64,
    /// Predicted label width in bits.
    pub predicted_bits: f64,
}

/// Errors from the constrained optimizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningError {
    /// No integer-feasible `(f, s)` satisfies the bit budget for this `n`.
    NoFeasibleParams {
        /// The bit budget that could not be met.
        max_bits: u32,
    },
}

impl std::fmt::Display for TuningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuningError::NoFeasibleParams { max_bits } => {
                write!(
                    f,
                    "no (f, s) meets the {max_bits}-bit label budget at this document size"
                )
            }
        }
    }
}

impl std::error::Error for TuningError {}

/// A query/update workload description for the third tuning mode.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Current / expected document size in tags.
    pub n: u64,
    /// Average number of label comparisons issued per update.
    pub queries_per_update: f64,
    /// Machine word width (label comparisons are free up to this).
    pub word_bits: u32,
}

fn grid<F: FnMut(Params, f64, f64) -> Option<f64>>(n: u64, mut score: F) -> Option<TunedParams> {
    let nf = (n.max(2)) as f64;
    let mut best: Option<(f64, TunedParams)> = None;
    for s in 2..=MAX_S {
        for a in 2..=MAX_A {
            let f = s * a;
            if f > MAX_F {
                break;
            }
            let Ok(params) = Params::new(f, s) else {
                continue;
            };
            let cost = amortized_cost(f as f64, s as f64, nf);
            let bits = label_bits(f as f64, s as f64, nf);
            let Some(sc) = score(params, cost, bits) else {
                continue;
            };
            let candidate = TunedParams {
                params,
                predicted_cost: cost,
                predicted_bits: bits,
            };
            match &best {
                Some((b, _)) if *b <= sc => {}
                _ => best = Some((sc, candidate)),
            }
        }
    }
    best.map(|(_, t)| t)
}

/// Mode 1 — minimize the amortized update cost (paper: "Minimize the
/// Update Cost"). Always succeeds.
pub fn optimize_cost(n: u64) -> TunedParams {
    grid(n, |_, cost, _| Some(cost)).expect("unconstrained grid is never empty")
}

/// Mode 2 — minimize the update cost subject to `bits(f,s,n) ≤ max_bits`
/// (paper: "Minimize the Update Cost for Given Number of Bits").
///
/// Mirrors the paper's procedure: if the interior (unconstrained) optimum
/// satisfies the budget it is returned directly; otherwise the optimum is
/// sought along the feasible region whose active boundary is
/// `bits = max_bits`.
pub fn optimize_cost_with_bits(n: u64, max_bits: u32) -> Result<TunedParams, TuningError> {
    // Feasibility uses the *integer-height* width (what a real tree of
    // size n needs) alongside the continuous model, which can undershoot
    // by a fraction of a level.
    let feasible = |p: Params, bits: f64| {
        bits <= f64::from(max_bits) && ltree_core::cost_model::label_bits_integer(&p, n) <= max_bits
    };
    let unconstrained = optimize_cost(n);
    if feasible(unconstrained.params, unconstrained.predicted_bits) {
        return Ok(unconstrained);
    }
    grid(
        n,
        |p, cost, bits| if feasible(p, bits) { Some(cost) } else { None },
    )
    .ok_or(TuningError::NoFeasibleParams { max_bits })
}

/// Mode 3 — minimize the workload-weighted overall cost (paper:
/// "Minimize the Overall Cost of Query and Updates").
pub fn optimize_workload(w: &Workload) -> TunedParams {
    let nf = (w.n.max(2)) as f64;
    grid(w.n, |p, _, _| {
        Some(overall_cost(
            f64::from(p.f()),
            f64::from(p.s()),
            nf,
            w.queries_per_update,
            w.word_bits,
        ))
    })
    .expect("unconstrained grid is never empty")
}

/// Continuous (real-valued) minimizer of `cost(s·a, s, n)` via nested
/// golden-section search — the numeric analogue of the paper's
/// `∂cost/∂f = ∂cost/∂s = 0`. Returns `(f, s)`.
pub fn continuous_optimum(n: f64) -> (f64, f64) {
    let cost_of = |a: f64, s: f64| amortized_cost(a * s, s, n);
    let best_a_for = |s: f64| golden_min(2.0, MAX_A as f64, |a| cost_of(a, s));
    let s = golden_min(2.0, MAX_S as f64, |s| {
        let a = best_a_for(s);
        cost_of(a, s)
    });
    let a = best_a_for(s);
    (a * s, s)
}

/// For a fixed `s`, find the arity `a` on the bit-budget boundary
/// `bits(s·a, s, n) = beta` by bisection (larger arity ⇒ fewer bits).
/// Returns `None` when even the widest arity exceeds the budget.
pub fn boundary_arity(n: f64, beta: f64, s: f64) -> Option<f64> {
    let bits_of = |a: f64| label_bits(a * s, s, n);
    if bits_of(MAX_A as f64) > beta {
        return None;
    }
    if bits_of(2.0) <= beta {
        return Some(2.0);
    }
    let (mut lo, mut hi) = (2.0f64, MAX_A as f64); // bits(lo) > beta >= bits(hi)
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if bits_of(mid) > beta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

fn golden_min<F: Fn(f64) -> f64>(mut lo: f64, mut hi: f64, f: F) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let mut c = hi - PHI * (hi - lo);
    let mut d = lo + PHI * (hi - lo);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..120 {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + PHI * (hi - lo);
            fd = f(d);
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_is_locally_optimal_on_the_grid() {
        for n in [1_000u64, 100_000, 10_000_000] {
            let t = optimize_cost(n);
            let nf = n as f64;
            let (f, s) = (t.params.f(), t.params.s());
            let a = t.params.arity();
            // Every integer-feasible neighbour must be no better.
            for (da, ds) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1), (1, 1), (-1, -1)] {
                let (na, ns) = (a as i64 + da, s as i64 + ds);
                if na < 2 || ns < 2 {
                    continue;
                }
                let (nf_, ns_) = ((na * ns) as f64, ns as f64);
                let neighbour = amortized_cost(nf_, ns_, nf);
                assert!(
                    t.predicted_cost <= neighbour + 1e-9,
                    "n={n}: ({f},{s}) cost {} beaten by neighbour ({},{}) cost {}",
                    t.predicted_cost,
                    na * ns,
                    ns,
                    neighbour
                );
            }
        }
    }

    #[test]
    fn grid_brackets_continuous_optimum() {
        let n = 1e6;
        let (cf, cs) = continuous_optimum(n);
        let continuous_cost = amortized_cost(cf, cs, n);
        let t = optimize_cost(1_000_000);
        // Integer rounding loses little.
        assert!(t.predicted_cost <= continuous_cost * 1.25 + 2.0);
        assert!(
            t.predicted_cost + 1e-9 >= continuous_cost,
            "grid cannot beat the continuous min"
        );
    }

    #[test]
    fn bit_budget_is_respected() {
        let n = 100_000u64;
        for beta in [40u32, 48, 64, 96, 128] {
            match optimize_cost_with_bits(n, beta) {
                Ok(t) => {
                    assert!(
                        t.predicted_bits <= f64::from(beta) + 1e-9,
                        "budget {beta} violated: {}",
                        t.predicted_bits
                    );
                }
                Err(TuningError::NoFeasibleParams { .. }) => {
                    // Acceptable only for tiny budgets.
                    assert!(beta < 48, "budget {beta} should be feasible at n = 1e5");
                }
            }
        }
    }

    #[test]
    fn tight_budget_costs_more() {
        let n = 1_000_000u64;
        let loose = optimize_cost_with_bits(n, 127).unwrap();
        let tight = optimize_cost_with_bits(n, 48).unwrap();
        assert!(
            tight.predicted_cost >= loose.predicted_cost,
            "a tighter bit budget cannot reduce the optimum"
        );
    }

    #[test]
    fn infeasible_budget_errors() {
        let e = optimize_cost_with_bits(u64::MAX / 2, 8).unwrap_err();
        assert!(matches!(e, TuningError::NoFeasibleParams { max_bits: 8 }));
        assert!(e.to_string().contains("8-bit"));
    }

    #[test]
    fn boundary_arity_sits_on_the_budget() {
        let (n, beta, s) = (1e6, 50.0, 2.0);
        let a = boundary_arity(n, beta, s).unwrap();
        let bits = label_bits(a * s, s, n);
        assert!(
            (bits - beta).abs() < 0.1 || a == 2.0,
            "bits {bits} vs beta {beta}"
        );
    }

    #[test]
    fn query_heavy_workloads_get_narrow_labels() {
        let n = 1 << 20;
        let update_heavy = optimize_workload(&Workload {
            n,
            queries_per_update: 0.01,
            word_bits: 64,
        });
        let query_heavy = optimize_workload(&Workload {
            n,
            queries_per_update: 1e5,
            word_bits: 64,
        });
        let nf = n as f64;
        let bits_q = label_bits(
            f64::from(query_heavy.params.f()),
            f64::from(query_heavy.params.s()),
            nf,
        );
        // The query-heavy optimum must fit a machine word if at all possible.
        assert!(
            bits_q <= 64.0 + 1e-9,
            "query-heavy labels must fit a word, got {bits_q}"
        );
        // And it should not be costlier on queries than the update-heavy one.
        let bits_u = label_bits(
            f64::from(update_heavy.params.f()),
            f64::from(update_heavy.params.s()),
            nf,
        );
        assert!(bits_q <= bits_u + 1e-9);
    }

    #[test]
    fn presets_are_near_optimal_for_mid_sizes() {
        // Sanity: the paper's example (4,2) is within a small factor of
        // the model optimum for moderate documents.
        let t = optimize_cost(10_000);
        let example = amortized_cost(4.0, 2.0, 10_000.0);
        assert!(example < 4.0 * t.predicted_cost, "(4,2) is a sane default");
    }
}
