//! [`Endpoint`], [`ConnectionPool`] and [`ClientPolicy`] — the
//! connection layer between a [`RemoteScheme`](crate::RemoteScheme) and
//! its [`Transport`]s.
//!
//! One client used to be one blocking socket: the server's
//! shared-reader `RwLock` path was unreachable from a single client,
//! and every transient socket error was terminal. This module replaces
//! that with three small pieces:
//!
//! * an **[`Endpoint`]** knows how to mint a fresh [`Transport`] — a
//!   TCP address or an in-process loopback onto a [`LabelServer`];
//! * a **[`ConnectionPool`]** owns `policy.conns` transports. Read
//!   calls check out *any* idle connection (round-robin start, so K
//!   client threads spread across connections and exercise the
//!   server's shared read lock); writes serialize through connection 0,
//!   which is also the one pipelined plans ride on;
//! * a **[`ClientPolicy`]** declares the connection count, the retry
//!   budget, whether transport errors trigger transparent reconnects,
//!   and the per-operation timeout. The defaults (`conns = 1`, no
//!   reconnect) reproduce the old single-connection behavior exactly.
//!
//! ## Reconnect, retry, and staleness
//!
//! A transport-level failure (I/O error, closed peer, timeout — never a
//! scheme error, which travels as a typed response) marks the
//! connection dead and bumps the pool's **reconnect epoch**; the page
//! cache in `RemoteScheme` is keyed on that epoch, so reconnecting
//! *mandatorily* invalidates cached labels — a restarted server may
//! hold arbitrarily different state. With `reconnect` set, the pool
//! then dials the same endpoint again (never a *different* address —
//! an unsynchronized peer holds different state, so cross-address
//! failover is deliberately out of scope until there is replication)
//! and, within the `retries` budget:
//!
//! * **reads** are retried transparently — they are idempotent;
//! * **writes** are retried only when the failure struck while
//!   *sending*, i.e. the request provably never reached the server. A
//!   failure while awaiting the response surfaces as an error (the
//!   write may have been applied; retrying could double-apply), but the
//!   connection is still re-established so the session continues.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use ltree_core::registry::SpecOptions;
use ltree_core::{LTreeError, Result};

use crate::client::TransportStats;
use crate::server::LabelServer;
use crate::transport::{TcpTransport, Transport};
use crate::wire::{Request, Response, PROTOCOL_VERSION};

/// Declarative client behavior: how many connections, how failures are
/// handled, how long an operation may block. Spec options
/// (`remote(host:port,conns=4,retries=2,coalesce)`) parse into this;
/// the defaults reproduce the original single-connection client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientPolicy {
    /// Transports kept per endpoint. Reads use any idle one; writes
    /// serialize through connection 0. Default 1.
    pub conns: usize,
    /// Retry budget per operation after a transport failure (see the
    /// [module docs](self) for what is safe to retry). Implies
    /// reconnection. Default 0.
    pub retries: u32,
    /// Re-establish a connection that hit a transport error, so the
    /// *next* operation works even when the failing one could not be
    /// retried. Implied by `retries > 0`. Default off.
    pub reconnect: bool,
    /// Socket read timeout per operation; an expiry is a transport
    /// error (and thus subject to the reconnect/retry policy).
    /// Default none (block forever).
    pub op_timeout: Option<Duration>,
    /// Opt into the coalescing write buffer
    /// ([`WriteBuffer`](crate::client) semantics: adjacent single-op
    /// inserts/deletes merge into splices, flushed on any read).
    /// Default off.
    pub coalesce: bool,
}

impl Default for ClientPolicy {
    fn default() -> Self {
        ClientPolicy {
            conns: 1,
            retries: 0,
            reconnect: false,
            op_timeout: None,
            coalesce: false,
        }
    }
}

impl ClientPolicy {
    /// Parse the policy from trailing spec options: `conns=N`,
    /// `retries=N`, `reconnect`, `timeout-ms=N`, `coalesce`. Leaves
    /// unknown keys in `opts` for the caller's `finish()` to reject.
    pub fn from_options(opts: &mut SpecOptions) -> Result<ClientPolicy> {
        let mut p = ClientPolicy::default();
        if let Some(c) = opts.take_u32("conns")? {
            if c == 0 {
                return Err(LTreeError::InvalidOption {
                    spec: opts.spec().to_owned(),
                    key: "conns".into(),
                    reason: "a client needs at least one connection",
                });
            }
            p.conns = c as usize;
        }
        if let Some(r) = opts.take_u32("retries")? {
            p.retries = r;
            p.reconnect = p.reconnect || r > 0;
        }
        if opts.take_flag("reconnect")? {
            p.reconnect = true;
        }
        if let Some(ms) = opts.take_u64("timeout-ms")? {
            p.op_timeout = Some(Duration::from_millis(ms));
        }
        p.coalesce = opts.take_flag("coalesce")?;
        Ok(p)
    }

    /// Whether transport failures trigger reconnection at all.
    fn reconnects(&self) -> bool {
        self.reconnect || self.retries > 0
    }
}

enum EndpointKind {
    /// Only `addrs[primary]` is ever dialed — the rest of the list
    /// exists for the registry's per-build rotation. Connecting to a
    /// *different* address on failure would silently attach the session
    /// to a store holding different state (in the `ServerGroup`
    /// deployment, another shard's), so failover across addresses is
    /// deliberately not done; it needs replication first.
    Tcp { addrs: Vec<String>, primary: usize },
    /// In-process transports onto a server's scheme: the closure holds
    /// the server internals (not the server value) and registers each
    /// minted transport as one server connection.
    Loopback {
        mint: Box<dyn Fn() -> Result<crate::transport::LoopbackTransport> + Send + Sync>,
    },
}

/// A recipe for minting fresh [`Transport`]s to one label store. See
/// the [module docs](self).
pub struct Endpoint {
    kind: EndpointKind,
}

impl Endpoint {
    /// A TCP endpoint. `addrs` is one `host:port` or a `|`-separated
    /// list of which only the **first** entry is dialed — the list form
    /// exists for the registry's per-build rotation, and reconnects
    /// always return to the same address (dialing a different,
    /// unsynchronized peer would silently attach the session to
    /// different state).
    pub fn tcp(addrs: &str) -> Result<Endpoint> {
        Self::tcp_rotated(
            addrs
                .split('|')
                .map(|a| a.trim().to_owned())
                .collect::<Vec<_>>(),
            0,
        )
    }

    /// A TCP endpoint whose primary is `addrs[primary % len]` — the
    /// registry's `remote(a|b|c)` rotation uses this so consecutive
    /// builds (e.g. the segments of `sharded(n,remote(...))`) land on
    /// consecutive servers.
    pub(crate) fn tcp_rotated(addrs: Vec<String>, primary: usize) -> Result<Endpoint> {
        if addrs.is_empty() || addrs.iter().any(String::is_empty) {
            return Err(LTreeError::InvalidSpec {
                spec: "remote".into(),
                reason: "expected one host:port address or a |-separated list of them",
            });
        }
        let primary = primary % addrs.len();
        Ok(Endpoint {
            kind: EndpointKind::Tcp { addrs, primary },
        })
    }

    /// An in-process endpoint onto `server`'s scheme. Every minted
    /// transport registers as one server connection.
    pub fn loopback(server: &LabelServer) -> Endpoint {
        Endpoint {
            kind: EndpointKind::Loopback {
                mint: server.loopback_minter(),
            },
        }
    }

    /// A short description for error contexts.
    pub fn describe(&self) -> String {
        match &self.kind {
            EndpointKind::Tcp { addrs, primary } => addrs[*primary].clone(),
            EndpointKind::Loopback { .. } => "loopback".into(),
        }
    }

    /// Mint one fresh transport: dial this endpoint's (one) address, or
    /// build a loopback. No handshake yet — the pool performs it so all
    /// transports are version-checked identically.
    fn connect(&self, op_timeout: Option<Duration>) -> Result<Box<dyn Transport>> {
        match &self.kind {
            EndpointKind::Tcp { addrs, primary } => Ok(Box::new(TcpTransport::connect(
                &addrs[*primary],
                op_timeout,
            )?)),
            EndpointKind::Loopback { mint } => Ok(Box::new(mint()?)),
        }
    }
}

/// One pooled connection slot: the live transport (lazily connected;
/// `None` after a transport failure until reconnect) plus its counters.
struct Slot {
    transport: Option<Box<dyn Transport>>,
    stats: TransportStats,
}

/// Which half of an exchange failed — decides write retryability.
enum FailStage {
    /// Connecting or handshaking: nothing reached the server.
    Connect,
    /// The request frame did not go out: nothing reached the server.
    Send,
    /// The request may have been applied; the response was lost.
    Recv,
}

struct Failure {
    stage: FailStage,
    error: LTreeError,
}

type CallResult = std::result::Result<Response, Failure>;

/// Append the request's tag name to a transport error context, so a
/// timeout or broken pipe in a log names the operation it interrupted.
/// Non-`Remote` errors pass through untouched.
fn tag_with_request(error: LTreeError, verb: &str, req: &Request) -> LTreeError {
    match error {
        LTreeError::Remote { context } => LTreeError::Remote {
            context: format!("{context} (while {verb} {})", req.name()),
        },
        other => other,
    }
}

/// `policy.conns` transports to one endpoint, with checkout, reconnect
/// and retry. See the [module docs](self).
pub struct ConnectionPool {
    endpoint: Endpoint,
    policy: ClientPolicy,
    slots: Vec<Mutex<Slot>>,
    /// Round-robin start index for read checkout. `Relaxed` everywhere:
    /// a scheduling hint, never synchronization.
    rotation: AtomicUsize,
    /// Bumped on every transport failure; the page cache is keyed on it,
    /// so reconnects invalidate cached labels unconditionally.
    /// `Release` on the bump / `Acquire` on the read — the one atomic in
    /// this crate that carries an ordering obligation (see `kill`).
    epoch: AtomicU64,
    /// Successful reconnect count. `Relaxed` everywhere: statistics
    /// only, reported through [`TransportStats`] and reset wholesale.
    reconnects: AtomicU64,
}

impl ConnectionPool {
    /// Build the pool and eagerly connect + handshake **every** slot.
    /// Eager connection does two jobs: a dead endpoint (or a
    /// protocol-version mismatch) fails construction — `remote(nope:1)`
    /// errors at build time, not first use — and every transport's
    /// lifetime starts *now*, so a connection can only ever see a newer
    /// server via the failure path, which bumps the epoch and kills the
    /// page cache. (A lazily-connected slot could dial a restarted
    /// server without any failure being observed, and stale cached
    /// labels would survive the restart.)
    pub fn connect(endpoint: Endpoint, policy: ClientPolicy) -> Result<ConnectionPool> {
        let slots = (0..policy.conns.max(1))
            .map(|_| {
                Mutex::new(Slot {
                    transport: None,
                    stats: TransportStats::default(),
                })
            })
            .collect();
        let pool = ConnectionPool {
            endpoint,
            policy,
            slots,
            rotation: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        };
        for i in 0..pool.slots.len() {
            let mut slot = pool.lock_slot(i);
            pool.connect_slot(&mut slot).map_err(|f| f.error)?;
        }
        Ok(pool)
    }

    /// The policy this pool runs under.
    pub fn policy(&self) -> &ClientPolicy {
        &self.policy
    }

    /// The reconnect epoch: changes whenever any connection hit a
    /// transport failure. Cached reads from an older epoch are stale.
    ///
    /// Ordering: `Acquire`, pairing with the `Release` bump in the
    /// (private) `kill`. A client that observes the new epoch here
    /// also observes everything the killing thread published before the
    /// bump, so an epoch-keyed cache entry can never pass validation
    /// while missing the failover it is keyed against. The
    /// `epoch_keyed_cache_never_serves_stale_data` model in
    /// `tests/loom_models.rs` checks the protocol built on this pair.
    pub fn epoch(&self) -> u64 {
        // acquire: pairs with the Release epoch bump (see the doc above).
        self.epoch.load(Ordering::Acquire)
    }

    fn lock_slot(&self, i: usize) -> MutexGuard<'_, Slot> {
        self.slots[i].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Check out a connection for a read: probe every slot for an idle
    /// one starting at a rotating index (so sequential callers spread
    /// over the pool, not just contended ones), blocking on the start
    /// slot when all are busy.
    fn checkout_read(&self) -> MutexGuard<'_, Slot> {
        let n = self.slots.len();
        // Ordering: `Relaxed` is enough — the counter only picks a
        // start slot, and correctness (mutual exclusion, progress) comes
        // from the slot mutexes below; see the `checkout_*` models in
        // `tests/loom_models.rs`. The RMW itself is still atomic, so
        // concurrent callers get distinct start hints.
        let start = self.rotation.fetch_add(1, Ordering::Relaxed) % n;
        for i in 0..n {
            if let Ok(guard) = self.slots[(start + i) % n].try_lock() {
                return guard;
            }
        }
        self.lock_slot(start)
    }

    /// Connect + handshake one slot.
    fn connect_slot(&self, slot: &mut Slot) -> std::result::Result<(), Failure> {
        let fail = |error| Failure {
            stage: FailStage::Connect,
            error,
        };
        let mut t = self
            .endpoint
            .connect(self.policy.op_timeout)
            .map_err(fail)?;
        slot.stats.bytes_sent += t
            .send(&Request::Hello {
                version: PROTOCOL_VERSION,
            })
            .map_err(fail)?;
        let (resp, bytes) = t.recv().map_err(fail)?;
        slot.stats.bytes_received += bytes;
        slot.stats.round_trips += 1;
        match resp {
            Response::Hello { version } if version == PROTOCOL_VERSION => {}
            Response::Hello { version } => {
                return Err(fail(LTreeError::Remote {
                    context: format!(
                        "protocol version mismatch: server speaks {version}, \
                         client speaks {PROTOCOL_VERSION}"
                    ),
                }))
            }
            Response::Err(e) => return Err(fail(e)),
            other => {
                return Err(fail(LTreeError::Remote {
                    context: format!("unexpected handshake response: {other:?}"),
                }))
            }
        }
        slot.transport = Some(t);
        Ok(())
    }

    /// One send+recv on an already-checked-out slot, connecting it
    /// lazily first. Transport failures kill the slot's transport and
    /// bump the reconnect epoch. Transport error contexts are tagged
    /// with the request name (`"… while sending Splice::InsertAfter"`)
    /// so a timeout in a log names the operation that hung, not just
    /// the peer.
    fn exchange(&self, slot: &mut Slot, req: &Request) -> CallResult {
        if slot.transport.is_none() {
            self.connect_slot(slot)?;
        }
        let t = slot.transport.as_mut().expect("just connected");
        match t.send(req) {
            Ok(b) => slot.stats.bytes_sent += b,
            Err(error) => {
                self.kill(slot);
                return Err(Failure {
                    stage: FailStage::Send,
                    error: tag_with_request(error, "sending", req),
                });
            }
        }
        match t.recv() {
            Ok((resp, b)) => {
                slot.stats.bytes_received += b;
                slot.stats.round_trips += 1;
                Ok(resp)
            }
            Err(error) => {
                self.kill(slot);
                Err(Failure {
                    stage: FailStage::Recv,
                    error: tag_with_request(error, "awaiting", req),
                })
            }
        }
    }

    fn kill(&self, slot: &mut Slot) {
        slot.transport = None;
        // Ordering: `Release`, pairing with the `Acquire` load in
        // [`epoch`](Self::epoch) — the write that invalidates every
        // epoch-keyed cache must not be reorderable before the failure
        // handling that precedes it. `Relaxed` here would let a reader
        // validate its cache against the old epoch after the failover
        // is visible elsewhere.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The policy-driven call loop shared by reads and writes.
    fn call_with_policy(
        &self,
        mut slot: MutexGuard<'_, Slot>,
        req: &Request,
        write: bool,
    ) -> Result<Response> {
        let mut attempts = 0u32;
        loop {
            match self.exchange(&mut slot, req) {
                Ok(Response::Err(e)) => return Err(e), // scheme error: never retried
                Ok(resp) => return Ok(resp),
                Err(fail) => {
                    if !self.policy.reconnects() {
                        return Err(fail.error);
                    }
                    // Re-establish the connection regardless of whether
                    // this op can be retried, so the session survives.
                    let reconnected = self.connect_slot(&mut slot).is_ok();
                    if reconnected {
                        // Ordering: `Relaxed` — a pure statistics
                        // counter; nothing is published under it and no
                        // decision anywhere reads it for synchronization.
                        self.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    let retryable = match fail.stage {
                        FailStage::Connect | FailStage::Send => true,
                        // The server may have applied the write.
                        FailStage::Recv => !write,
                    };
                    if !retryable || attempts >= self.policy.retries {
                        return Err(fail.error);
                    }
                    attempts += 1;
                }
            }
        }
    }

    /// A read: any idle connection, full reconnect-and-retry.
    pub fn call_read(&self, req: &Request) -> Result<Response> {
        self.call_with_policy(self.checkout_read(), req, false)
    }

    /// A write: connection 0, reconnect always, retry only when the
    /// request provably never left (see the [module docs](self)).
    pub fn call_write(&self, req: &Request) -> Result<Response> {
        self.call_with_policy(self.lock_slot(0), req, true)
    }

    /// Check out the write connection (slot 0) for a pipelined plan:
    /// the caller sends any number of frames, then drains the
    /// responses. Plans are not retried — a transport failure mid-plan
    /// surfaces after killing the connection (and reconnecting it for
    /// subsequent ops when the policy allows).
    pub fn write_conn(&self) -> Result<WriteConn<'_>> {
        let mut slot = self.lock_slot(0);
        if slot.transport.is_none() {
            self.connect_slot(&mut slot).map_err(|f| f.error)?;
        }
        Ok(WriteConn { pool: self, slot })
    }

    /// Aggregate transport counters over every connection, plus the
    /// pool-level reconnect count.
    pub fn transport_stats(&self) -> TransportStats {
        let mut total = TransportStats {
            // relaxed: statistic only; the slot stats below are mutex-ordered anyway.
            reconnects: self.reconnects.load(Ordering::Relaxed),
            ..TransportStats::default()
        };
        for i in 0..self.slots.len() {
            let s = self.lock_slot(i).stats;
            total.round_trips += s.round_trips;
            total.bytes_sent += s.bytes_sent;
            total.bytes_received += s.bytes_received;
        }
        total
    }

    /// Per-connection counters, in slot order (connection 0 is the
    /// write connection). Never-used slots report zeros.
    pub fn per_conn_stats(&self) -> Vec<TransportStats> {
        (0..self.slots.len())
            .map(|i| self.lock_slot(i).stats)
            .collect()
    }

    /// Zero every counter (the reset discipline of
    /// [`Instrumented::reset_scheme_stats`](ltree_core::Instrumented)).
    pub fn reset_stats(&self) {
        for i in 0..self.slots.len() {
            self.lock_slot(i).stats = TransportStats::default();
        }
        // relaxed: advisory counter reset; races with reconnect accounting benignly.
        self.reconnects.store(0, Ordering::Relaxed);
    }
}

/// The checked-out write connection for pipelined plans (from
/// [`ConnectionPool::write_conn`]). `send` / `recv` map transport
/// failures to `Err` after killing the connection;
/// [`count_round_trip`](Self::count_round_trip) lets the caller charge
/// a whole pipelined plan as one trip.
pub struct WriteConn<'a> {
    pool: &'a ConnectionPool,
    slot: MutexGuard<'a, Slot>,
}

impl WriteConn<'_> {
    /// Send one request frame without reading a response.
    pub fn send(&mut self, req: &Request) -> Result<()> {
        let t = self
            .slot
            .transport
            .as_mut()
            .ok_or_else(|| LTreeError::Remote {
                context: "write connection lost mid-plan".into(),
            })?;
        match t.send(req) {
            Ok(b) => {
                self.slot.stats.bytes_sent += b;
                Ok(())
            }
            Err(e) => {
                self.pool.kill(&mut self.slot);
                Err(tag_with_request(e, "sending", req))
            }
        }
    }

    /// Read the next in-order response frame (not counted as a round
    /// trip — call [`count_round_trip`](Self::count_round_trip) once
    /// per drained plan).
    pub fn recv(&mut self) -> Result<Response> {
        let t = self
            .slot
            .transport
            .as_mut()
            .ok_or_else(|| LTreeError::Remote {
                context: "write connection lost mid-plan".into(),
            })?;
        match t.recv() {
            Ok((resp, b)) => {
                self.slot.stats.bytes_received += b;
                Ok(resp)
            }
            Err(e) => {
                self.pool.kill(&mut self.slot);
                Err(e)
            }
        }
    }

    /// Charge one round trip to this connection's counters.
    pub fn count_round_trip(&mut self) {
        self.slot.stats.round_trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{LTree, Params};

    #[test]
    fn transport_errors_name_the_request() {
        let mut server = crate::server::LabelServer::bind(
            "127.0.0.1:0",
            Box::new(LTree::new(Params::new(4, 2).unwrap())),
        )
        .unwrap();
        let pool = ConnectionPool::connect(
            Endpoint::tcp(&server.local_addr().to_string()).unwrap(),
            ClientPolicy::default(),
        )
        .unwrap();
        server.shutdown();
        let err = pool.call_read(&Request::Len).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("Len"),
            "transport error should name the request tag: {msg}"
        );
    }
}
