//! The wire protocol: length-prefixed request/response frames covering
//! the whole ordered-labeling trait surface.
//!
//! Frames are `u32` little-endian length + payload; the payload is one
//! tag byte followed by fixed-width little-endian fields (strings and
//! sequences carry their own `u32` length). The codec is hand-rolled in
//! the same dependency-free spirit as `ltree-bench`'s `json.rs`: the
//! workspace must build hermetically, so no serde.
//!
//! Design points:
//!
//! * **Version frame first.** A connection opens with
//!   [`Request::Hello`]; the server answers [`Response::Hello`] with its
//!   own [`PROTOCOL_VERSION`] or an error frame on mismatch, so
//!   incompatible peers fail at the handshake, not mid-operation.
//! * **Typed error frames.** Scheme-level failures travel as their own
//!   [`LTreeError`] variants and decode losslessly; only the two
//!   variants carrying `&'static str` reasons ([`LTreeError::InvalidParams`],
//!   [`LTreeError::InvalidSpec`]) are canonicalized into
//!   [`LTreeError::Remote`] (their rendered message) by
//!   [`wire_error`], since a wire peer cannot mint `'static` strings.
//! * **Batches are one frame.** A [`Request::Splice`] carries a whole
//!   [`Splice`](ltree_core::Splice) — this is where
//!   `SpliceBuilder`'s run assembly pays off over a network: round
//!   trips scale with *runs*, not items.
//! * **Paged reads.** [`Request::Page`] returns up to `limit`
//!   `(handle, label)` pairs in list order, so cursor walks and
//!   label scans cost `O(n / page)` round trips instead of `O(n)`.
//!
//! Every frame type round-trips exactly (`decode(encode(f)) == f`);
//! `tests` drive that with a SplitMix64 fuzzer, error frames included.

use ltree_core::metrics::{HistogramSnapshot, Metric, MetricValue, BUCKET_COUNT};
use ltree_core::{LTreeError, Result, SchemeStats};

/// Protocol version spoken by this build. Bump on any frame change;
/// peers reject mismatches at the handshake.
/// Version history: 1 — initial protocol; 2 — adds the
/// [`Request::Metrics`] / [`Response::Metrics`] scrape frames.
pub const PROTOCOL_VERSION: u32 = 2;

/// Hard cap on a single frame's payload: fits a bulk-build response of
/// up to ~8.3 million handles, and fails fast on a corrupt length
/// prefix. A server whose response would exceed it sends an error frame
/// instead of the payload (the operation still applied; results remain
/// readable through paged requests).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Upper bound a server imposes on [`Request::Page`] limits.
pub const MAX_PAGE_ITEMS: u32 = 4096;

/// One request frame: the client-visible half of the trait surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake; must be the first frame on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// The hosted scheme's [`name`](ltree_core::OrderedLabeling::name).
    Name,
    /// [`label_of`](ltree_core::OrderedLabeling::label_of).
    LabelOf(u64),
    /// [`len`](ltree_core::OrderedLabeling::len).
    Len,
    /// [`live_len`](ltree_core::OrderedLabeling::live_len).
    LiveLen,
    /// [`first_in_order`](ltree_core::OrderedLabeling::first_in_order).
    FirstInOrder,
    /// [`next_in_order`](ltree_core::OrderedLabeling::next_in_order).
    NextInOrder(u64),
    /// [`label_space_bits`](ltree_core::OrderedLabeling::label_space_bits).
    LabelSpaceBits,
    /// [`memory_bytes`](ltree_core::OrderedLabeling::memory_bytes).
    MemoryBytes,
    /// [`bulk_build`](ltree_core::OrderedLabelingMut::bulk_build).
    BulkBuild(u64),
    /// [`insert_first`](ltree_core::OrderedLabelingMut::insert_first).
    InsertFirst,
    /// [`insert_after`](ltree_core::OrderedLabelingMut::insert_after).
    InsertAfter(u64),
    /// [`insert_before`](ltree_core::OrderedLabelingMut::insert_before).
    InsertBefore(u64),
    /// [`delete`](ltree_core::OrderedLabelingMut::delete).
    Delete(u64),
    /// A whole typed batch ([`ltree_core::Splice`]) in one frame.
    Splice(WireSplice),
    /// Up to `limit` `(handle, label)` pairs in list order, starting at
    /// `from` (inclusive) or at the list head when `None`.
    Page {
        /// Start handle (inclusive), or `None` for the list head.
        from: Option<u64>,
        /// Maximum pairs returned (clamped to [`MAX_PAGE_ITEMS`]).
        limit: u32,
    },
    /// [`scheme_stats`](ltree_core::Instrumented::scheme_stats).
    Stats,
    /// [`reset_scheme_stats`](ltree_core::Instrumented::reset_scheme_stats).
    ResetStats,
    /// [`stats_breakdown`](ltree_core::Instrumented::stats_breakdown).
    StatsBreakdown,
    /// A full metrics scrape: the server's own instrumentation (request
    /// counters, per-phase latency histograms) concatenated with the
    /// hosted scheme's [`metrics`](ltree_core::Instrumented::metrics),
    /// sorted by name. Since protocol version 2.
    Metrics,
}

impl Request {
    /// The request's tag name, for error contexts and logs — so a
    /// timeout says *which* operation timed out.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "Hello",
            Request::Name => "Name",
            Request::LabelOf(_) => "LabelOf",
            Request::Len => "Len",
            Request::LiveLen => "LiveLen",
            Request::FirstInOrder => "FirstInOrder",
            Request::NextInOrder(_) => "NextInOrder",
            Request::LabelSpaceBits => "LabelSpaceBits",
            Request::MemoryBytes => "MemoryBytes",
            Request::BulkBuild(_) => "BulkBuild",
            Request::InsertFirst => "InsertFirst",
            Request::InsertAfter(_) => "InsertAfter",
            Request::InsertBefore(_) => "InsertBefore",
            Request::Delete(_) => "Delete",
            Request::Splice(WireSplice::InsertAfter { .. }) => "Splice::InsertAfter",
            Request::Splice(WireSplice::DeleteRun { .. }) => "Splice::DeleteRun",
            Request::Page { .. } => "Page",
            Request::Stats => "Stats",
            Request::ResetStats => "ResetStats",
            Request::StatsBreakdown => "StatsBreakdown",
            Request::Metrics => "Metrics",
        }
    }
}

/// A [`ltree_core::Splice`] in wire form (handles as raw `u64`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSplice {
    /// Insert `count` items after `anchor`.
    InsertAfter {
        /// Anchor handle.
        anchor: u64,
        /// Items to insert.
        count: u64,
    },
    /// Delete up to `count` live items starting at `first`.
    DeleteRun {
        /// First handle of the run.
        first: u64,
        /// Maximum live items to delete.
        count: u64,
    },
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake acknowledgment carrying the server's version.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// A scheme name.
    Name(String),
    /// A label.
    Label(u128),
    /// A count (`len`, `live_len`, `memory_bytes`, deleted-run size).
    Count(u64),
    /// An optional handle (`first_in_order` / `next_in_order`).
    MaybeHandle(Option<u64>),
    /// A bit width.
    Bits(u32),
    /// A single fresh handle.
    Handle(u64),
    /// Fresh handles in list order (`bulk_build`, insert splices).
    Handles(Vec<u64>),
    /// Success with nothing to return (`delete`, `reset_scheme_stats`).
    Unit,
    /// A page of `(handle, label)` pairs in list order; `at_end` is true
    /// when the page reaches the end of the list.
    Page {
        /// The pairs, in list order.
        items: Vec<(u64, u128)>,
        /// Whether the list ends with this page.
        at_end: bool,
    },
    /// Aggregate cost counters.
    Stats(SchemeStats),
    /// Per-component counter breakdown.
    Breakdown(Vec<(String, SchemeStats)>),
    /// The operation failed; see [`wire_error`] for which variants
    /// travel losslessly.
    Err(LTreeError),
    /// A metrics snapshot (counters, gauges, histograms), sorted by
    /// name. Since protocol version 2.
    Metrics(Vec<Metric>),
}

/// Canonicalize an error for the wire: every variant travels as itself
/// except [`LTreeError::InvalidParams`] / [`LTreeError::InvalidSpec`] /
/// [`LTreeError::InvalidOption`], whose `&'static str` reasons cannot
/// be reconstructed by a peer — they become [`LTreeError::Remote`]
/// carrying the rendered message.
pub fn wire_error(e: &LTreeError) -> LTreeError {
    match e {
        LTreeError::InvalidParams { .. }
        | LTreeError::InvalidSpec { .. }
        | LTreeError::InvalidOption { .. } => LTreeError::Remote {
            context: e.to_string(),
        },
        other => other.clone(),
    }
}

// ----------------------------------------------------------------------
// Encoding
// ----------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(buf, 0),
        Some(h) => {
            put_u8(buf, 1);
            put_u64(buf, h);
        }
    }
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_metric(buf: &mut Vec<u8>, m: &Metric) {
    put_str(buf, &m.name);
    match &m.value {
        MetricValue::Counter(v) => {
            put_u8(buf, 0);
            put_u64(buf, *v);
        }
        MetricValue::Gauge(v) => {
            put_u8(buf, 1);
            put_i64(buf, *v);
        }
        MetricValue::Histogram(h) => {
            put_u8(buf, 2);
            put_u64(buf, h.count);
            put_u64(buf, h.sum);
            put_u32(buf, h.buckets.len() as u32);
            for (idx, n) in &h.buckets {
                put_u32(buf, *idx);
                put_u64(buf, *n);
            }
        }
    }
}

fn put_stats(buf: &mut Vec<u8>, s: &SchemeStats) {
    put_u64(buf, s.inserts);
    put_u64(buf, s.deletes);
    put_u64(buf, s.label_writes);
    put_u64(buf, s.node_touches);
    put_u64(buf, s.relabel_events);
}

/// Encode a request payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut b = Vec::new();
    match req {
        Request::Hello { version } => {
            put_u8(&mut b, 1);
            put_u32(&mut b, *version);
        }
        Request::Name => put_u8(&mut b, 2),
        Request::LabelOf(h) => {
            put_u8(&mut b, 3);
            put_u64(&mut b, *h);
        }
        Request::Len => put_u8(&mut b, 4),
        Request::LiveLen => put_u8(&mut b, 5),
        Request::FirstInOrder => put_u8(&mut b, 6),
        Request::NextInOrder(h) => {
            put_u8(&mut b, 7);
            put_u64(&mut b, *h);
        }
        Request::LabelSpaceBits => put_u8(&mut b, 8),
        Request::MemoryBytes => put_u8(&mut b, 9),
        Request::BulkBuild(n) => {
            put_u8(&mut b, 10);
            put_u64(&mut b, *n);
        }
        Request::InsertFirst => put_u8(&mut b, 11),
        Request::InsertAfter(h) => {
            put_u8(&mut b, 12);
            put_u64(&mut b, *h);
        }
        Request::InsertBefore(h) => {
            put_u8(&mut b, 13);
            put_u64(&mut b, *h);
        }
        Request::Delete(h) => {
            put_u8(&mut b, 14);
            put_u64(&mut b, *h);
        }
        Request::Splice(op) => {
            put_u8(&mut b, 15);
            match op {
                WireSplice::InsertAfter { anchor, count } => {
                    put_u8(&mut b, 0);
                    put_u64(&mut b, *anchor);
                    put_u64(&mut b, *count);
                }
                WireSplice::DeleteRun { first, count } => {
                    put_u8(&mut b, 1);
                    put_u64(&mut b, *first);
                    put_u64(&mut b, *count);
                }
            }
        }
        Request::Page { from, limit } => {
            put_u8(&mut b, 16);
            put_opt_u64(&mut b, *from);
            put_u32(&mut b, *limit);
        }
        Request::Stats => put_u8(&mut b, 17),
        Request::ResetStats => put_u8(&mut b, 18),
        Request::StatsBreakdown => put_u8(&mut b, 19),
        Request::Metrics => put_u8(&mut b, 20),
    }
    b
}

fn put_error(b: &mut Vec<u8>, e: &LTreeError) {
    match wire_error(e) {
        LTreeError::UnknownHandle => put_u8(b, 0),
        LTreeError::DeletedLeaf => put_u8(b, 1),
        LTreeError::EmptyTree => put_u8(b, 2),
        LTreeError::NotEmpty => put_u8(b, 3),
        LTreeError::EmptyBatch => put_u8(b, 4),
        LTreeError::LabelOverflow { height } => {
            put_u8(b, 5);
            put_u8(b, height);
        }
        LTreeError::UnknownScheme { name } => {
            put_u8(b, 6);
            put_str(b, &name);
        }
        LTreeError::Remote { context } => {
            put_u8(b, 7);
            put_str(b, &context);
        }
        LTreeError::ContractViolation { scheme, detail } => {
            put_u8(b, 8);
            put_str(b, &scheme);
            put_str(b, &detail);
        }
        LTreeError::Durability { context } => {
            put_u8(b, 9);
            put_str(b, &context);
        }
        // `wire_error` canonicalized these away.
        LTreeError::InvalidParams { .. }
        | LTreeError::InvalidSpec { .. }
        | LTreeError::InvalidOption { .. } => unreachable!(),
    }
}

/// Encode a response payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut b = Vec::new();
    match resp {
        Response::Hello { version } => {
            put_u8(&mut b, 1);
            put_u32(&mut b, *version);
        }
        Response::Name(s) => {
            put_u8(&mut b, 2);
            put_str(&mut b, s);
        }
        Response::Label(l) => {
            put_u8(&mut b, 3);
            put_u128(&mut b, *l);
        }
        Response::Count(n) => {
            put_u8(&mut b, 4);
            put_u64(&mut b, *n);
        }
        Response::MaybeHandle(h) => {
            put_u8(&mut b, 5);
            put_opt_u64(&mut b, *h);
        }
        Response::Bits(v) => {
            put_u8(&mut b, 6);
            put_u32(&mut b, *v);
        }
        Response::Handle(h) => {
            put_u8(&mut b, 7);
            put_u64(&mut b, *h);
        }
        Response::Handles(hs) => {
            put_u8(&mut b, 8);
            put_u32(&mut b, hs.len() as u32);
            for h in hs {
                put_u64(&mut b, *h);
            }
        }
        Response::Unit => put_u8(&mut b, 9),
        Response::Page { items, at_end } => {
            put_u8(&mut b, 10);
            put_u8(&mut b, u8::from(*at_end));
            put_u32(&mut b, items.len() as u32);
            for (h, l) in items {
                put_u64(&mut b, *h);
                put_u128(&mut b, *l);
            }
        }
        Response::Stats(s) => {
            put_u8(&mut b, 11);
            put_stats(&mut b, s);
        }
        Response::Breakdown(entries) => {
            put_u8(&mut b, 12);
            put_u32(&mut b, entries.len() as u32);
            for (name, s) in entries {
                put_str(&mut b, name);
                put_stats(&mut b, s);
            }
        }
        Response::Err(e) => {
            put_u8(&mut b, 13);
            put_error(&mut b, e);
        }
        Response::Metrics(metrics) => {
            put_u8(&mut b, 14);
            put_u32(&mut b, metrics.len() as u32);
            for m in metrics {
                put_metric(&mut b, m);
            }
        }
    }
    b
}

/// Encode a response payload, degrading to an error frame when the
/// encoding would exceed [`MAX_FRAME_BYTES`]. The operation has already
/// been applied by then — dropping the connection would hide that — so
/// the error frame tells the client to re-read the result in pages.
/// Shared by every server-side transport (socket and loopback alike).
pub fn encode_response_capped(resp: &Response) -> Vec<u8> {
    let out = encode_response(resp);
    if out.len() <= MAX_FRAME_BYTES {
        return out;
    }
    encode_response(&Response::Err(LTreeError::Remote {
        context: format!(
            "response of {} bytes exceeds the frame cap; the operation WAS applied — \
             re-read the result through paged requests",
            out.len()
        ),
    }))
}

// ----------------------------------------------------------------------
// Decoding
// ----------------------------------------------------------------------

/// A decode cursor over one frame payload.
struct Buf<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn bad(context: &str) -> LTreeError {
    LTreeError::Remote {
        context: format!("malformed frame: {context}"),
    }
}

impl<'a> Buf<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Buf { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("overflow"))?;
        let out = self.bytes.get(self.pos..end).ok_or_else(|| bad("short"))?;
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(bad("bad option tag")),
        }
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn metric(&mut self) -> Result<Metric> {
        let name = self.str()?;
        Ok(match self.u8()? {
            0 => Metric::counter(name, self.u64()?),
            1 => Metric::gauge(name, self.i64()?),
            2 => {
                let count = self.u64()?;
                let sum = self.u64()?;
                let n = self.u32()? as usize;
                let mut buckets = Vec::with_capacity(n.min(BUCKET_COUNT as usize));
                for _ in 0..n {
                    let idx = self.u32()?;
                    if idx >= BUCKET_COUNT {
                        return Err(bad("histogram bucket index out of range"));
                    }
                    buckets.push((idx, self.u64()?));
                }
                Metric::histogram(
                    name,
                    HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                )
            }
            _ => return Err(bad("bad metric kind tag")),
        })
    }

    fn stats(&mut self) -> Result<SchemeStats> {
        Ok(SchemeStats {
            inserts: self.u64()?,
            deletes: self.u64()?,
            label_writes: self.u64()?,
            node_touches: self.u64()?,
            relabel_events: self.u64()?,
        })
    }

    fn finish(self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes"))
        }
    }
}

/// Decode one request payload.
pub fn decode_request(bytes: &[u8]) -> Result<Request> {
    let mut b = Buf::new(bytes);
    let req = match b.u8()? {
        1 => Request::Hello { version: b.u32()? },
        2 => Request::Name,
        3 => Request::LabelOf(b.u64()?),
        4 => Request::Len,
        5 => Request::LiveLen,
        6 => Request::FirstInOrder,
        7 => Request::NextInOrder(b.u64()?),
        8 => Request::LabelSpaceBits,
        9 => Request::MemoryBytes,
        10 => Request::BulkBuild(b.u64()?),
        11 => Request::InsertFirst,
        12 => Request::InsertAfter(b.u64()?),
        13 => Request::InsertBefore(b.u64()?),
        14 => Request::Delete(b.u64()?),
        15 => match b.u8()? {
            0 => Request::Splice(WireSplice::InsertAfter {
                anchor: b.u64()?,
                count: b.u64()?,
            }),
            1 => Request::Splice(WireSplice::DeleteRun {
                first: b.u64()?,
                count: b.u64()?,
            }),
            _ => return Err(bad("bad splice tag")),
        },
        16 => Request::Page {
            from: b.opt_u64()?,
            limit: b.u32()?,
        },
        17 => Request::Stats,
        18 => Request::ResetStats,
        19 => Request::StatsBreakdown,
        20 => Request::Metrics,
        _ => return Err(bad("bad request tag")),
    };
    b.finish()?;
    Ok(req)
}

fn decode_error(b: &mut Buf<'_>) -> Result<LTreeError> {
    Ok(match b.u8()? {
        0 => LTreeError::UnknownHandle,
        1 => LTreeError::DeletedLeaf,
        2 => LTreeError::EmptyTree,
        3 => LTreeError::NotEmpty,
        4 => LTreeError::EmptyBatch,
        5 => LTreeError::LabelOverflow { height: b.u8()? },
        6 => LTreeError::UnknownScheme { name: b.str()? },
        7 => LTreeError::Remote { context: b.str()? },
        8 => LTreeError::ContractViolation {
            scheme: b.str()?,
            detail: b.str()?,
        },
        9 => LTreeError::Durability { context: b.str()? },
        _ => return Err(bad("bad error tag")),
    })
}

/// Decode one response payload.
pub fn decode_response(bytes: &[u8]) -> Result<Response> {
    let mut b = Buf::new(bytes);
    let resp = match b.u8()? {
        1 => Response::Hello { version: b.u32()? },
        2 => Response::Name(b.str()?),
        3 => Response::Label(b.u128()?),
        4 => Response::Count(b.u64()?),
        5 => Response::MaybeHandle(b.opt_u64()?),
        6 => Response::Bits(b.u32()?),
        7 => Response::Handle(b.u64()?),
        8 => {
            let n = b.u32()? as usize;
            let mut hs = Vec::with_capacity(n.min(MAX_FRAME_BYTES / 8));
            for _ in 0..n {
                hs.push(b.u64()?);
            }
            Response::Handles(hs)
        }
        9 => Response::Unit,
        10 => {
            let at_end = match b.u8()? {
                0 => false,
                1 => true,
                _ => return Err(bad("bad bool")),
            };
            let n = b.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(MAX_FRAME_BYTES / 24));
            for _ in 0..n {
                items.push((b.u64()?, b.u128()?));
            }
            Response::Page { items, at_end }
        }
        11 => Response::Stats(b.stats()?),
        12 => {
            let n = b.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = b.str()?;
                let s = b.stats()?;
                entries.push((name, s));
            }
            Response::Breakdown(entries)
        }
        13 => Response::Err(decode_error(&mut b)?),
        14 => {
            let n = b.u32()? as usize;
            let mut metrics = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                metrics.push(b.metric()?);
            }
            Response::Metrics(metrics)
        }
        _ => return Err(bad("bad response tag")),
    };
    b.finish()?;
    Ok(resp)
}

// ----------------------------------------------------------------------
// Framing over a byte stream
// ----------------------------------------------------------------------

/// Write one frame (length prefix + payload) to `w`. Returns the bytes
/// written, including the prefix.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> Result<u64> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(LTreeError::Remote {
            context: format!("frame of {} bytes exceeds the cap", payload.len()),
        });
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len).map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(4 + payload.len() as u64)
}

/// Read one frame payload from `r`. `Ok(None)` is a clean end of stream
/// (EOF on the length prefix); a truncated frame is an error.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len[got..]).map_err(io_err)? {
            0 if got == 0 => return Ok(None),
            0 => return Err(bad("truncated length prefix")),
            n => got += n,
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_BYTES {
        return Err(LTreeError::Remote {
            context: format!("frame of {n} bytes exceeds the cap"),
        });
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload).map_err(io_err)?;
    Ok(Some(payload))
}

/// Map a transport I/O failure into the error currency of the traits.
pub fn io_err(e: std::io::Error) -> LTreeError {
    LTreeError::Remote {
        context: format!("transport I/O: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::rng::SplitMix64;

    fn rand_stats(rng: &mut SplitMix64) -> SchemeStats {
        SchemeStats {
            inserts: rng.next_u64() >> 16,
            deletes: rng.next_u64() >> 16,
            label_writes: rng.next_u64() >> 16,
            node_touches: rng.next_u64() >> 16,
            relabel_events: rng.next_u64() >> 16,
        }
    }

    fn rand_string(rng: &mut SplitMix64) -> String {
        let n = rng.gen_range(0..12);
        (0..n)
            .map(|_| char::from(b'a' + (rng.gen_range(0..26) as u8)))
            .collect()
    }

    /// Every wire-expressible error, uniformly sampled.
    fn rand_error(rng: &mut SplitMix64) -> LTreeError {
        match rng.gen_range(0..10) {
            0 => LTreeError::UnknownHandle,
            1 => LTreeError::DeletedLeaf,
            2 => LTreeError::EmptyTree,
            3 => LTreeError::NotEmpty,
            4 => LTreeError::EmptyBatch,
            5 => LTreeError::LabelOverflow {
                height: rng.gen_range(0..256) as u8,
            },
            6 => LTreeError::UnknownScheme {
                name: rand_string(rng),
            },
            7 => LTreeError::ContractViolation {
                scheme: rand_string(rng),
                detail: rand_string(rng),
            },
            8 => LTreeError::Durability {
                context: rand_string(rng),
            },
            _ => LTreeError::Remote {
                context: rand_string(rng),
            },
        }
    }

    fn rand_metric(rng: &mut SplitMix64) -> Metric {
        let name = rand_string(rng);
        match rng.gen_range(0..3) {
            0 => Metric::counter(name, rng.next_u64()),
            1 => Metric::gauge(name, rng.next_u64() as i64),
            _ => {
                let n = rng.gen_range(0..10);
                let mut buckets: Vec<(u32, u64)> = (0..n)
                    .map(|_| {
                        (
                            rng.gen_range(0..BUCKET_COUNT as usize) as u32,
                            rng.next_u64() >> 16,
                        )
                    })
                    .collect();
                buckets.sort_unstable();
                buckets.dedup_by_key(|(idx, _)| *idx);
                let count = buckets.iter().map(|(_, n)| n).sum();
                Metric::histogram(
                    name,
                    HistogramSnapshot {
                        count,
                        sum: rng.next_u64(),
                        buckets,
                    },
                )
            }
        }
    }

    fn rand_request(rng: &mut SplitMix64) -> Request {
        match rng.gen_range(0..20) {
            0 => Request::Hello {
                version: rng.next_u64() as u32,
            },
            1 => Request::Name,
            2 => Request::LabelOf(rng.next_u64()),
            3 => Request::Len,
            4 => Request::LiveLen,
            5 => Request::FirstInOrder,
            6 => Request::NextInOrder(rng.next_u64()),
            7 => Request::LabelSpaceBits,
            8 => Request::MemoryBytes,
            9 => Request::BulkBuild(rng.next_u64()),
            10 => Request::InsertFirst,
            11 => Request::InsertAfter(rng.next_u64()),
            12 => Request::InsertBefore(rng.next_u64()),
            13 => Request::Delete(rng.next_u64()),
            14 => Request::Splice(WireSplice::InsertAfter {
                anchor: rng.next_u64(),
                count: rng.next_u64(),
            }),
            15 => Request::Splice(WireSplice::DeleteRun {
                first: rng.next_u64(),
                count: rng.next_u64(),
            }),
            16 => Request::Page {
                from: (rng.gen_bool(0.5)).then(|| rng.next_u64()),
                limit: rng.next_u64() as u32,
            },
            17 => Request::Stats,
            18 => Request::Metrics,
            _ => {
                if rng.gen_bool(0.5) {
                    Request::ResetStats
                } else {
                    Request::StatsBreakdown
                }
            }
        }
    }

    fn rand_response(rng: &mut SplitMix64) -> Response {
        match rng.gen_range(0..14) {
            0 => Response::Hello {
                version: rng.next_u64() as u32,
            },
            1 => Response::Name(rand_string(rng)),
            2 => Response::Label((rng.next_u64() as u128) << 64 | rng.next_u64() as u128),
            3 => Response::Count(rng.next_u64()),
            4 => Response::MaybeHandle((rng.gen_bool(0.5)).then(|| rng.next_u64())),
            5 => Response::Bits(rng.next_u64() as u32),
            6 => Response::Handle(rng.next_u64()),
            7 => {
                let n = rng.gen_range(0..40);
                Response::Handles((0..n).map(|_| rng.next_u64()).collect())
            }
            8 => Response::Unit,
            9 => {
                let n = rng.gen_range(0..20);
                Response::Page {
                    items: (0..n)
                        .map(|_| (rng.next_u64(), rng.next_u64() as u128))
                        .collect(),
                    at_end: rng.gen_bool(0.5),
                }
            }
            10 => Response::Stats(rand_stats(rng)),
            11 => {
                let n = rng.gen_range(0..6);
                Response::Breakdown(
                    (0..n)
                        .map(|_| (rand_string(rng), rand_stats(rng)))
                        .collect(),
                )
            }
            12 => {
                let n = rng.gen_range(0..6);
                Response::Metrics((0..n).map(|_| rand_metric(rng)).collect())
            }
            _ => Response::Err(rand_error(rng)),
        }
    }

    /// encode → decode is the identity for every frame type, error
    /// frames included. Failures reproduce from the printed seed.
    #[test]
    fn codec_roundtrip_fuzz() {
        for seed in 0..16u64 {
            let mut rng = SplitMix64::new(seed);
            for i in 0..500 {
                let req = rand_request(&mut rng);
                let back = decode_request(&encode_request(&req))
                    .unwrap_or_else(|e| panic!("seed {seed} iter {i}: {req:?}: {e}"));
                assert_eq!(back, req, "seed {seed} iter {i}");
                let resp = rand_response(&mut rng);
                let back = decode_response(&encode_response(&resp))
                    .unwrap_or_else(|e| panic!("seed {seed} iter {i}: {resp:?}: {e}"));
                assert_eq!(back, resp, "seed {seed} iter {i}");
            }
        }
    }

    #[test]
    fn static_reason_errors_canonicalize_to_remote() {
        let e = LTreeError::InvalidSpec {
            spec: "nope(".into(),
            reason: "unbalanced parentheses",
        };
        let resp = Response::Err(e.clone());
        let back = decode_response(&encode_response(&resp)).unwrap();
        match back {
            Response::Err(LTreeError::Remote { context }) => {
                assert!(context.contains("nope("), "{context}");
                assert!(context.contains("unbalanced"), "{context}");
            }
            other => panic!("expected a canonicalized Remote error, got {other:?}"),
        }
        // Wire-expressible errors survive exactly.
        let exact = Response::Err(LTreeError::DeletedLeaf);
        assert_eq!(decode_response(&encode_response(&exact)).unwrap(), exact);
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[200]).is_err(), "unknown tag");
        assert!(decode_request(&[3, 1, 2]).is_err(), "short handle");
        let mut ok = encode_request(&Request::Len);
        ok.push(0);
        assert!(decode_request(&ok).is_err(), "trailing bytes");
        assert!(decode_response(&[13, 99]).is_err(), "bad error tag");
        // Metrics frame: count 1, empty name, unknown kind tag 9.
        assert!(
            decode_response(&[14, 1, 0, 0, 0, 0, 0, 0, 0, 9]).is_err(),
            "bad metric kind tag"
        );
        assert!(
            decode_response(&[2, 4, 0, 0, 0, 0xff, 0xfe, 0x01, 0x02]).is_err(),
            "bad utf8"
        );
    }

    #[test]
    fn framing_roundtrips_and_rejects_oversize() {
        let mut buf = Vec::new();
        let a = encode_request(&Request::Stats);
        let b = encode_request(&Request::LabelOf(7));
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // A corrupt length prefix fails fast instead of allocating 4 GiB.
        let huge = (u32::MAX).to_le_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
        // Truncated frames are loud.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, &a).unwrap();
        truncated.pop();
        let mut r = &truncated[..];
        assert!(read_frame(&mut r).is_err());
    }
}
