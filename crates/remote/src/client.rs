//! [`RemoteScheme`] — a client-side labeling scheme whose state lives in
//! a [`LabelServer`].
//!
//! The client implements the whole ordered-labeling trait family over a
//! [`ConnectionPool`] of [`Transport`](crate::transport::Transport)s,
//! so a remote store drops
//! into any generic code path — a `Document`, the conformance suite, a
//! `ShardedScheme` segment — unchanged:
//!
//! * **Writes** are one frame per trait call; batch splices carry the
//!   whole run in a single frame, so round trips scale with *runs*, not
//!   items. All writes serialize through the pool's connection 0.
//! * **Reads** are page-cached: a `label_of`/`next_in_order` miss
//!   fetches one [`Request::Page`] of `(handle, label)` pairs in list
//!   order, so in-order scans cost `O(n / page)` round trips. Any write
//!   *through this client* invalidates the cache, and so does any
//!   reconnect (the pool's epoch is baked into the cache) — a restarted
//!   server may hold arbitrarily different state, so stale labels can
//!   never be served across a reconnect.
//! * **Pipelining**: [`pipeline_splices`](RemoteScheme::pipeline_splices)
//!   writes a whole splice plan before reading any response, amortizing
//!   the wire latency across the plan.
//! * **Coalescing** (opt-in, [`ClientPolicy::coalesce`]): single-op
//!   `insert_after`/`delete` calls are buffered in a write buffer that
//!   merges adjacent ops into splice runs and pipelines the whole
//!   backlog on flush — see below.
//!
//! **Consistency contract:** the page cache assumes this client is the
//! store's only *writer* — the network analogue of the `&mut self`
//! exclusivity the trait family already encodes locally. Multiple
//! concurrent readers are fine (the pool spreads them over its
//! connections and the server's `RwLock` serves them in parallel), but
//! a write issued through a *different* client can relabel items
//! without invalidating this client's cache. For multi-writer
//! deployments, route all writes through one client (e.g. a
//! `ShardedScheme` owning one `RemoteScheme` per segment).
//!
//! ## The coalescing write buffer
//!
//! With `coalesce` on, a single-op insert returns a **provisional
//! handle** (top bit set) immediately and the op is queued; an
//! `insert_after` anchored on the run's last minted handle *extends the
//! run* instead of queueing a new splice, and a `delete` of the cached
//! successor of the previous delete extends a delete run the same way.
//! The buffer flushes — pipelined, so a backlog of `k` splices is one
//! round trip per dependency segment, usually exactly one — on **any
//! read**, on `len`, on [`flush`](RemoteScheme::flush), and when the
//! backlog hits its cap. At flush, provisional handles resolve to the
//! server's real ones; every later use of a provisional handle (as an
//! anchor, in a read, anywhere) translates transparently.
//!
//! The trade-offs are the usual write-behind ones, and are why this is
//! opt-in: a buffered write's error surfaces at the *flush* (i.e. on a
//! later read or explicit `flush()`), not at the call that queued it,
//! and a client dropped without flushing loses its backlog (drop runs a
//! best-effort flush).
//!
//! Transport accounting rides in [`Instrumented::stats_breakdown`]: the
//! server-side breakdown is extended with
//! `net/{round-trips,bytes-in,bytes-out,reconnects}` entries (values in
//! the `node_touches` field), also available in typed form via
//! [`transport_stats`](RemoteScheme::transport_stats).

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use ltree_core::{
    BatchLabeling, DynScheme, Instrumented, LTreeError, LeafHandle, OrderedLabeling,
    OrderedLabelingMut, Result, SchemeStats, Splice, SpliceResult,
};

use crate::pool::{ClientPolicy, ConnectionPool, Endpoint, WriteConn};
use crate::server::LabelServer;
use crate::wire::{Request, Response, WireSplice};

/// How many `(handle, label)` pairs a read miss prefetches.
const PAGE_LIMIT: u32 = 256;

/// Provisional handles minted by the coalescing write buffer live above
/// this bit; server-assigned handles stay below it (they are arena /
/// directory indices in every scheme the workspace ships).
const PROVISIONAL_BASE: u64 = 1 << 63;

/// Backlog cap: the write buffer flushes itself once this many pending
/// splices accumulate, bounding client memory and per-flush latency.
const MAX_PENDING_SPLICES: usize = 512;

/// Item-count cap on the backlog: run extension keeps the *splice*
/// count at 1 while minting without bound, so the buffer also flushes
/// once this many items are queued. Kept far below the ~8M-handle
/// response a 64 MiB frame fits, so a flushed run's `Handles` reply can
/// never hit the frame cap.
const MAX_PENDING_ITEMS: usize = 1 << 20;

/// Client-side transport counters, in typed form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Request/response exchanges. A pipelined plan counts once.
    pub round_trips: u64,
    /// Bytes written to the transports, frame prefixes included.
    pub bytes_sent: u64,
    /// Bytes read from the transports, frame prefixes included.
    pub bytes_received: u64,
    /// Connections re-established after a transport failure.
    pub reconnects: u64,
}

/// The cached page: one contiguous in-order run of `(handle, label)`
/// pairs, plus whether it starts at the list head / reaches the end.
/// `epoch` pins the page to the pool's reconnect epoch — a page fetched
/// before a reconnect is dead the moment the reconnect happens.
#[derive(Default)]
struct PageCache {
    items: Vec<(u64, u128)>,
    index: HashMap<u64, usize>,
    from_start: bool,
    at_end: bool,
    valid: bool,
    epoch: u64,
}

impl PageCache {
    fn install(&mut self, items: Vec<(u64, u128)>, from_start: bool, at_end: bool, epoch: u64) {
        self.index = items
            .iter()
            .enumerate()
            .map(|(i, &(h, _))| (h, i))
            .collect();
        self.items = items;
        self.from_start = from_start;
        self.at_end = at_end;
        self.valid = true;
        self.epoch = epoch;
    }

    fn invalidate(&mut self) {
        *self = PageCache::default();
    }

    fn label(&self, h: u64) -> Option<u128> {
        if !self.valid {
            return None;
        }
        self.index.get(&h).map(|&i| self.items[i].1)
    }

    /// `None` = unknown (fetch needed); `Some(None)` = definitely the
    /// list end; `Some(Some(next))` = known successor.
    fn next(&self, h: u64) -> Option<Option<u64>> {
        if !self.valid {
            return None;
        }
        let &i = self.index.get(&h)?;
        if i + 1 < self.items.len() {
            Some(Some(self.items[i + 1].0))
        } else if self.at_end {
            Some(None)
        } else {
            None
        }
    }
}

/// One queued splice in the coalescing write buffer.
enum PendingSplice {
    /// Insert `minted.len()` items after `anchor` (which may itself be
    /// provisional). `minted` holds the provisional handles in run
    /// order; flush zips them with the server's real ones.
    Insert { anchor: u64, minted: Vec<u64> },
    /// Delete `count` live items starting at `first`; `last` remembers
    /// the newest member so a `delete` of its cached successor extends
    /// the run.
    Delete { first: u64, count: u64, last: u64 },
}

/// The opt-in coalescing write buffer. See the
/// [module docs](self#the-coalescing-write-buffer).
#[derive(Default)]
struct WriteBuffer {
    enabled: bool,
    next_provisional: u64,
    /// Provisional handle → server handle, installed at flush; grows
    /// for the client's lifetime (one entry per coalesced insert).
    resolved: HashMap<u64, u64>,
    /// Server handle → provisional handle: the same aliases, reversed,
    /// so read paths that *return* handles (`next_in_order`, the
    /// cursor) present each item under the one name the caller already
    /// holds. An item only ever has two names when the buffer minted
    /// it; the provisional one wins everywhere.
    aliases: HashMap<u64, u64>,
    pending: Vec<PendingSplice>,
    /// Items queued across `pending` (minted inserts + delete-run
    /// members) — the [`MAX_PENDING_ITEMS`] cap counts these, since run
    /// extension grows item counts without growing `pending.len()`.
    pending_items: usize,
    /// A flush error that struck inside a call whose signature cannot
    /// carry it (`len`, `first_in_order`, …), kept here so the *next
    /// fallible* call reports it instead of the backlog vanishing
    /// silently.
    failed: Option<LTreeError>,
}

impl WriteBuffer {
    fn mint(&mut self) -> u64 {
        let h = PROVISIONAL_BASE + self.next_provisional;
        self.next_provisional += 1;
        h
    }

    /// The server-side handle for `h`, if known: real handles pass
    /// through, resolved provisionals translate, pending or dangling
    /// provisionals are `None`.
    fn try_real(&self, h: u64) -> Option<u64> {
        if h < PROVISIONAL_BASE {
            Some(h)
        } else {
            self.resolved.get(&h).copied()
        }
    }

    /// Translate a handle for use inside a *buffered* op: resolved
    /// provisionals become real, pending ones stay provisional (they
    /// resolve at flush).
    fn translate_pending(&self, h: u64) -> u64 {
        self.try_real(h).unwrap_or(h)
    }
}

/// A labeling scheme living behind a wire protocol. See the
/// [module docs](self); construct with [`connect`](Self::connect) /
/// [`connect_with`](Self::connect_with) (an external server),
/// [`served`](Self::served) / [`served_with`](Self::served_with) (an
/// in-process loopback server), or through the registry specs
/// `remote(host:port[,options])` / `served(inner[,options])`.
///
/// ```
/// use ltree_core::registry::SchemeRegistry;
/// use ltree_core::{BatchLabeling, OrderedLabeling, OrderedLabelingMut, Splice};
/// use ltree_remote::register;
///
/// let mut reg = SchemeRegistry::with_builtin();
/// register(&mut reg);
/// // A loopback server is spawned behind the scenes; conns=2 pools two
/// // transports onto it.
/// let mut scheme = reg.build("served(ltree(4,2),conns=2)").unwrap();
/// let handles = scheme.bulk_build(100).unwrap(); // one round trip
/// scheme
///     .splice(Splice::InsertAfter { anchor: handles[50], count: 10 })
///     .unwrap(); // one round trip for the whole batch
/// assert_eq!(scheme.live_len(), 110);
/// assert_eq!(scheme.cursor().count(), 110); // paged, not one trip per item
/// ```
pub struct RemoteScheme {
    /// Declared before `server` so transports close first on drop and a
    /// loopback server's threads are joined against closed sockets.
    pool: ConnectionPool,
    cache: Mutex<PageCache>,
    buffer: Mutex<WriteBuffer>,
    /// The loopback server, when this client owns one (`served`).
    server: Option<LabelServer>,
}

impl RemoteScheme {
    /// Connect to a [`LabelServer`] at `addr` (`host:port`; a
    /// `|`-separated list connects to its first entry) with the default
    /// (single-connection) [`ClientPolicy`]. The version handshake
    /// costs one round trip.
    pub fn connect(addr: &str) -> Result<RemoteScheme> {
        Self::connect_with(addr, ClientPolicy::default())
    }

    /// [`connect`](Self::connect) under an explicit policy.
    pub fn connect_with(addr: &str, policy: ClientPolicy) -> Result<RemoteScheme> {
        Self::from_endpoint(Endpoint::tcp(addr)?, policy, None)
    }

    /// Spawn an in-process loopback [`LabelServer`] hosting `inner` and
    /// connect to it with the default policy. The server shuts down
    /// when the returned scheme drops, so tests, benches and CI need no
    /// external process. This is the `served(inner)` registry spec.
    pub fn served(inner: Box<dyn DynScheme>) -> Result<RemoteScheme> {
        Self::served_with(inner, ClientPolicy::default())
    }

    /// [`served`](Self::served) under an explicit policy.
    pub fn served_with(inner: Box<dyn DynScheme>, policy: ClientPolicy) -> Result<RemoteScheme> {
        let server = LabelServer::bind("127.0.0.1:0", inner)?;
        let endpoint = Endpoint::loopback(&server);
        Self::from_endpoint(endpoint, policy, Some(server))
    }

    /// The general constructor: any [`Endpoint`] under any policy,
    /// optionally owning the server it points at.
    pub fn from_endpoint(
        endpoint: Endpoint,
        policy: ClientPolicy,
        server: Option<LabelServer>,
    ) -> Result<RemoteScheme> {
        let pool = ConnectionPool::connect(endpoint, policy)?;
        Ok(RemoteScheme {
            pool,
            cache: Mutex::new(PageCache::default()),
            buffer: Mutex::new(WriteBuffer {
                enabled: policy.coalesce,
                ..WriteBuffer::default()
            }),
            server,
        })
    }

    /// The loopback server, when this scheme owns one — the host-side
    /// view of the same state (scheme stats, per-connection counters).
    pub fn server(&self) -> Option<&LabelServer> {
        self.server.as_ref()
    }

    /// The policy this client runs under.
    pub fn policy(&self) -> &ClientPolicy {
        self.pool.policy()
    }

    /// Client-side transport counters in typed form, aggregated over
    /// the pool. The same numbers ride in
    /// [`stats_breakdown`](Instrumented::stats_breakdown) as `net/...`
    /// entries.
    pub fn transport_stats(&self) -> TransportStats {
        self.pool.transport_stats()
    }

    /// Flush the coalescing write buffer: the whole backlog is
    /// pipelined to the server (provisional handles resolving along the
    /// way) before this returns. A no-op without `coalesce`, or with an
    /// empty backlog. Any read, `len`, or the backlog cap triggers the
    /// same flush implicitly; an error a non-fallible path (`len`,
    /// `first_in_order`, …) had to swallow is re-reported here.
    pub fn flush(&self) -> Result<()> {
        self.flush_pending()
    }

    /// Apply a whole splice plan with **pipelining**: every request
    /// frame is written before any response is read, so the wire
    /// latency is paid once for the plan instead of once per splice.
    /// Results come back in plan order. On an error response the earlier
    /// splices in the plan have already been applied (same contract as
    /// [`ltree_core::SpliceBuilder::apply`]).
    pub fn pipeline_splices(&mut self, plan: &[Splice]) -> Result<Vec<SpliceResult>> {
        if plan.is_empty() {
            return Ok(Vec::new());
        }
        self.flush()?;
        let wire_plan: Vec<WireSplice> = plan
            .iter()
            .map(|op| self.to_wire_resolved(*op))
            .collect::<Result<_>>()?;
        self.lock_cache().invalidate();
        let mut conn = self.pool.write_conn()?;
        for op in &wire_plan {
            conn.send(&Request::Splice(*op))?;
        }
        let mut out = Vec::with_capacity(plan.len());
        let mut first_err = None;
        for _ in plan {
            match conn.recv()? {
                Response::Handles(hs) => out.push(SpliceResult::Inserted(
                    hs.into_iter().map(LeafHandle).collect(),
                )),
                Response::Count(n) => out.push(SpliceResult::Deleted(n as usize)),
                Response::Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                other => return Err(unexpected(&other)),
            }
        }
        conn.count_round_trip();
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn lock_buffer(&self) -> MutexGuard<'_, WriteBuffer> {
        self.buffer.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The cache, with the reconnect epoch enforced: a page from before
    /// any transport failure is invalidated on sight.
    fn lock_cache(&self) -> MutexGuard<'_, PageCache> {
        let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
        if cache.valid && cache.epoch != self.pool.epoch() {
            cache.invalidate();
        }
        cache
    }

    /// Flush the backlog (cheap when not coalescing) and report any
    /// error — this flush's, or one a non-fallible path had to park in
    /// `failed`. The fallible entry points all come through here, so a
    /// swallowed flush failure survives exactly until the caller next
    /// has an error channel.
    fn flush_pending(&self) -> Result<()> {
        let mut buf = self.lock_buffer();
        if !buf.pending.is_empty() {
            if let Err(e) = self.flush_locked(&mut buf) {
                buf.failed = Some(e);
            }
        }
        match buf.failed.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Flush for paths whose signatures cannot carry an error (`len`,
    /// `first_in_order`, the stats reads): `false` means the flush (or
    /// an earlier one) failed — the error stays parked in the buffer
    /// for the next fallible call instead of vanishing.
    fn flush_quiet(&self) -> bool {
        let mut buf = self.lock_buffer();
        if !buf.pending.is_empty() {
            if let Err(e) = self.flush_locked(&mut buf) {
                buf.failed = Some(e);
            }
        }
        buf.failed.is_none()
    }

    /// Resolve a (possibly provisional) handle for an immediate server
    /// call. The caller must have flushed first.
    fn resolve(&self, h: u64) -> Result<u64> {
        self.lock_buffer()
            .try_real(h)
            .ok_or(LTreeError::UnknownHandle)
    }

    /// The caller-visible name for a server handle: the provisional
    /// alias when the coalescing buffer minted this item, the server
    /// handle itself otherwise.
    fn alias(&self, h: u64) -> u64 {
        let buf = self.lock_buffer();
        if buf.aliases.is_empty() {
            h
        } else {
            buf.aliases.get(&h).copied().unwrap_or(h)
        }
    }

    fn to_wire_resolved(&self, op: Splice) -> Result<WireSplice> {
        Ok(match op {
            Splice::InsertAfter { anchor, count } => WireSplice::InsertAfter {
                anchor: self.resolve(anchor.0)?,
                count: count as u64,
            },
            Splice::DeleteRun { first, count } => WireSplice::DeleteRun {
                first: self.resolve(first.0)?,
                count: count as u64,
            },
        })
    }

    /// A server read on any pooled connection. Callers flush first so
    /// reads observe all writes — fallible paths via
    /// [`flush_pending`](Self::flush_pending), infallible ones via
    /// [`flush_quiet`](Self::flush_quiet).
    fn read_raw(&self, req: Request) -> Result<Response> {
        self.pool.call_read(&req)
    }

    /// A mutating call: flush the backlog first (order matters), then
    /// call through the write connection. The page cache is stale the
    /// moment the server applies the write, error or not (a failed
    /// batch may have applied a prefix on some schemes).
    fn call_write(&mut self, req: Request) -> Result<Response> {
        self.flush_pending()?;
        self.lock_cache().invalidate();
        self.pool.call_write(&req)
    }

    /// Fetch one page starting at `from`, install it in the cache, and
    /// hand it back. Callers answer from the *returned* page — it came
    /// from the live connection, so it is fresh by construction even
    /// when a reconnect raced the fetch; the cache install is merely an
    /// accelerator, and the conservative pre-call epoch sample may
    /// discard it (a reconnect mid-fetch means other cached pages can
    /// no longer be trusted, this response can).
    fn fetch_page(&self, from: Option<u64>) -> Result<(Vec<(u64, u128)>, bool)> {
        let epoch = self.pool.epoch();
        let resp = self.read_raw(Request::Page {
            from,
            limit: PAGE_LIMIT,
        })?;
        match resp {
            Response::Page { items, at_end } => {
                self.lock_cache()
                    .install(items.clone(), from.is_none(), at_end, epoch);
                Ok((items, at_end))
            }
            other => Err(unexpected(&other)),
        }
    }

    fn cached_label(&self, h: u64) -> Option<u128> {
        self.lock_cache().label(h)
    }

    fn cached_next(&self, h: u64) -> Option<Option<u64>> {
        self.lock_cache().next(h)
    }

    /// Queue a single-item insert, extending the trailing run when the
    /// anchor is its last minted handle. Returns the provisional handle.
    fn buffered_insert_after(&self, anchor: u64) -> Result<u64> {
        let mut buf = self.lock_buffer();
        let anchor = buf.translate_pending(anchor);
        let p = buf.mint();
        match buf.pending.last_mut() {
            Some(PendingSplice::Insert { minted, .. }) if minted.last() == Some(&anchor) => {
                minted.push(p);
            }
            _ => buf.pending.push(PendingSplice::Insert {
                anchor,
                minted: vec![p],
            }),
        }
        buf.pending_items += 1;
        self.flush_if_full(buf)?;
        Ok(p)
    }

    /// Queue a whole insert run (the batched entry point).
    fn buffered_insert_many(&self, anchor: u64, k: usize) -> Result<Vec<u64>> {
        if k == 0 {
            return Err(LTreeError::EmptyBatch);
        }
        let mut buf = self.lock_buffer();
        let anchor = buf.translate_pending(anchor);
        let minted: Vec<u64> = (0..k).map(|_| buf.mint()).collect();
        match buf.pending.last_mut() {
            Some(PendingSplice::Insert { minted: run, .. }) if run.last() == Some(&anchor) => {
                run.extend_from_slice(&minted);
            }
            _ => buf.pending.push(PendingSplice::Insert {
                anchor,
                minted: minted.clone(),
            }),
        }
        buf.pending_items += k;
        self.flush_if_full(buf)?;
        Ok(minted)
    }

    /// Queue a single-item delete, extending the trailing delete run
    /// when the page cache knows `h` is its successor. The cache is
    /// still valid while ops are buffered (the server has not moved) —
    /// but only if **no insert is pending**: a queued insert will land
    /// before the deletes at flush and can place fresh items inside the
    /// cached successor gap, so any pending insert disables extension
    /// (the deletes still pipeline into one flush).
    fn buffered_delete(&self, h: u64) -> Result<()> {
        let mut buf = self.lock_buffer();
        let h = buf.translate_pending(h);
        let extends = match buf.pending.last() {
            Some(PendingSplice::Delete { last, .. })
                if *last < PROVISIONAL_BASE
                    && h < PROVISIONAL_BASE
                    && !buf
                        .pending
                        .iter()
                        .any(|p| matches!(p, PendingSplice::Insert { .. })) =>
            {
                self.cached_next(*last) == Some(Some(h))
            }
            _ => false,
        };
        if extends {
            if let Some(PendingSplice::Delete { count, last, .. }) = buf.pending.last_mut() {
                *count += 1;
                *last = h;
            }
        } else {
            buf.pending.push(PendingSplice::Delete {
                first: h,
                count: 1,
                last: h,
            });
        }
        buf.pending_items += 1;
        self.flush_if_full(buf)?;
        Ok(())
    }

    fn flush_if_full(&self, mut buf: MutexGuard<'_, WriteBuffer>) -> Result<()> {
        if buf.pending.len() >= MAX_PENDING_SPLICES || buf.pending_items >= MAX_PENDING_ITEMS {
            self.flush_locked(&mut buf)
        } else {
            Ok(())
        }
    }

    /// Drive the backlog to the server, pipelined. Splices whose
    /// arguments are already resolvable stream out back-to-back; a
    /// splice that needs a handle minted earlier in the backlog forces
    /// one response drain first — so a dependency-free backlog is
    /// exactly one round trip. On the first scheme error the remaining
    /// *undrained* backlog is dropped (prefix contract, as in
    /// [`pipeline_splices`](Self::pipeline_splices)) and the error
    /// surfaces from this flush.
    fn flush_locked(&self, buf: &mut WriteBuffer) -> Result<()> {
        if buf.pending.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut buf.pending);
        buf.pending_items = 0;
        // The server is about to move: cached labels die now.
        self.lock_cache().invalidate();
        let mut conn = self.pool.write_conn()?;
        let mut first_err: Option<LTreeError> = None;
        let mut sent: Vec<&PendingSplice> = Vec::new();
        for p in &pending {
            let arg = match p {
                PendingSplice::Insert { anchor, .. } => *anchor,
                PendingSplice::Delete { first, .. } => *first,
            };
            if buf.try_real(arg).is_none() && !sent.is_empty() {
                drain(&mut conn, &mut sent, buf, &mut first_err)?;
            }
            if first_err.is_some() {
                // Prefix contract: once something failed, stop feeding
                // the server ops that may depend on it.
                break;
            }
            let req = match p {
                PendingSplice::Insert { anchor, minted } => match buf.try_real(*anchor) {
                    Some(a) => Request::Splice(WireSplice::InsertAfter {
                        anchor: a,
                        count: minted.len() as u64,
                    }),
                    None => {
                        first_err.get_or_insert(LTreeError::UnknownHandle);
                        break;
                    }
                },
                PendingSplice::Delete { first, count, .. } => match buf.try_real(*first) {
                    // An uncoalesced single delete keeps exact per-op
                    // error semantics (a tombstone is DeletedLeaf, not a
                    // silently-empty run) — still one frame either way.
                    Some(f) if *count == 1 => Request::Delete(f),
                    Some(f) => Request::Splice(WireSplice::DeleteRun {
                        first: f,
                        count: *count,
                    }),
                    None => {
                        first_err.get_or_insert(LTreeError::UnknownHandle);
                        break;
                    }
                },
            };
            conn.send(&req)?;
            sent.push(p);
        }
        drain(&mut conn, &mut sent, buf, &mut first_err)?;
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Read one response per sent splice, installing provisional→real
/// translations, and charge the group as one round trip.
fn drain(
    conn: &mut WriteConn<'_>,
    sent: &mut Vec<&PendingSplice>,
    buf: &mut WriteBuffer,
    first_err: &mut Option<LTreeError>,
) -> Result<()> {
    if sent.is_empty() {
        return Ok(());
    }
    for p in sent.drain(..) {
        let resp = conn.recv()?;
        match (p, resp) {
            (PendingSplice::Insert { minted, .. }, Response::Handles(hs)) => {
                if hs.len() != minted.len() {
                    return Err(LTreeError::Remote {
                        context: format!(
                            "insert run returned {} handles for {} queued items",
                            hs.len(),
                            minted.len()
                        ),
                    });
                }
                for (&prov, h) in minted.iter().zip(hs) {
                    buf.resolved.insert(prov, h);
                    buf.aliases.insert(h, prov);
                }
            }
            (PendingSplice::Delete { .. }, Response::Count(_) | Response::Unit) => {}
            (_, Response::Err(e)) => {
                if first_err.is_none() {
                    *first_err = Some(e);
                }
            }
            (_, other) => return Err(unexpected(&other)),
        }
    }
    conn.count_round_trip();
    Ok(())
}

fn unexpected(resp: &Response) -> LTreeError {
    LTreeError::Remote {
        context: format!("unexpected response frame: {resp:?}"),
    }
}

impl OrderedLabeling for RemoteScheme {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        self.flush_pending()?;
        let h = self.resolve(h.0)?;
        if let Some(l) = self.cached_label(h) {
            return Ok(l);
        }
        // Miss: prefetch a page starting at `h` — in-order scans (the
        // dominant read pattern) then hit the cache for the next
        // PAGE_LIMIT items. A handle the server rejects propagates its
        // exact error.
        let (items, _) = self.fetch_page(Some(h))?;
        items
            .iter()
            .find(|&&(ih, _)| ih == h)
            .map(|&(_, l)| l)
            .ok_or(LTreeError::UnknownHandle)
    }

    fn len(&self) -> usize {
        // The trait cannot carry a transport error here; a broken
        // connection reports 0, and a failed flush parks its error for
        // the next fallible call before reporting 0.
        if !self.flush_quiet() {
            return 0;
        }
        match self.read_raw(Request::Len) {
            Ok(Response::Count(n)) => n as usize,
            _ => 0,
        }
    }

    fn live_len(&self) -> usize {
        if !self.flush_quiet() {
            return 0;
        }
        match self.read_raw(Request::LiveLen) {
            Ok(Response::Count(n)) => n as usize,
            _ => 0,
        }
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        if !self.flush_quiet() {
            return None;
        }
        // A valid from-start page answers authoritatively — including
        // "the list is empty" (no refetch per poll on an empty store).
        let cached: Option<Option<u64>> = {
            let cache = self.lock_cache();
            (cache.valid && cache.from_start).then(|| cache.items.first().map(|&(h, _)| h))
        };
        let first = match cached {
            Some(answer) => answer,
            None => {
                let (items, _) = self.fetch_page(None).ok()?;
                items.first().map(|&(h, _)| h)
            }
        };
        first.map(|h| LeafHandle(self.alias(h)))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        if !self.flush_quiet() {
            return None;
        }
        let h = self.resolve(h.0).ok()?;
        if let Some(known) = self.cached_next(h) {
            return known.map(|n| LeafHandle(self.alias(n)));
        }
        // Unknown: page from `h`, answered from the returned page (`h`
        // leads it). A rejected or untracked handle means the scheme no
        // longer knows it — `None`, per the trait contract.
        let (items, at_end) = self.fetch_page(Some(h)).ok()?;
        let i = items.iter().position(|&(ih, _)| ih == h)?;
        match items.get(i + 1) {
            Some(&(n, _)) => Some(LeafHandle(self.alias(n))),
            None => {
                debug_assert!(at_end, "a non-final page always holds a successor");
                None
            }
        }
    }

    fn label_space_bits(&self) -> u32 {
        if !self.flush_quiet() {
            return 0;
        }
        match self.read_raw(Request::LabelSpaceBits) {
            Ok(Response::Bits(b)) => b,
            _ => 0,
        }
    }

    fn memory_bytes(&self) -> usize {
        if !self.flush_quiet() {
            return 0;
        }
        match self.read_raw(Request::MemoryBytes) {
            Ok(Response::Count(n)) => n as usize,
            _ => 0,
        }
    }
}

impl OrderedLabelingMut for RemoteScheme {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        match self.call_write(Request::BulkBuild(n as u64))? {
            Response::Handles(hs) => Ok(hs.into_iter().map(LeafHandle).collect()),
            other => Err(unexpected(&other)),
        }
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        match self.call_write(Request::InsertFirst)? {
            Response::Handle(h) => Ok(LeafHandle(h)),
            other => Err(unexpected(&other)),
        }
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        if self.lock_buffer().enabled {
            return self.buffered_insert_after(anchor.0).map(LeafHandle);
        }
        match self.call_write(Request::InsertAfter(anchor.0))? {
            Response::Handle(h) => Ok(LeafHandle(h)),
            other => Err(unexpected(&other)),
        }
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        // `insert_before` has no splice form: flush and pass through.
        self.flush_pending()?;
        let anchor = self.resolve(anchor.0)?;
        match self.call_write(Request::InsertBefore(anchor))? {
            Response::Handle(h) => Ok(LeafHandle(h)),
            other => Err(unexpected(&other)),
        }
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        if self.lock_buffer().enabled {
            return self.buffered_delete(h.0);
        }
        match self.call_write(Request::Delete(h.0))? {
            Response::Unit => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

impl BatchLabeling for RemoteScheme {
    /// One frame for the whole batch — never `k` single-insert trips.
    /// Under `coalesce` the batch joins the backlog (and may merge with
    /// an adjacent queued run).
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        if self.lock_buffer().enabled {
            return Ok(self
                .buffered_insert_many(anchor.0, k)?
                .into_iter()
                .map(LeafHandle)
                .collect());
        }
        match self.call_write(Request::Splice(WireSplice::InsertAfter {
            anchor: anchor.0,
            count: k as u64,
        }))? {
            Response::Handles(hs) => Ok(hs.into_iter().map(LeafHandle).collect()),
            other => Err(unexpected(&other)),
        }
    }

    /// One frame for the whole run. Not coalesced — the deleted count
    /// is only knowable server-side (a run may stop at the list end),
    /// so this flushes the backlog and executes directly.
    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        self.flush_pending()?;
        let first = self.resolve(first.0)?;
        match self.call_write(Request::Splice(WireSplice::DeleteRun {
            first,
            count: count as u64,
        }))? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected(&other)),
        }
    }

    fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
        match op {
            Splice::InsertAfter { anchor, count } => Ok(SpliceResult::Inserted(
                self.insert_many_after(anchor, count)?,
            )),
            Splice::DeleteRun { first, count } => {
                Ok(SpliceResult::Deleted(self.delete_run(first, count)?))
            }
        }
    }
}

impl Instrumented for RemoteScheme {
    /// The hosted scheme's own counters (one round trip, after a
    /// flush). A transport or flush failure reports zeroed counters —
    /// the trait cannot carry errors; the next fallible call will
    /// surface it.
    fn scheme_stats(&self) -> SchemeStats {
        if !self.flush_quiet() {
            return SchemeStats::default();
        }
        match self.read_raw(Request::Stats) {
            Ok(Response::Stats(s)) => s,
            _ => SchemeStats::default(),
        }
    }

    /// Resets the hosted scheme's counters *and* this client's transport
    /// counters, so the `net/...` breakdown entries follow the same
    /// reset discipline as the scheme counters.
    fn reset_scheme_stats(&mut self) {
        if self.flush_quiet() {
            let _ = self.read_raw(Request::ResetStats);
        }
        self.pool.reset_stats();
    }

    /// The server-side breakdown plus this client's aggregate transport
    /// counters as `net/{round-trips,bytes-in,bytes-out,reconnects}`
    /// entries (values in the `node_touches` field, the generic
    /// "accesses" column; in/out are relative to this client — the same
    /// convention the server uses for its `net/conn<i>/...` entries).
    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        let mut out = if self.flush_quiet() {
            match self.read_raw(Request::StatsBreakdown) {
                Ok(Response::Breakdown(entries)) => entries,
                _ => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let t = self.transport_stats();
        out.extend(crate::server::transport_entries(
            "net",
            t.round_trips,
            t.bytes_received,
            t.bytes_sent,
        ));
        out.push((
            "net/reconnects".to_owned(),
            SchemeStats {
                node_touches: t.reconnects,
                ..SchemeStats::default()
            },
        ));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The server's full metric snapshot — its own instrumentation
    /// (request counter, phase histograms) plus the hosted scheme's
    /// metrics — fetched in one round trip. This is how `repro metrics`
    /// scrapes a running server. Empty on transport failure (the trait
    /// cannot carry errors here).
    fn metrics(&self) -> Vec<ltree_core::metrics::Metric> {
        if !self.flush_quiet() {
            return Vec::new();
        }
        match self.read_raw(Request::Metrics) {
            Ok(Response::Metrics(m)) => m,
            _ => Vec::new(),
        }
    }
}

impl Drop for RemoteScheme {
    fn drop(&mut self) {
        // Best-effort: don't silently lose a coalesced backlog.
        let _ = self.flush_pending();
        // The pool (declared first) then drops its transports, closing
        // sockets so an owned loopback server's threads unblock before
        // `LabelServer::drop` joins them.
    }
}
