//! [`RemoteScheme`] — a client-side labeling scheme whose state lives in
//! a [`LabelServer`].
//!
//! The client implements the whole ordered-labeling trait family, so a
//! remote store drops into any generic code path — a `Document`, the
//! conformance suite, a `ShardedScheme` segment — unchanged:
//!
//! * **Writes** are one frame per trait call; batch splices carry the
//!   whole run in a single frame, so round trips scale with *runs*, not
//!   items (this is where `SpliceBuilder` pays off over a network — a
//!   10k-item bulk load is one round trip).
//! * **Reads** are page-cached: a `label_of`/`next_in_order` miss
//!   fetches one [`Request::Page`] of
//!   `(handle, label)` pairs in list order, so in-order scans (cursor
//!   walks, order validation) cost `O(n / page)` round trips. Any write
//!   *through this client* invalidates the cache — labels may have
//!   moved arbitrarily.
//!
//! **Consistency contract:** the page cache assumes this client is the
//! store's only *writer* — the network analogue of the `&mut self`
//! exclusivity the trait family already encodes locally. Multiple
//! concurrent readers are fine (the server's `RwLock` serves them in
//! parallel), but a write issued through a *different* connection can
//! relabel items without invalidating this client's cache, so cached
//! reads may return stale labels until this client's next write. For
//! multi-writer deployments, route all writes through one client (e.g.
//! a `ShardedScheme` owning one `RemoteScheme` per segment).
//! * **Pipelining**: [`pipeline_splices`](RemoteScheme::pipeline_splices)
//!   writes a whole splice plan before reading any response, amortizing
//!   the wire latency across the plan.
//!
//! Transport accounting rides in [`Instrumented::stats_breakdown`]: the
//! server-side breakdown is extended with
//! `net/{round-trips,bytes-in,bytes-out}` entries (values in the
//! `node_touches` field), and is also available in typed form via
//! [`transport_stats`](RemoteScheme::transport_stats).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpStream};
use std::sync::Mutex;

use ltree_core::{
    BatchLabeling, DynScheme, Instrumented, LTreeError, LeafHandle, OrderedLabeling,
    OrderedLabelingMut, Result, SchemeStats, Splice, SpliceResult,
};

use crate::server::LabelServer;
use crate::wire::{
    decode_response, encode_request, io_err, read_frame, write_frame, Request, Response,
    WireSplice, PROTOCOL_VERSION,
};

/// How many `(handle, label)` pairs a read miss prefetches.
const PAGE_LIMIT: u32 = 256;

/// Client-side transport counters, in typed form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Request/response exchanges. A pipelined plan counts once.
    pub round_trips: u64,
    /// Bytes written to the socket, frame prefixes included.
    pub bytes_sent: u64,
    /// Bytes read from the socket, frame prefixes included.
    pub bytes_received: u64,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    stats: TransportStats,
}

impl Conn {
    fn send(&mut self, req: &Request) -> Result<()> {
        self.stats.bytes_sent += write_frame(&mut self.writer, &encode_request(req))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| LTreeError::Remote {
            context: "server closed the connection".into(),
        })?;
        self.stats.bytes_received += 4 + payload.len() as u64;
        decode_response(&payload)
    }

    /// One round trip. Error responses become `Err` here, so callers
    /// only ever see the success variants.
    fn call(&mut self, req: &Request) -> Result<Response> {
        self.send(req)?;
        let resp = self.recv()?;
        self.stats.round_trips += 1;
        match resp {
            Response::Err(e) => Err(e),
            r => Ok(r),
        }
    }
}

/// The cached page: one contiguous in-order run of `(handle, label)`
/// pairs, plus whether it starts at the list head / reaches the end.
#[derive(Default)]
struct PageCache {
    items: Vec<(u64, u128)>,
    index: HashMap<u64, usize>,
    from_start: bool,
    at_end: bool,
    valid: bool,
}

impl PageCache {
    fn install(&mut self, items: Vec<(u64, u128)>, from_start: bool, at_end: bool) {
        self.index = items
            .iter()
            .enumerate()
            .map(|(i, &(h, _))| (h, i))
            .collect();
        self.items = items;
        self.from_start = from_start;
        self.at_end = at_end;
        self.valid = true;
    }

    fn invalidate(&mut self) {
        *self = PageCache::default();
    }

    fn label(&self, h: u64) -> Option<u128> {
        if !self.valid {
            return None;
        }
        self.index.get(&h).map(|&i| self.items[i].1)
    }

    /// `None` = unknown (fetch needed); `Some(None)` = definitely the
    /// list end; `Some(Some(next))` = known successor.
    fn next(&self, h: u64) -> Option<Option<u64>> {
        if !self.valid {
            return None;
        }
        let &i = self.index.get(&h)?;
        if i + 1 < self.items.len() {
            Some(Some(self.items[i + 1].0))
        } else if self.at_end {
            Some(None)
        } else {
            None
        }
    }
}

/// A labeling scheme living behind a wire protocol. See the
/// [module docs](self); construct with [`connect`](Self::connect) (an
/// external server), [`served`](Self::served) (an in-process loopback
/// server), or through the registry specs `remote(host:port)` /
/// `served(inner)`.
///
/// ```
/// use ltree_core::registry::SchemeRegistry;
/// use ltree_core::{BatchLabeling, OrderedLabeling, OrderedLabelingMut, Splice};
/// use ltree_remote::register;
///
/// let mut reg = SchemeRegistry::with_builtin();
/// register(&mut reg);
/// // A loopback server thread is spawned behind the scenes.
/// let mut scheme = reg.build("served(ltree(4,2))").unwrap();
/// let handles = scheme.bulk_build(100).unwrap(); // one round trip
/// scheme
///     .splice(Splice::InsertAfter { anchor: handles[50], count: 10 })
///     .unwrap(); // one round trip for the whole batch
/// assert_eq!(scheme.live_len(), 110);
/// assert_eq!(scheme.cursor().count(), 110); // paged, not one trip per item
/// ```
pub struct RemoteScheme {
    conn: Mutex<Conn>,
    cache: Mutex<PageCache>,
    /// The loopback server, when this client owns one (`served`).
    /// Declared after `conn` so the socket closes first on drop and the
    /// server's connection thread sees EOF before `shutdown` joins it.
    server: Option<LabelServer>,
}

impl RemoteScheme {
    /// Connect to a [`LabelServer`] at `addr` (`host:port`) and perform
    /// the version handshake (one round trip).
    pub fn connect(addr: &str) -> Result<RemoteScheme> {
        let stream = TcpStream::connect(addr).map_err(|e| LTreeError::Remote {
            context: format!("connect to {addr}: {e}"),
        })?;
        Self::over(stream, None)
    }

    /// Spawn an in-process loopback [`LabelServer`] hosting `inner` and
    /// connect to it. The server (and its threads) shut down when the
    /// returned scheme drops, so tests, benches and CI need no external
    /// process. This is the `served(inner)` registry spec.
    pub fn served(inner: Box<dyn DynScheme>) -> Result<RemoteScheme> {
        let server = LabelServer::bind("127.0.0.1:0", inner)?;
        let stream = TcpStream::connect(server.local_addr()).map_err(|e| LTreeError::Remote {
            context: format!("loopback connect: {e}"),
        })?;
        Self::over(stream, Some(server))
    }

    fn over(stream: TcpStream, server: Option<LabelServer>) -> Result<RemoteScheme> {
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(io_err)?;
        let mut conn = Conn {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            stats: TransportStats::default(),
        };
        match conn.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello { version } if version == PROTOCOL_VERSION => {}
            Response::Hello { version } => {
                return Err(LTreeError::Remote {
                    context: format!(
                        "protocol version mismatch: server speaks {version}, client speaks {PROTOCOL_VERSION}"
                    ),
                })
            }
            other => return Err(unexpected(&other)),
        }
        Ok(RemoteScheme {
            conn: Mutex::new(conn),
            cache: Mutex::new(PageCache::default()),
            server,
        })
    }

    /// The loopback server, when this scheme owns one — the host-side
    /// view of the same state (scheme stats, per-connection counters).
    pub fn server(&self) -> Option<&LabelServer> {
        self.server.as_ref()
    }

    /// Client-side transport counters in typed form. The same numbers
    /// ride in [`stats_breakdown`](Instrumented::stats_breakdown) as
    /// `net/...` entries.
    pub fn transport_stats(&self) -> TransportStats {
        self.lock_conn().stats
    }

    /// Apply a whole splice plan with **pipelining**: every request
    /// frame is written before any response is read, so the wire
    /// latency is paid once for the plan instead of once per splice.
    /// Results come back in plan order. On an error response the earlier
    /// splices in the plan have already been applied (same contract as
    /// [`ltree_core::SpliceBuilder::apply`]).
    pub fn pipeline_splices(&mut self, plan: &[Splice]) -> Result<Vec<SpliceResult>> {
        if plan.is_empty() {
            return Ok(Vec::new());
        }
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .invalidate();
        let mut conn = self.lock_conn();
        for op in plan {
            conn.send(&Request::Splice(to_wire(*op)))?;
        }
        let mut out = Vec::with_capacity(plan.len());
        let mut first_err = None;
        for _ in plan {
            match conn.recv()? {
                Response::Handles(hs) => out.push(SpliceResult::Inserted(
                    hs.into_iter().map(LeafHandle).collect(),
                )),
                Response::Count(n) => out.push(SpliceResult::Deleted(n as usize)),
                Response::Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                other => return Err(unexpected(&other)),
            }
        }
        conn.stats.round_trips += 1;
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn lock_conn(&self) -> std::sync::MutexGuard<'_, Conn> {
        self.conn.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn call(&self, req: Request) -> Result<Response> {
        self.lock_conn().call(&req)
    }

    /// A mutating call: the page cache is stale the moment the server
    /// applies the write, error or not (a failed batch may have applied
    /// a prefix on some schemes).
    fn call_mut(&mut self, req: Request) -> Result<Response> {
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .invalidate();
        self.call(req)
    }

    /// Fetch one page starting at `from` and install it in the cache.
    fn fetch_page(&self, from: Option<u64>) -> Result<()> {
        let resp = self.call(Request::Page {
            from,
            limit: PAGE_LIMIT,
        })?;
        match resp {
            Response::Page { items, at_end } => {
                self.cache
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .install(items, from.is_none(), at_end);
                Ok(())
            }
            other => Err(unexpected(&other)),
        }
    }

    fn cached_label(&self, h: u64) -> Option<u128> {
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .label(h)
    }

    fn cached_next(&self, h: u64) -> Option<Option<u64>> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner()).next(h)
    }
}

fn to_wire(op: Splice) -> WireSplice {
    match op {
        Splice::InsertAfter { anchor, count } => WireSplice::InsertAfter {
            anchor: anchor.0,
            count: count as u64,
        },
        Splice::DeleteRun { first, count } => WireSplice::DeleteRun {
            first: first.0,
            count: count as u64,
        },
    }
}

fn unexpected(resp: &Response) -> LTreeError {
    LTreeError::Remote {
        context: format!("unexpected response frame: {resp:?}"),
    }
}

impl OrderedLabeling for RemoteScheme {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        if let Some(l) = self.cached_label(h.0) {
            return Ok(l);
        }
        // Miss: prefetch a page starting at `h` — in-order scans (the
        // dominant read pattern) then hit the cache for the next
        // PAGE_LIMIT items. A handle the server rejects propagates its
        // exact error.
        self.fetch_page(Some(h.0))?;
        self.cached_label(h.0).ok_or(LTreeError::UnknownHandle)
    }

    fn len(&self) -> usize {
        // The trait cannot carry a transport error here; a broken
        // connection reports 0 and the next fallible call surfaces it.
        match self.call(Request::Len) {
            Ok(Response::Count(n)) => n as usize,
            _ => 0,
        }
    }

    fn live_len(&self) -> usize {
        match self.call(Request::LiveLen) {
            Ok(Response::Count(n)) => n as usize,
            _ => 0,
        }
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        {
            let cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
            if cache.valid && cache.from_start {
                return cache.items.first().map(|&(h, _)| LeafHandle(h));
            }
        }
        self.fetch_page(None).ok()?;
        let cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
        cache.items.first().map(|&(h, _)| LeafHandle(h))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        if let Some(known) = self.cached_next(h.0) {
            return known.map(LeafHandle);
        }
        // Unknown: page from `h`. A rejected handle means the scheme no
        // longer tracks it — `None`, per the trait contract.
        self.fetch_page(Some(h.0)).ok()?;
        self.cached_next(h.0).flatten().map(LeafHandle)
    }

    fn label_space_bits(&self) -> u32 {
        match self.call(Request::LabelSpaceBits) {
            Ok(Response::Bits(b)) => b,
            _ => 0,
        }
    }

    fn memory_bytes(&self) -> usize {
        match self.call(Request::MemoryBytes) {
            Ok(Response::Count(n)) => n as usize,
            _ => 0,
        }
    }
}

impl OrderedLabelingMut for RemoteScheme {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        match self.call_mut(Request::BulkBuild(n as u64))? {
            Response::Handles(hs) => Ok(hs.into_iter().map(LeafHandle).collect()),
            other => Err(unexpected(&other)),
        }
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        match self.call_mut(Request::InsertFirst)? {
            Response::Handle(h) => Ok(LeafHandle(h)),
            other => Err(unexpected(&other)),
        }
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        match self.call_mut(Request::InsertAfter(anchor.0))? {
            Response::Handle(h) => Ok(LeafHandle(h)),
            other => Err(unexpected(&other)),
        }
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        match self.call_mut(Request::InsertBefore(anchor.0))? {
            Response::Handle(h) => Ok(LeafHandle(h)),
            other => Err(unexpected(&other)),
        }
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        match self.call_mut(Request::Delete(h.0))? {
            Response::Unit => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

impl BatchLabeling for RemoteScheme {
    /// One frame for the whole batch — never `k` single-insert trips.
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        match self.call_mut(Request::Splice(WireSplice::InsertAfter {
            anchor: anchor.0,
            count: k as u64,
        }))? {
            Response::Handles(hs) => Ok(hs.into_iter().map(LeafHandle).collect()),
            other => Err(unexpected(&other)),
        }
    }

    /// One frame for the whole run.
    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        match self.call_mut(Request::Splice(WireSplice::DeleteRun {
            first: first.0,
            count: count as u64,
        }))? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected(&other)),
        }
    }

    fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
        match op {
            Splice::InsertAfter { anchor, count } => Ok(SpliceResult::Inserted(
                self.insert_many_after(anchor, count)?,
            )),
            Splice::DeleteRun { first, count } => {
                Ok(SpliceResult::Deleted(self.delete_run(first, count)?))
            }
        }
    }
}

impl Instrumented for RemoteScheme {
    /// The hosted scheme's own counters (one round trip). A transport
    /// failure reports zeroed counters — the trait cannot carry errors;
    /// the next mutating call will surface the failure properly.
    fn scheme_stats(&self) -> SchemeStats {
        match self.call(Request::Stats) {
            Ok(Response::Stats(s)) => s,
            _ => SchemeStats::default(),
        }
    }

    /// Resets the hosted scheme's counters *and* this client's transport
    /// counters, so the `net/...` breakdown entries follow the same
    /// reset discipline as the scheme counters.
    fn reset_scheme_stats(&mut self) {
        let _ = self.call(Request::ResetStats);
        self.lock_conn().stats = TransportStats::default();
    }

    /// The server-side breakdown plus this client's transport counters
    /// as `net/{round-trips,bytes-in,bytes-out}` entries (values in the
    /// `node_touches` field, the generic "accesses" column; in/out are
    /// relative to this client — the same convention the server uses
    /// for its `net/conn<i>/...` entries).
    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        let mut out = match self.call(Request::StatsBreakdown) {
            Ok(Response::Breakdown(entries)) => entries,
            _ => Vec::new(),
        };
        let t = self.transport_stats();
        out.extend(crate::server::transport_entries(
            "net",
            t.round_trips,
            t.bytes_received,
            t.bytes_sent,
        ));
        out
    }
}

impl Drop for RemoteScheme {
    fn drop(&mut self) {
        // Close the socket explicitly so an owned loopback server's
        // connection thread unblocks before `LabelServer::drop` joins it.
        let conn = self.conn.get_mut().unwrap_or_else(|p| p.into_inner());
        let _ = conn.writer.get_ref().shutdown(Shutdown::Both);
    }
}
