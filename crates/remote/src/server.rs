//! [`LabelServer`] — a TCP server hosting one labeling scheme.
//!
//! The server owns any [`DynScheme`] (usually registry-built) behind an
//! `RwLock`: reads (`label_of`, pages, stats) take the shared lock so
//! concurrent connections read in parallel; writes take the exclusive
//! lock, mirroring the trait family's `&self`/`&mut self` split.
//! Connections are served one thread each, with request pipelining: a
//! client may write any number of request frames before reading the
//! responses, which come back in order.
//!
//! Shutdown is graceful and deterministic: [`LabelServer::shutdown`]
//! (also run on drop) stops the accept loop, unblocks every connection
//! thread by shutting its socket down, and joins them all, so no thread
//! outlives the server value.
//!
//! Per-connection op/byte counters are surfaced through the
//! [`Instrumented`] impl: [`LabelServer::stats_breakdown`] reports the
//! hosted scheme's own breakdown plus `net/conn<i>/...` entries (the
//! counter value rides in the `node_touches` field — transport counters
//! have no native slot in [`SchemeStats`], and `node_touches` is the
//! "generic accesses" column).

use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use ltree_core::metrics::{sort_metrics, Metric};
use ltree_core::registry::{SchemeConfig, SchemeRegistry};
use ltree_core::{
    Cursor, DynScheme, Instrumented, LTreeError, LeafHandle, Result, SchemeStats, Splice,
};
use ltree_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::transport::LoopbackTransport;
use crate::wire::{
    decode_request, encode_response_capped, io_err, read_frame, write_frame, Request, Response,
    WireSplice, MAX_PAGE_ITEMS, PROTOCOL_VERSION,
};

/// Op/byte counters for one connection (or one client transport).
///
/// Ordering: every access is `Relaxed`. These are pure statistics —
/// incremented on the serving thread, read by `stats_breakdown`; no
/// other memory is published under them, and a momentarily torn *view*
/// across the three counters is acceptable in a live report. The
/// atomic RMW still guarantees no increment is ever lost.
#[derive(Debug, Default)]
pub struct TransportCounters {
    /// Requests served (server side) or round trips issued (client side).
    pub ops: AtomicU64,
    /// Bytes received, frame prefixes included.
    pub bytes_in: AtomicU64,
    /// Bytes sent, frame prefixes included.
    pub bytes_out: AtomicU64,
}

/// Render transport counters as `Instrumented::stats_breakdown` entries
/// under `prefix`: `{prefix}/{round-trips,bytes-in,bytes-out}`, the
/// value in the `node_touches` field. One naming convention for both
/// endpoints — `bytes-in`/`bytes-out` are relative to the endpoint
/// reporting them.
pub(crate) fn transport_entries(
    prefix: &str,
    round_trips: u64,
    bytes_in: u64,
    bytes_out: u64,
) -> Vec<(String, SchemeStats)> {
    let entry = |suffix: &str, v: u64| {
        (
            format!("{prefix}/{suffix}"),
            SchemeStats {
                node_touches: v,
                ..SchemeStats::default()
            },
        )
    };
    vec![
        entry("round-trips", round_trips),
        entry("bytes-in", bytes_in),
        entry("bytes-out", bytes_out),
    ]
}

impl TransportCounters {
    /// Render these counters as `Instrumented::stats_breakdown` entries
    /// under `prefix`: `{prefix}/{round-trips,bytes-in,bytes-out}`, the
    /// value in the `node_touches` field.
    pub fn breakdown_entries(&self, prefix: &str) -> Vec<(String, SchemeStats)> {
        transport_entries(
            prefix,
            // relaxed: independent transport statistics; tearing across them is fine.
            self.ops.load(Ordering::Relaxed),
            self.bytes_in.load(Ordering::Relaxed),
            self.bytes_out.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn add(&self, ops: u64, bytes_in: u64, bytes_out: u64) {
        // relaxed: independent statistics; no memory is published under them.
        self.ops.fetch_add(ops, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
    }
}

/// The server's own live instrumentation: the request counter, the
/// active-connection gauge, and the four per-request phase histograms
/// (`net/phase/{decode,lock-wait,apply,encode}`, nanoseconds). Shared by
/// every connection thread and by loopback transports; a `Metrics` wire
/// request (or [`Instrumented::metrics`] on the server) snapshots it
/// together with the hosted scheme's own metrics.
pub(crate) struct ServerMetrics {
    registry: MetricsRegistry,
    pub(crate) requests: Arc<Counter>,
    pub(crate) active_conns: Arc<Gauge>,
    pub(crate) decode: Arc<Histogram>,
    pub(crate) lock_wait: Arc<Histogram>,
    pub(crate) apply: Arc<Histogram>,
    pub(crate) encode: Arc<Histogram>,
}

impl ServerMetrics {
    pub(crate) fn new() -> Arc<ServerMetrics> {
        let registry = MetricsRegistry::new();
        let requests = registry.counter("net/requests");
        let active_conns = registry.gauge("net/active-conns");
        let decode = registry.histogram("net/phase/decode");
        let lock_wait = registry.histogram("net/phase/lock-wait");
        let apply = registry.histogram("net/phase/apply");
        let encode = registry.histogram("net/phase/encode");
        Arc::new(ServerMetrics {
            registry,
            requests,
            active_conns,
            decode,
            lock_wait,
            apply,
            encode,
        })
    }

    pub(crate) fn snapshot(&self) -> Vec<Metric> {
        self.registry.snapshot()
    }
}

/// The full scrape: the server's own instrumentation concatenated with
/// the hosted scheme's [`Instrumented::metrics`], sorted by name. One
/// function backs the wire `Metrics` handler and the host-side
/// [`Instrumented`] impl, so both views agree counter-for-counter.
pub(crate) fn full_metrics(
    scheme: &RwLock<Box<dyn DynScheme>>,
    metrics: &ServerMetrics,
) -> Vec<Metric> {
    let mut out = metrics.snapshot();
    out.extend(read_lock(scheme).metrics());
    sort_metrics(&mut out);
    out
}

struct ConnReg {
    id: usize,
    /// A clone of the connection's socket, kept so shutdown can unblock
    /// the thread's blocking read. `None` for in-process loopback
    /// connections, which have no socket (and no thread) to unblock.
    stream: Option<TcpStream>,
    counters: Arc<TransportCounters>,
    thread: Option<JoinHandle<()>>,
}

type SharedScheme = Arc<RwLock<Box<dyn DynScheme>>>;

fn read_lock(s: &RwLock<Box<dyn DynScheme>>) -> RwLockReadGuard<'_, Box<dyn DynScheme>> {
    s.read().unwrap_or_else(|p| p.into_inner())
}

fn write_lock(s: &RwLock<Box<dyn DynScheme>>) -> RwLockWriteGuard<'_, Box<dyn DynScheme>> {
    s.write().unwrap_or_else(|p| p.into_inner())
}

/// A running label-store server. See the [module docs](self).
///
/// ```
/// use ltree_core::registry::SchemeRegistry;
/// use ltree_core::{Instrumented, OrderedLabelingMut};
/// use ltree_remote::{LabelServer, RemoteScheme};
///
/// let scheme = SchemeRegistry::with_builtin().build("ltree(4,2)").unwrap();
/// let server = LabelServer::bind("127.0.0.1:0", scheme).unwrap();
/// let mut client = RemoteScheme::connect(&server.local_addr().to_string()).unwrap();
/// let handles = client.bulk_build(100).unwrap();
/// client.insert_after(handles[50]).unwrap();
/// assert_eq!(server.scheme_stats().inserts, 1); // host-side view
/// ```
pub struct LabelServer {
    addr: SocketAddr,
    scheme: SharedScheme,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnReg>>>,
    next_conn_id: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
}

impl LabelServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `scheme`. Returns once the listener is live; the
    /// accept loop runs on its own thread until [`shutdown`](Self::shutdown).
    pub fn bind<A: ToSocketAddrs>(addr: A, scheme: Box<dyn DynScheme>) -> Result<LabelServer> {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        let scheme: SharedScheme = Arc::new(RwLock::new(scheme));
        let metrics = ServerMetrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnReg>>> = Arc::new(Mutex::new(Vec::new()));
        let next_conn_id = Arc::new(AtomicUsize::new(0));
        let accept = {
            let (scheme, stop, conns) = (scheme.clone(), stop.clone(), conns.clone());
            let (metrics, ids) = (metrics.clone(), next_conn_id.clone());
            std::thread::spawn(move || accept_loop(listener, scheme, metrics, stop, conns, ids))
        };
        Ok(LabelServer {
            addr,
            scheme,
            metrics,
            stop,
            conns,
            next_conn_id,
            accept: Some(accept),
        })
    }

    /// The address the server listens on (useful with port 0: every
    /// test binds an ephemeral port and reads the real one back here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Open an in-process [`LoopbackTransport`] onto this server's
    /// scheme. The transport counts as one connection (it gets its own
    /// `net/conn<i>/...` breakdown entry) and takes the same `RwLock`
    /// the socket connections take, but frames never leave the process.
    pub fn loopback(&self) -> LoopbackTransport {
        make_loopback(
            &self.scheme,
            &self.metrics,
            &self.stop,
            &self.conns,
            &self.next_conn_id,
        )
    }

    /// A closure that mints loopback transports from the server
    /// *internals* (so an [`Endpoint`](crate::pool::Endpoint) can
    /// reconnect without borrowing the server value). Minting fails
    /// once the server has shut down.
    pub(crate) fn loopback_minter(
        &self,
    ) -> Box<dyn Fn() -> Result<LoopbackTransport> + Send + Sync> {
        let scheme = self.scheme.clone();
        let metrics = self.metrics.clone();
        let stop = self.stop.clone();
        let conns = self.conns.clone();
        let next_id = self.next_conn_id.clone();
        Box::new(move || {
            // seqcst: every stop-flag site shares one total order with shutdown's swap.
            if stop.load(Ordering::SeqCst) {
                return Err(LTreeError::Remote {
                    context: "loopback: server is shut down".into(),
                });
            }
            Ok(make_loopback(&scheme, &metrics, &stop, &conns, &next_id))
        })
    }

    /// Bind `addr` and serve a [`crate::DurableScheme`] recovered from
    /// `dir` — the restart-from-disk constructor. `inner` must be a
    /// freshly built (empty) scheme of the same kind the directory's
    /// snapshot and write-ahead log were produced against; recovery
    /// replays the durable state into it before the listener goes live,
    /// so the first client request already sees the acknowledged
    /// prefix. With an empty or missing `dir` this is just a durable
    /// server starting from scratch.
    pub fn recover_from_dir<A: ToSocketAddrs>(
        addr: A,
        inner: Box<dyn DynScheme>,
        dir: &std::path::Path,
        opts: crate::DurableOptions,
    ) -> Result<LabelServer> {
        let scheme = crate::DurableScheme::open_path(inner, dir, opts)?;
        Self::bind(addr, Box::new(scheme))
    }

    /// Shut the server down and take the hosted scheme back out — the
    /// primitive behind "restart the server on the same state" (bind a
    /// new [`LabelServer`] with the returned scheme). Fails when live
    /// loopback transports still share the scheme.
    pub fn into_scheme(mut self) -> Result<Box<dyn DynScheme>> {
        self.shutdown();
        let scheme = Arc::clone(&self.scheme);
        drop(self);
        match Arc::try_unwrap(scheme) {
            Ok(lock) => Ok(lock.into_inner().unwrap_or_else(|p| p.into_inner())),
            Err(_) => Err(LTreeError::Remote {
                context: "cannot take the scheme out of the server: in-process (loopback) \
                          clients still reference it"
                    .into(),
            }),
        }
    }

    /// Stop accepting, unblock and join every connection thread, then
    /// join the accept thread. Idempotent; also runs on drop.
    ///
    /// The two-pass signaling below is load-bearing: the
    /// `two_pass_shutdown_loses_no_connection` model in
    /// `tests/loom_models.rs` explores every interleaving of this
    /// function against `accept_loop`, and its single-pass variant
    /// demonstrates the lost-connection deadlock the second pass
    /// prevents.
    pub fn shutdown(&mut self) {
        // Ordering: `SeqCst` swap — `stop` is a control flag consulted
        // from the accept loop, every serving thread and the loopback
        // minter; the swap also makes shutdown idempotent (exactly one
        // caller sees `false`). The flag synchronizes nothing but
        // itself, so `AcqRel` would do; `SeqCst` keeps every stop-flag
        // site in one total order for free — this path runs once per
        // server lifetime.
        // seqcst: one total order across every stop-flag site, at once-per-lifetime cost.
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock connection threads stuck in a blocking read.
        let conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        for c in conns.iter() {
            if let Some(stream) = &c.stream {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        drop(conns);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The accept loop (the only registrar) has exited, so the list
        // is complete. A connection accepted concurrently with the first
        // pass may have been registered after it ran — shut each socket
        // down again before joining, or that thread's blocking read
        // would hang this join forever.
        let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        for c in conns.iter_mut() {
            if let Some(stream) = &c.stream {
                let _ = stream.shutdown(Shutdown::Both);
            }
            if let Some(t) = c.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for LabelServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Host-side instrumentation: the hosted scheme's counters, plus one
/// `net/conn<i>/{round-trips,bytes-in,bytes-out}` breakdown entry per
/// connection ever accepted (counter values in `node_touches`).
impl Instrumented for LabelServer {
    fn scheme_stats(&self) -> SchemeStats {
        read_lock(&self.scheme).scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        write_lock(&self.scheme).reset_scheme_stats();
    }

    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        let mut out = read_lock(&self.scheme).stats_breakdown();
        let conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        for c in conns.iter() {
            out.extend(c.counters.breakdown_entries(&format!("net/conn{}", c.id)));
        }
        drop(conns);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn metrics(&self) -> Vec<Metric> {
        full_metrics(&self.scheme, &self.metrics)
    }
}

/// Register one loopback connection and hand back its transport.
fn make_loopback(
    scheme: &SharedScheme,
    metrics: &Arc<ServerMetrics>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<ConnReg>>>,
    next_conn_id: &Arc<AtomicUsize>,
) -> LoopbackTransport {
    let counters = Arc::new(TransportCounters::default());
    // relaxed: ids only need uniqueness (see the TCP minting site below).
    let id = next_conn_id.fetch_add(1, Ordering::Relaxed);
    conns
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(ConnReg {
            id,
            stream: None,
            counters: counters.clone(),
            thread: None,
        });
    LoopbackTransport {
        scheme: scheme.clone(),
        metrics: metrics.clone(),
        stop: stop.clone(),
        counters,
        pending: std::collections::VecDeque::new(),
    }
}

fn accept_loop(
    listener: TcpListener,
    scheme: SharedScheme,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnReg>>>,
    next_conn_id: Arc<AtomicUsize>,
) {
    for incoming in listener.incoming() {
        // This stop check runs *after* `accept()` returned and *before*
        // the registration below — a connection that passes it can still
        // be registered after shutdown's first signaling pass, which is
        // exactly why `shutdown` signals twice (modeled step for step in
        // `tests/loom_models.rs`).
        // seqcst: stop-flag sites share one total order with shutdown's swap.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        let _ = stream.set_nodelay(true);
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        // Ordering: `Relaxed` — ids only need uniqueness, which the
        // atomic RMW guarantees on its own; nothing is published under
        // the counter (same at the loopback minting site).
        let id = next_conn_id.fetch_add(1, Ordering::Relaxed);
        let counters = Arc::new(TransportCounters::default());
        let thread = {
            let (scheme, counters, stop) = (scheme.clone(), counters.clone(), stop.clone());
            let metrics = metrics.clone();
            std::thread::spawn(move || serve_conn(stream, scheme, metrics, counters, stop))
        };
        conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(ConnReg {
                id,
                stream: Some(clone),
                counters,
                thread: Some(thread),
            });
    }
}

/// One connection: read frames until EOF/shutdown, answering in order.
/// Undecodable requests get an error *response* (the stream stays in
/// frame sync thanks to the length prefix); transport failures end the
/// connection.
fn serve_conn(
    stream: TcpStream,
    scheme: SharedScheme,
    metrics: Arc<ServerMetrics>,
    counters: Arc<TransportCounters>,
    stop: Arc<AtomicBool>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    metrics.active_conns.add(1);
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // seqcst: stop-flag sites share one total order with shutdown's swap.
    while !stop.load(Ordering::SeqCst) {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => break,
        };
        let in_bytes = 4 + payload.len() as u64;
        let t = Instant::now();
        let decoded = decode_request(&payload);
        metrics.decode.record(t.elapsed().as_nanos() as u64);
        let resp = match decoded {
            Ok(req) => handle_request(&scheme, &metrics, req),
            Err(e) => Response::Err(e),
        };
        let t = Instant::now();
        let out = encode_response_capped(&resp);
        metrics.encode.record(t.elapsed().as_nanos() as u64);
        match write_frame(&mut writer, &out) {
            Ok(out_bytes) => counters.add(1, in_bytes, out_bytes),
            Err(_) => break,
        }
    }
    metrics.active_conns.add(-1);
}

fn ok_or_err<T>(r: Result<T>, f: impl FnOnce(T) -> Response) -> Response {
    match r {
        Ok(v) => f(v),
        Err(e) => Response::Err(e),
    }
}

pub(crate) fn handle_request(
    scheme: &RwLock<Box<dyn DynScheme>>,
    metrics: &ServerMetrics,
    req: Request,
) -> Response {
    metrics.requests.inc();
    let start = Instant::now();
    // Lock-wait is accumulated by the closures below; the apply phase is
    // everything else in this function (the time actually holding the
    // lock and running the scheme). Both are recorded per request.
    let waited = std::cell::Cell::new(0u64);
    let rl = || {
        let t = Instant::now();
        let g = read_lock(scheme);
        waited.set(waited.get() + t.elapsed().as_nanos() as u64);
        g
    };
    let wl = || {
        let t = Instant::now();
        let g = write_lock(scheme);
        waited.set(waited.get() + t.elapsed().as_nanos() as u64);
        g
    };
    let resp = dispatch(rl, wl, metrics, scheme, req);
    let total = start.elapsed().as_nanos() as u64;
    let lock_wait = waited.get();
    metrics.lock_wait.record(lock_wait);
    metrics.apply.record(total.saturating_sub(lock_wait));
    resp
}

fn dispatch<'a, R, W>(
    rl: R,
    wl: W,
    metrics: &ServerMetrics,
    scheme: &'a RwLock<Box<dyn DynScheme>>,
    req: Request,
) -> Response
where
    R: Fn() -> RwLockReadGuard<'a, Box<dyn DynScheme>>,
    W: Fn() -> RwLockWriteGuard<'a, Box<dyn DynScheme>>,
{
    let read_lock = |_: &RwLock<Box<dyn DynScheme>>| rl();
    let write_lock = |_: &RwLock<Box<dyn DynScheme>>| wl();
    match req {
        Request::Hello { version } => {
            if version == PROTOCOL_VERSION {
                Response::Hello {
                    version: PROTOCOL_VERSION,
                }
            } else {
                Response::Err(LTreeError::Remote {
                    context: format!(
                        "protocol version mismatch: client speaks {version}, server speaks {PROTOCOL_VERSION}"
                    ),
                })
            }
        }
        Request::Name => Response::Name(read_lock(scheme).name().to_owned()),
        Request::LabelOf(h) => {
            ok_or_err(read_lock(scheme).label_of(LeafHandle(h)), Response::Label)
        }
        Request::Len => Response::Count(read_lock(scheme).len() as u64),
        Request::LiveLen => Response::Count(read_lock(scheme).live_len() as u64),
        Request::FirstInOrder => {
            Response::MaybeHandle(read_lock(scheme).first_in_order().map(|h| h.0))
        }
        Request::NextInOrder(h) => {
            Response::MaybeHandle(read_lock(scheme).next_in_order(LeafHandle(h)).map(|h| h.0))
        }
        Request::LabelSpaceBits => Response::Bits(read_lock(scheme).label_space_bits()),
        Request::MemoryBytes => Response::Count(read_lock(scheme).memory_bytes() as u64),
        Request::BulkBuild(n) => ok_or_err(write_lock(scheme).bulk_build(n as usize), |hs| {
            Response::Handles(hs.into_iter().map(|h| h.0).collect())
        }),
        Request::InsertFirst => {
            ok_or_err(write_lock(scheme).insert_first(), |h| Response::Handle(h.0))
        }
        Request::InsertAfter(h) => ok_or_err(write_lock(scheme).insert_after(LeafHandle(h)), |h| {
            Response::Handle(h.0)
        }),
        Request::InsertBefore(h) => {
            ok_or_err(write_lock(scheme).insert_before(LeafHandle(h)), |h| {
                Response::Handle(h.0)
            })
        }
        Request::Delete(h) => ok_or_err(write_lock(scheme).delete(LeafHandle(h)), |()| {
            Response::Unit
        }),
        Request::Splice(op) => {
            let op = match op {
                WireSplice::InsertAfter { anchor, count } => Splice::InsertAfter {
                    anchor: LeafHandle(anchor),
                    count: count as usize,
                },
                WireSplice::DeleteRun { first, count } => Splice::DeleteRun {
                    first: LeafHandle(first),
                    count: count as usize,
                },
            };
            ok_or_err(write_lock(scheme).splice(op), |r| match r {
                ltree_core::SpliceResult::Inserted(hs) => {
                    Response::Handles(hs.into_iter().map(|h| h.0).collect())
                }
                ltree_core::SpliceResult::Deleted(n) => Response::Count(n as u64),
            })
        }
        Request::Page { from, limit } => {
            let guard = read_lock(scheme);
            page(&**guard, from, limit)
        }
        Request::Stats => Response::Stats(read_lock(scheme).scheme_stats()),
        Request::ResetStats => {
            write_lock(scheme).reset_scheme_stats();
            Response::Unit
        }
        Request::StatsBreakdown => Response::Breakdown(read_lock(scheme).stats_breakdown()),
        Request::Metrics => {
            let mut out = metrics.snapshot();
            out.extend(read_lock(scheme).metrics());
            sort_metrics(&mut out);
            Response::Metrics(out)
        }
    }
}

/// A fleet of [`LabelServer`]s plus the spec that deploys over them —
/// the one-call version of the "start every shard's host by hand"
/// recipe. [`launch`](Self::launch) binds `n` ephemeral-port servers,
/// each hosting a fresh registry-built `inner` scheme;
/// [`spec`](Self::spec) hands back the ready-made
/// `sharded(n,remote(addr1|addr2|…))` spec string. The `remote` factory
/// rotates through a `|`-separated address list per build, so the
/// sharded store's `n` segments land on the `n` servers one-to-one.
///
/// Servers shut down (gracefully, joining their threads) when the group
/// drops — after any clients built from the spec.
///
/// ```
/// use ltree_core::registry::SchemeRegistry;
/// use ltree_core::OrderedLabelingMut;
/// use ltree_remote::ServerGroup;
///
/// let mut reg = SchemeRegistry::with_builtin();
/// ltree_sharded::register(&mut reg);
/// ltree_remote::register(&mut reg);
///
/// let group = ServerGroup::launch(2, "ltree(4,2)", &reg).unwrap();
/// // e.g. "sharded(2,remote(127.0.0.1:PORT_A|127.0.0.1:PORT_B))"
/// let mut scheme = reg.build(&group.spec()).unwrap();
/// assert_eq!(scheme.bulk_build(10).unwrap().len(), 10);
/// // Each segment landed on its own server: connect to the hosts
/// // directly and find the 10 items split across them.
/// use ltree_core::OrderedLabeling;
/// let per_host: Vec<usize> = group
///     .addrs()
///     .iter()
///     .map(|a| ltree_remote::RemoteScheme::connect(a).unwrap().live_len())
///     .collect();
/// assert_eq!(per_host.iter().sum::<usize>(), 10);
/// assert!(per_host.iter().all(|&n| n > 0), "{per_host:?}");
/// ```
pub struct ServerGroup {
    servers: Vec<LabelServer>,
}

impl ServerGroup {
    /// Bind `n` servers on OS-chosen ports (`127.0.0.1:0`), each
    /// hosting a fresh `inner` scheme built against `reg` with the
    /// default [`SchemeConfig`].
    pub fn launch(n: usize, inner: &str, reg: &SchemeRegistry) -> Result<ServerGroup> {
        Self::launch_with(n, inner, reg, &SchemeConfig::default())
    }

    /// [`launch`](Self::launch) with an explicit config for the inner
    /// scheme builds.
    pub fn launch_with(
        n: usize,
        inner: &str,
        reg: &SchemeRegistry,
        cfg: &SchemeConfig,
    ) -> Result<ServerGroup> {
        if n == 0 {
            return Err(LTreeError::InvalidSpec {
                spec: "ServerGroup".into(),
                reason: "a server group needs at least one server",
            });
        }
        let mut servers = Vec::with_capacity(n);
        for _ in 0..n {
            servers.push(LabelServer::bind(
                "127.0.0.1:0",
                reg.build_with(inner, cfg)?,
            )?);
        }
        Ok(ServerGroup { servers })
    }

    /// The servers, in launch order (index `i` serves segment `i` of a
    /// scheme built from [`spec`](Self::spec)).
    pub fn servers(&self) -> &[LabelServer] {
        &self.servers
    }

    /// The listening addresses, in launch order.
    pub fn addrs(&self) -> Vec<String> {
        self.servers
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect()
    }

    /// The `|`-separated address list the `remote` spec consumes.
    pub fn addr_list(&self) -> String {
        self.addrs().join("|")
    }

    /// The deployment spec: `sharded(n,remote(addr1|…|addrN))`.
    pub fn spec(&self) -> String {
        format!(
            "sharded({},remote({}))",
            self.servers.len(),
            self.addr_list()
        )
    }

    /// [`spec`](Self::spec) with extra client options appended to the
    /// `remote` inner spec, e.g. `spec_with("conns=4,retries=2")` →
    /// `sharded(n,remote(addr1|…,conns=4,retries=2))`.
    pub fn spec_with(&self, options: &str) -> String {
        format!(
            "sharded({},remote({},{options}))",
            self.servers.len(),
            self.addr_list()
        )
    }
}

/// Collect up to `limit` `(handle, label)` pairs in list order. A `from`
/// handle the scheme rejects produces that error, so the client's
/// `label_of` keeps exact error semantics.
fn page(s: &dyn DynScheme, from: Option<u64>, limit: u32) -> Response {
    let limit = limit.clamp(1, MAX_PAGE_ITEMS) as usize;
    let mut cursor = match from {
        None => Cursor::new(s),
        Some(h) => {
            if let Err(e) = s.label_of(LeafHandle(h)) {
                return Response::Err(e);
            }
            Cursor::starting_at(s, LeafHandle(h))
        }
    };
    let mut items = Vec::with_capacity(limit.min(1024));
    while items.len() < limit {
        let Some(h) = cursor.next() else { break };
        match s.label_of(h) {
            Ok(l) => items.push((h.0, l)),
            Err(e) => return Response::Err(e),
        }
    }
    Response::Page {
        at_end: cursor.peek().is_none(),
        items,
    }
}
