//! [`Transport`] — one framed request/response channel to a label store.
//!
//! The wire codec ([`crate::wire`]) defines *what* travels; a transport
//! defines *how*: it moves one encoded [`Request`] frame toward a store
//! and hands back one decoded [`Response`] frame, in order. Everything
//! above this trait — connection pooling, reconnect policy, write
//! coalescing — is transport-agnostic, which is the point of the split:
//! [`crate::pool::ConnectionPool`] manages `Box<dyn Transport>`s without
//! knowing whether frames cross a socket or a function call.
//!
//! Two implementations ship:
//!
//! * [`TcpTransport`] — a `std::net` socket with buffered framed I/O
//!   and an optional per-operation read timeout. This is what
//!   `remote(host:port)` uses.
//! * [`LoopbackTransport`] — in-process: frames are encoded, decoded
//!   and dispatched straight into the hosting
//!   [`LabelServer`](crate::server::LabelServer)'s scheme
//!   (taking the same `RwLock` the TCP connection threads take), with
//!   no socket in between. This is what `served(inner)` uses — the
//!   full codec is exercised, request pipelining works (responses
//!   queue), and the server's per-connection counters still see it,
//!   but tests and benches pay no syscalls.
//!
//! The error contract matters for the pool: [`Transport::send`] /
//! [`Transport::recv`] return `Err` **only for transport-level
//! failures** (I/O errors, malformed frames, a closed peer). A
//! scheme-level failure travels inside `Ok(Response::Err(..))` and is
//! never retried.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use ltree_core::{DynScheme, LTreeError, Result};

use crate::server::{handle_request, ServerMetrics, TransportCounters};
use crate::wire::{
    decode_request, decode_response, encode_request, encode_response_capped, io_err, read_frame,
    write_frame, Request, Response,
};

/// One framed request/response channel. See the [module docs](self) for
/// the error contract (`Err` = transport failure, retryable by policy;
/// scheme errors ride inside `Ok(Response::Err)`).
pub trait Transport: Send {
    /// Write one request frame. Returns the bytes sent, frame prefix
    /// included. Requests may be pipelined: any number of `send`s may
    /// precede the matching `recv`s, which come back in order.
    fn send(&mut self, req: &Request) -> Result<u64>;

    /// Read the next response frame. Returns the response and the bytes
    /// received, frame prefix included.
    fn recv(&mut self) -> Result<(Response, u64)>;

    /// A short human-readable peer description for error contexts
    /// (`"127.0.0.1:7878"`, `"loopback"`).
    fn peer(&self) -> String;
}

/// A [`Transport`] over one TCP connection (buffered both ways,
/// `TCP_NODELAY`, optional read timeout so a hung server surfaces as a
/// typed transport error instead of a stuck client).
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    peer: String,
}

impl TcpTransport {
    /// Connect to `addr` (`host:port`). No handshake is performed here —
    /// the pool owns the [`Request::Hello`] exchange so every transport
    /// kind gets identical version checking.
    pub fn connect(addr: &str, op_timeout: Option<Duration>) -> Result<TcpTransport> {
        let stream = TcpStream::connect(addr).map_err(|e| LTreeError::Remote {
            context: format!("connect to {addr}: {e}"),
        })?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(op_timeout);
        let read_half = stream.try_clone().map_err(io_err)?;
        Ok(TcpTransport {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            peer: addr.to_owned(),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, req: &Request) -> Result<u64> {
        write_frame(&mut self.writer, &encode_request(req))
    }

    fn recv(&mut self) -> Result<(Response, u64)> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| LTreeError::Remote {
            context: format!("{}: server closed the connection", self.peer),
        })?;
        let bytes = 4 + payload.len() as u64;
        Ok((decode_response(&payload)?, bytes))
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Close the socket explicitly so a loopback server's connection
        // thread unblocks before `LabelServer::drop` joins it.
        let _ = self.writer.get_ref().shutdown(Shutdown::Both);
    }
}

/// A [`Transport`] that dispatches frames into a
/// [`LabelServer`](crate::server::LabelServer)'s scheme in-process:
/// `send` encodes the request, decodes it back
/// (keeping codec coverage identical to the socket path), runs it under
/// the server's `RwLock`, and queues the encoded response for `recv`.
/// Reads through concurrent loopback transports take the shared read
/// lock in parallel, exactly like concurrent TCP connections.
///
/// Obtained from [`LabelServer::loopback`]; each instance counts as one
/// server connection (its traffic shows up as a `net/conn<i>/...`
/// breakdown entry).
///
/// [`LabelServer::loopback`]: crate::server::LabelServer::loopback
pub struct LoopbackTransport {
    pub(crate) scheme: Arc<RwLock<Box<dyn DynScheme>>>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) counters: Arc<TransportCounters>,
    pub(crate) pending: VecDeque<Vec<u8>>,
}

impl Transport for LoopbackTransport {
    fn send(&mut self, req: &Request) -> Result<u64> {
        // seqcst: stop-flag sites share one total order with shutdown's swap.
        if self.stop.load(Ordering::SeqCst) {
            return Err(LTreeError::Remote {
                context: "loopback: server is shut down".into(),
            });
        }
        let payload = encode_request(req);
        let in_bytes = 4 + payload.len() as u64;
        // Round-trip through the codec so loopback exercises exactly
        // the bytes a socket would carry — timed into the same phase
        // histograms the socket path records.
        let t = std::time::Instant::now();
        let req = decode_request(&payload)?;
        self.metrics.decode.record(t.elapsed().as_nanos() as u64);
        let resp = handle_request(&self.scheme, &self.metrics, req);
        let t = std::time::Instant::now();
        let out = encode_response_capped(&resp);
        self.metrics.encode.record(t.elapsed().as_nanos() as u64);
        self.counters.add(1, in_bytes, 4 + out.len() as u64);
        self.pending.push_back(out);
        Ok(in_bytes)
    }

    fn recv(&mut self) -> Result<(Response, u64)> {
        let out = self.pending.pop_front().ok_or_else(|| LTreeError::Remote {
            context: "loopback: recv without a pending request".into(),
        })?;
        let bytes = 4 + out.len() as u64;
        Ok((decode_response(&out)?, bytes))
    }

    fn peer(&self) -> String {
        "loopback".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::LabelServer;
    use crate::wire::PROTOCOL_VERSION;
    use ltree_core::{LTree, Params};

    fn server() -> LabelServer {
        LabelServer::bind(
            "127.0.0.1:0",
            Box::new(LTree::new(Params::new(4, 2).unwrap())),
        )
        .unwrap()
    }

    #[test]
    fn tcp_and_loopback_answer_identically() {
        let server = server();
        let mut tcp = TcpTransport::connect(&server.local_addr().to_string(), None).unwrap();
        let mut lo = server.loopback();
        for t in [&mut tcp as &mut dyn Transport, &mut lo] {
            t.send(&Request::Hello {
                version: PROTOCOL_VERSION,
            })
            .unwrap();
            let (resp, bytes) = t.recv().unwrap();
            assert_eq!(
                resp,
                Response::Hello {
                    version: PROTOCOL_VERSION
                }
            );
            assert!(bytes > 4);
            t.send(&Request::Len).unwrap();
            assert_eq!(t.recv().unwrap().0, Response::Count(0));
        }
    }

    #[test]
    fn loopback_pipelines_and_rejects_stray_recv() {
        let server = server();
        let mut lo = server.loopback();
        // Pipelining: three sends, then three in-order recvs.
        lo.send(&Request::BulkBuild(5)).unwrap();
        lo.send(&Request::Len).unwrap();
        lo.send(&Request::LiveLen).unwrap();
        assert!(matches!(lo.recv().unwrap().0, Response::Handles(hs) if hs.len() == 5));
        assert_eq!(lo.recv().unwrap().0, Response::Count(5));
        assert_eq!(lo.recv().unwrap().0, Response::Count(5));
        assert!(lo.recv().is_err(), "no pending request");
    }

    #[test]
    fn loopback_respects_server_shutdown() {
        let mut server = server();
        let mut lo = server.loopback();
        lo.send(&Request::Len).unwrap();
        lo.recv().unwrap();
        server.shutdown();
        assert!(lo.send(&Request::Len).is_err(), "stopped server");
    }
}
