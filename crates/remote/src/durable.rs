//! # `durable(inner)` — crash-safe persistence over any labeling scheme
//!
//! [`DurableScheme`] wraps any registry scheme with the classic
//! log-then-checkpoint durability protocol:
//!
//! * every successful mutation is appended to a [`wal`](crate::wal)
//!   write-ahead log **and fsynced before the call returns** (under the
//!   default [`SyncPolicy::Always`]) — so an acknowledged write is a
//!   durable write;
//! * every `checkpoint_every` mutations (and on demand via
//!   [`checkpoint`](DurableScheme::checkpoint)) the whole logical state
//!   is written as a compact snapshot — magic, version, body, FNV-1a
//!   trailer, the `ltree_core::snapshot` idiom — and the log is
//!   truncated;
//! * [`open`](DurableScheme::open) recovers: load the latest valid
//!   snapshot, replay the log tail (records the snapshot already
//!   covers are skipped by sequence number), tolerate a torn final
//!   record by truncating it away. Genuine corruption is a typed
//!   [`LTreeError::Durability`] error.
//!
//! ## Stable handles across restarts
//!
//! The wrapper mints its own **durable handles** from a deterministic
//! counter and keeps a two-way map to the inner scheme's handles. The
//! log records mutations in durable-handle terms, so replaying them
//! re-mints identical handles against a freshly rebuilt inner scheme —
//! a client holding handles from before a crash can keep using them
//! after recovery, even though the inner scheme (and its labels) were
//! rebuilt from scratch. Labels may differ after recovery; the *list*
//! (and therefore every order comparison) may not.
//!
//! Reads see live items only: the cursor skips deleted handles, a
//! deleted durable handle answers [`LTreeError::DeletedLeaf`] forever
//! (also after recovery), and an unknown one answers
//! [`LTreeError::UnknownHandle`].
//!
//! ## Composition
//!
//! `durable(...)` is an ordinary registry composite:
//! `served(durable(ltree(4,2)))` is a crash-safe label server,
//! `checked(durable(gap))` audits the wrapper against a shadow model,
//! and `sharded(2,durable(ltree(4,2)))` gives every segment its own
//! log + snapshot. When no `dir=` option is given, a fresh scratch
//! directory under the OS temp dir is created and removed again when
//! the scheme is dropped.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ltree_core::metrics::Metric;
use ltree_core::{
    BatchLabeling, DynScheme, Instrumented, LTreeError, LeafHandle, OrderedLabeling,
    OrderedLabelingMut, Result, SchemeStats,
};
use ltree_obs::Histogram;

use crate::wal::{
    encode_record, fnv1a, scan_log, scratch_dir, DurableDir, FsDir, SNAP_FILE, WAL_FILE,
};
use crate::wire::{Request, WireSplice};

/// Snapshot image magic: **L**-**T**ree **D**urable **S**cheme.
const SNAP_MAGIC: &[u8; 4] = b"LTDS";
/// Snapshot format version.
const SNAP_VERSION: u16 = 1;

fn store_err(context: impl Into<String>) -> LTreeError {
    LTreeError::Durability {
        context: context.into(),
    }
}

/// When the log is made crash-durable relative to the acknowledgment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every logged mutation, *before* returning to the
    /// caller: an acknowledged write survives any crash. The default.
    Always,
    /// Never fsync explicitly (the OS flushes whenever it likes):
    /// acknowledged writes can be lost in a crash. Exists to measure
    /// the fsync cost — and to demonstrate, in the fault-injection
    /// suite, that ack-before-fsync genuinely loses acknowledged data.
    Never,
}

/// Tuning knobs for [`DurableScheme`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Fsync discipline; see [`SyncPolicy`].
    pub sync: SyncPolicy,
    /// Checkpoint (snapshot + log truncation) after this many logged
    /// mutations; `0` disables automatic checkpoints.
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::Always,
            checkpoint_every: 1024,
        }
    }
}

#[derive(Default)]
struct WalCounters {
    appends: u64,
    fsyncs: u64,
    bytes: u64,
    checkpoints: u64,
    failed_checkpoints: u64,
    replayed: u64,
}

/// The decoded snapshot body.
struct Snapshot {
    snap_seq: u64,
    next_handle: u64,
    live: Vec<u64>,
    dead: Vec<u64>,
}

impl Snapshot {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&self.snap_seq.to_le_bytes());
        out.extend_from_slice(&self.next_handle.to_le_bytes());
        out.extend_from_slice(&(self.live.len() as u64).to_le_bytes());
        for h in &self.live {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out.extend_from_slice(&(self.dead.len() as u64).to_le_bytes());
        for h in &self.dead {
            out.extend_from_slice(&h.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 + 2 + 8 {
            return Err(store_err("snapshot image is truncated"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(store_err("snapshot checksum does not verify"));
        }
        if &body[..4] != SNAP_MAGIC {
            return Err(store_err("snapshot magic mismatch (not an LTDS image)"));
        }
        let version = u16::from_le_bytes(body[4..6].try_into().unwrap());
        if version != SNAP_VERSION {
            return Err(store_err(format!(
                "snapshot version {version} is not supported (expected {SNAP_VERSION})"
            )));
        }
        let mut pos = 6usize;
        let u64_at = |p: &mut usize| -> Result<u64> {
            let end = *p + 8;
            let raw = body
                .get(*p..end)
                .ok_or_else(|| store_err("snapshot body is short"))?;
            *p = end;
            Ok(u64::from_le_bytes(raw.try_into().unwrap()))
        };
        let snap_seq = u64_at(&mut pos)?;
        let next_handle = u64_at(&mut pos)?;
        let live_n = u64_at(&mut pos)? as usize;
        let mut live = Vec::with_capacity(live_n.min(body.len() / 8));
        for _ in 0..live_n {
            live.push(u64_at(&mut pos)?);
        }
        let dead_n = u64_at(&mut pos)? as usize;
        let mut dead = Vec::with_capacity(dead_n.min(body.len() / 8));
        for _ in 0..dead_n {
            dead.push(u64_at(&mut pos)?);
        }
        if pos != body.len() {
            return Err(store_err("snapshot body has trailing bytes"));
        }
        Ok(Snapshot {
            snap_seq,
            next_handle,
            live,
            dead,
        })
    }
}

/// A write-ahead-logged, snapshot-checkpointed wrapper around any
/// [`DynScheme`]; see the [module docs](self) for the protocol.
pub struct DurableScheme {
    inner: Box<dyn DynScheme>,
    dir: Box<dyn DurableDir>,
    opts: DurableOptions,
    /// durable handle → `Some(inner handle)` while live, `None` once
    /// deleted. Grows monotonically: `len()` is the number of handles
    /// ever minted.
    slots: HashMap<u64, Option<u64>>,
    /// inner handle → durable handle (kept for tombstones too, so the
    /// cursor can skip inner tombstones it meets).
    rev: HashMap<u64, u64>,
    live: usize,
    next_handle: u64,
    next_seq: u64,
    /// Highest sequence number the on-disk snapshot covers.
    snap_seq: u64,
    ops_since_checkpoint: u64,
    wal: WalCounters,
    /// Wall-clock cost of each `fsync` on the log file
    /// (`wal/fsync-duration`, nanoseconds) — the price of the
    /// ack-is-durable guarantee, visible through `metrics()`.
    fsync_hist: Histogram,
    /// Wall-clock cost of each checkpoint (`wal/checkpoint-duration`,
    /// nanoseconds): snapshot encode + replace + log truncation.
    checkpoint_hist: Histogram,
    /// A scratch directory this scheme created for itself (no `dir=`
    /// given) and removes again on drop.
    own_dir: Option<PathBuf>,
}

impl DurableScheme {
    /// Open over any [`DurableDir`]: recover when it holds state,
    /// start fresh when it does not. `inner` must be empty — recovery
    /// rebuilds the list into it.
    pub fn open(
        inner: Box<dyn DynScheme>,
        dir: Box<dyn DurableDir>,
        opts: DurableOptions,
    ) -> Result<Self> {
        let mut me = DurableScheme {
            inner,
            dir,
            opts,
            slots: HashMap::new(),
            rev: HashMap::new(),
            live: 0,
            next_handle: 1,
            next_seq: 1,
            snap_seq: 0,
            ops_since_checkpoint: 0,
            wal: WalCounters::default(),
            fsync_hist: Histogram::new(),
            checkpoint_hist: Histogram::new(),
            own_dir: None,
        };
        if !me.inner.is_empty() {
            return Err(store_err(
                "durable(...) needs an empty inner scheme: recovery rebuilds the list into it",
            ));
        }
        if let Some(image) = me.dir.read(SNAP_FILE)? {
            let snap = Snapshot::decode(&image)?;
            me.snap_seq = snap.snap_seq;
            me.next_seq = snap.snap_seq + 1;
            me.next_handle = snap.next_handle;
            if !snap.live.is_empty() {
                let ihs = me
                    .inner
                    .bulk_build(snap.live.len())
                    .map_err(|e| store_err(format!("snapshot rebuild: {e}")))?;
                for (dh, ih) in snap.live.iter().zip(&ihs) {
                    me.slots.insert(*dh, Some(ih.0));
                    me.rev.insert(ih.0, *dh);
                }
                me.live = snap.live.len();
            }
            for dh in snap.dead {
                me.slots.insert(dh, None);
            }
        }
        let log = me.dir.read(WAL_FILE)?.unwrap_or_default();
        let scan = scan_log(&log)?;
        for (seq, req) in &scan.records {
            if *seq <= me.snap_seq {
                continue; // the snapshot already covers this record
            }
            me.replay(req)
                .map_err(|e| store_err(format!("replay of log record seq {seq}: {e}")))?;
            me.next_seq = seq + 1;
            me.wal.replayed += 1;
        }
        if scan.valid_len < log.len() as u64 {
            // Torn tail from a crash mid-append: drop it so new records
            // land on a clean boundary.
            me.dir.truncate(WAL_FILE, scan.valid_len)?;
        }
        me.ops_since_checkpoint = me.wal.replayed;
        Ok(me)
    }

    /// Open (or recover from) an on-disk directory.
    pub fn open_path(inner: Box<dyn DynScheme>, path: &Path, opts: DurableOptions) -> Result<Self> {
        Self::open(inner, Box::new(FsDir::open(path)?), opts)
    }

    /// Open over a fresh process-unique scratch directory that is
    /// deleted again when the scheme drops — the dir-less registry
    /// form `durable(inner)`.
    pub fn open_scratch(inner: Box<dyn DynScheme>, opts: DurableOptions) -> Result<Self> {
        let path = scratch_dir("durable");
        let mut me = Self::open_path(inner, &path, opts)?;
        me.own_dir = Some(path);
        Ok(me)
    }

    /// Write a snapshot of the current state and truncate the log.
    pub fn checkpoint(&mut self) -> Result<()> {
        let start = std::time::Instant::now();
        let mut live = Vec::with_capacity(self.live);
        let mut cur = self.first_in_order();
        while let Some(h) = cur {
            live.push(h.0);
            cur = self.next_in_order(h);
        }
        let mut dead: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, s)| s.is_none())
            .map(|(&h, _)| h)
            .collect();
        dead.sort_unstable();
        let snap = Snapshot {
            snap_seq: self.next_seq - 1,
            next_handle: self.next_handle,
            live,
            dead,
        };
        self.dir.replace(SNAP_FILE, &snap.encode())?;
        self.snap_seq = snap.snap_seq;
        self.dir.truncate(WAL_FILE, 0)?;
        self.ops_since_checkpoint = 0;
        self.wal.checkpoints += 1;
        self.checkpoint_hist
            .record(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Log records replayed during [`open`](Self::open) — zero for a
    /// fresh directory.
    pub fn replayed_records(&self) -> u64 {
        self.wal.replayed
    }

    /// Resolve a live durable handle to its inner handle.
    fn live_inner(&self, h: LeafHandle) -> Result<u64> {
        match self.slots.get(&h.0) {
            Some(Some(ih)) => Ok(*ih),
            Some(None) => Err(LTreeError::DeletedLeaf),
            None => Err(LTreeError::UnknownHandle),
        }
    }

    fn mint(&mut self, ih: u64) -> LeafHandle {
        let dh = self.next_handle;
        self.next_handle += 1;
        self.slots.insert(dh, Some(ih));
        self.rev.insert(ih, dh);
        self.live += 1;
        LeafHandle(dh)
    }

    fn mark_dead(&mut self, dh: u64) {
        if let Some(slot) = self.slots.get_mut(&dh) {
            if slot.take().is_some() {
                self.live -= 1;
            }
        }
        // The rev entry stays: schemes that keep tombstones (the
        // L-Tree) still yield the inner handle from `next_in_order`,
        // and the cursor needs the mapping to know to skip it.
    }

    /// Next *live* durable handle after `dh` in list order, skipping
    /// inner tombstones; `None` from a dead or unknown handle.
    fn next_live(&self, dh: u64) -> Option<u64> {
        let mut ih = (*self.slots.get(&dh)?)?;
        loop {
            ih = self.inner.next_in_order(LeafHandle(ih))?.0;
            if let Some(&d) = self.rev.get(&ih) {
                if matches!(self.slots.get(&d), Some(Some(_))) {
                    return Some(d);
                }
            }
        }
    }

    /// Append one record for an already-applied mutation, fsync per
    /// policy, checkpoint on schedule. Failing here leaves the
    /// in-memory state ahead of the log; callers treat the typed error
    /// as "the store is no longer durable" and discard the instance.
    fn log(&mut self, req: Request) -> Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = encode_record(seq, &req);
        self.dir.append(WAL_FILE, &rec)?;
        self.wal.appends += 1;
        self.wal.bytes += rec.len() as u64;
        if self.opts.sync == SyncPolicy::Always {
            let start = std::time::Instant::now();
            self.dir.sync(WAL_FILE)?;
            self.fsync_hist.record(start.elapsed().as_nanos() as u64);
            self.wal.fsyncs += 1;
        }
        self.ops_since_checkpoint += 1;
        if self.opts.checkpoint_every > 0 && self.ops_since_checkpoint >= self.opts.checkpoint_every
        {
            // The record is on disk: the operation is acknowledged no
            // matter what happens to the checkpoint. A failed checkpoint
            // leaves the snapshot + log pair it tried to compact — still
            // a correct recovery image — and `ops_since_checkpoint`
            // stays over the threshold, so the next logged op retries.
            // (Acking and *then* failing would make a crashed checkpoint
            // resurrect an "unacknowledged" yet durable record, breaking
            // exact acked-prefix recovery.)
            if self.checkpoint().is_err() {
                self.wal.failed_checkpoints += 1;
            }
        }
        Ok(())
    }

    /// Re-apply one logged mutation during recovery (no re-logging).
    /// The deterministic handle counter re-mints the same durable
    /// handles the original run handed out.
    fn replay(&mut self, req: &Request) -> Result<()> {
        match req {
            Request::BulkBuild(n) => {
                let ihs = self.inner.bulk_build(*n as usize)?;
                for ih in ihs {
                    self.mint(ih.0);
                }
            }
            Request::InsertFirst => {
                let ih = self.inner.insert_first()?;
                self.mint(ih.0);
            }
            Request::InsertAfter(a) => {
                let ih = self.live_inner(LeafHandle(*a))?;
                let nih = self.inner.insert_after(LeafHandle(ih))?;
                self.mint(nih.0);
            }
            Request::InsertBefore(a) => {
                let ih = self.live_inner(LeafHandle(*a))?;
                let nih = self.inner.insert_before(LeafHandle(ih))?;
                self.mint(nih.0);
            }
            Request::Delete(h) => {
                let ih = self.live_inner(LeafHandle(*h))?;
                self.inner.delete(LeafHandle(ih))?;
                self.mark_dead(*h);
            }
            Request::Splice(WireSplice::InsertAfter { anchor, count }) => {
                let ih = self.live_inner(LeafHandle(*anchor))?;
                let nihs = self
                    .inner
                    .insert_many_after(LeafHandle(ih), *count as usize)?;
                for nih in nihs {
                    self.mint(nih.0);
                }
            }
            Request::Splice(WireSplice::DeleteRun { first, count }) => {
                let deleted = self.delete_live_run(LeafHandle(*first), *count as usize)?;
                if deleted as u64 != *count {
                    return Err(store_err(format!(
                        "logged delete-run of {count} found only {deleted} live items"
                    )));
                }
            }
            other => {
                return Err(store_err(format!(
                    "log carries a non-mutating record: {other:?}"
                )))
            }
        }
        Ok(())
    }

    /// Delete up to `count` live items starting at the live handle
    /// `first`, in list order. Shared by the live path and replay.
    fn delete_live_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        let mut run = vec![first.0];
        let mut cur = first.0;
        while run.len() < count {
            match self.next_live(cur) {
                Some(n) => {
                    run.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        for &dh in &run {
            let ih = self.live_inner(LeafHandle(dh))?;
            self.inner.delete(LeafHandle(ih))?;
            self.mark_dead(dh);
        }
        Ok(run.len())
    }
}

impl Drop for DurableScheme {
    fn drop(&mut self) {
        if let Some(path) = &self.own_dir {
            let _ = std::fs::remove_dir_all(path);
        }
    }
}

impl OrderedLabeling for DurableScheme {
    fn name(&self) -> &'static str {
        "durable"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        let ih = self.live_inner(h)?;
        self.inner.label_of(LeafHandle(ih))
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn live_len(&self) -> usize {
        self.live
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        let mut ih = self.inner.first_in_order()?.0;
        loop {
            if let Some(&d) = self.rev.get(&ih) {
                if matches!(self.slots.get(&d), Some(Some(_))) {
                    return Some(LeafHandle(d));
                }
            }
            ih = self.inner.next_in_order(LeafHandle(ih))?.0;
        }
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        self.next_live(h.0).map(LeafHandle)
    }

    fn label_space_bits(&self) -> u32 {
        self.inner.label_space_bits()
    }

    fn memory_bytes(&self) -> usize {
        // The two maps dominate the wrapper's own footprint.
        self.inner.memory_bytes() + self.slots.len() * 24 + self.rev.len() * 16
    }
}

impl OrderedLabelingMut for DurableScheme {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if !self.slots.is_empty() {
            return Err(LTreeError::NotEmpty);
        }
        let ihs = self.inner.bulk_build(n)?;
        let out: Vec<LeafHandle> = ihs.iter().map(|ih| self.mint(ih.0)).collect();
        self.log(Request::BulkBuild(n as u64))?;
        Ok(out)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        let ih = self.inner.insert_first()?;
        let dh = self.mint(ih.0);
        self.log(Request::InsertFirst)?;
        Ok(dh)
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let ih = self.live_inner(anchor)?;
        let nih = self.inner.insert_after(LeafHandle(ih))?;
        let dh = self.mint(nih.0);
        self.log(Request::InsertAfter(anchor.0))?;
        Ok(dh)
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let ih = self.live_inner(anchor)?;
        let nih = self.inner.insert_before(LeafHandle(ih))?;
        let dh = self.mint(nih.0);
        self.log(Request::InsertBefore(anchor.0))?;
        Ok(dh)
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        let ih = self.live_inner(h)?;
        self.inner.delete(LeafHandle(ih))?;
        self.mark_dead(h.0);
        self.log(Request::Delete(h.0))
    }
}

impl BatchLabeling for DurableScheme {
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        if k == 0 {
            return Err(LTreeError::EmptyBatch);
        }
        let ih = self.live_inner(anchor)?;
        let nihs = self.inner.insert_many_after(LeafHandle(ih), k)?;
        let out: Vec<LeafHandle> = nihs.iter().map(|nih| self.mint(nih.0)).collect();
        self.log(Request::Splice(WireSplice::InsertAfter {
            anchor: anchor.0,
            count: k as u64,
        }))?;
        Ok(out)
    }

    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        if count == 0 {
            return Ok(0);
        }
        match self.slots.get(&first.0) {
            None => return Err(LTreeError::UnknownHandle),
            Some(None) => return Ok(0), // dead anchor: the loop fallback's semantics
            Some(Some(_)) => {}
        }
        let deleted = self.delete_live_run(first, count)?;
        if deleted > 0 {
            // Logged normalized — the actual count, so replay is exact.
            self.log(Request::Splice(WireSplice::DeleteRun {
                first: first.0,
                count: deleted as u64,
            }))?;
        }
        Ok(deleted)
    }
}

impl Instrumented for DurableScheme {
    fn scheme_stats(&self) -> SchemeStats {
        self.inner.scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        self.inner.reset_scheme_stats();
        self.wal = WalCounters {
            replayed: self.wal.replayed,
            ..WalCounters::default()
        };
        self.fsync_hist = Histogram::new();
        self.checkpoint_hist = Histogram::new();
    }

    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        let mut out = self.inner.stats_breakdown();
        let entry = |v: u64| SchemeStats {
            node_touches: v,
            ..SchemeStats::default()
        };
        out.push(("wal/appends".to_owned(), entry(self.wal.appends)));
        out.push(("wal/fsyncs".to_owned(), entry(self.wal.fsyncs)));
        out.push(("wal/bytes".to_owned(), entry(self.wal.bytes)));
        out.push(("wal/checkpoints".to_owned(), entry(self.wal.checkpoints)));
        out.push((
            "wal/failed_checkpoints".to_owned(),
            entry(self.wal.failed_checkpoints),
        ));
        out.push(("wal/replayed".to_owned(), entry(self.wal.replayed)));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn metrics(&self) -> Vec<Metric> {
        let mut out = vec![
            Metric::histogram("wal/fsync-duration", self.fsync_hist.snapshot()),
            Metric::histogram("wal/checkpoint-duration", self.checkpoint_hist.snapshot()),
        ];
        out.extend(self.inner.metrics());
        ltree_core::metrics::sort_metrics(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::SimDir;
    use ltree_core::{Cursor, LTree, Params, Splice};

    fn ltree() -> Box<dyn DynScheme> {
        Box::new(LTree::new(Params::new(4, 2).unwrap()))
    }

    fn opts(sync: SyncPolicy, every: u64) -> DurableOptions {
        DurableOptions {
            sync,
            checkpoint_every: every,
        }
    }

    fn live_order(s: &DurableScheme) -> Vec<u64> {
        Cursor::new(s).map(|h| h.0).collect()
    }

    #[test]
    fn edits_survive_reopen_via_log_replay() {
        let dir = SimDir::new(1);
        let mut s =
            DurableScheme::open(ltree(), Box::new(dir.clone()), opts(SyncPolicy::Always, 0))
                .unwrap();
        let hs = s.bulk_build(8).unwrap();
        let mid = s.insert_after(hs[3]).unwrap();
        s.delete(hs[5]).unwrap();
        s.insert_many_after(hs[0], 3).unwrap();
        let deleted = s.delete_run(hs[1], 2).unwrap();
        assert_eq!(deleted, 2);
        let before = live_order(&s);
        let live = s.live_len();
        let total = s.len();
        drop(s);
        let r = DurableScheme::open(ltree(), Box::new(dir), opts(SyncPolicy::Always, 0)).unwrap();
        assert_eq!(live_order(&r), before, "identical list after recovery");
        assert_eq!(r.live_len(), live);
        assert_eq!(r.len(), total, "tombstones still tracked");
        assert!(r.replayed_records() > 0, "state came from the log");
        // Handles survive: the same durable handle resolves, deleted
        // ones answer DeletedLeaf.
        assert!(r.label_of(mid).is_ok());
        assert!(matches!(r.label_of(hs[5]), Err(LTreeError::DeletedLeaf)));
        assert!(matches!(
            r.label_of(LeafHandle(9999)),
            Err(LTreeError::UnknownHandle)
        ));
    }

    #[test]
    fn checkpoint_truncates_the_log_and_recovery_prefers_the_snapshot() {
        let dir = SimDir::new(2);
        let mut s =
            DurableScheme::open(ltree(), Box::new(dir.clone()), opts(SyncPolicy::Always, 0))
                .unwrap();
        let hs = s.bulk_build(20).unwrap();
        s.delete(hs[4]).unwrap();
        s.checkpoint().unwrap();
        assert_eq!(
            dir.read(WAL_FILE).unwrap().unwrap().len(),
            0,
            "log truncated"
        );
        s.insert_after(hs[10]).unwrap(); // one post-checkpoint record
        let want = live_order(&s);
        drop(s);
        let r = DurableScheme::open(ltree(), Box::new(dir), opts(SyncPolicy::Always, 0)).unwrap();
        assert_eq!(live_order(&r), want);
        assert_eq!(r.replayed_records(), 1, "only the log tail replays");
    }

    #[test]
    fn automatic_checkpoints_fire_on_schedule() {
        let dir = SimDir::new(3);
        let mut s =
            DurableScheme::open(ltree(), Box::new(dir.clone()), opts(SyncPolicy::Always, 4))
                .unwrap();
        let hs = s.bulk_build(4).unwrap(); // logged op 1
        for _ in 0..7 {
            s.insert_after(hs[0]).unwrap();
        }
        let snap = dir.read(SNAP_FILE).unwrap();
        assert!(snap.is_some(), "a checkpoint must have fired");
        let breakdown = s.stats_breakdown();
        let checkpoints = breakdown
            .iter()
            .find(|(n, _)| n == "wal/checkpoints")
            .unwrap()
            .1
            .node_touches;
        assert_eq!(checkpoints, 2, "8 logged ops / every 4");
    }

    #[test]
    fn splices_are_one_record_each_and_replay_identically() {
        let dir = SimDir::new(4);
        let mut s =
            DurableScheme::open(ltree(), Box::new(dir.clone()), opts(SyncPolicy::Always, 0))
                .unwrap();
        let hs = s.bulk_build(10).unwrap();
        s.splice(Splice::InsertAfter {
            anchor: hs[2],
            count: 50,
        })
        .unwrap();
        s.splice(Splice::DeleteRun {
            first: hs[4],
            count: 30,
        })
        .unwrap();
        let image = dir.read(WAL_FILE).unwrap().unwrap();
        let scan = scan_log(&image).unwrap();
        assert_eq!(scan.records.len(), 3, "bulk + 2 splices, one record each");
        let want = live_order(&s);
        drop(s);
        let r = DurableScheme::open(ltree(), Box::new(dir), opts(SyncPolicy::Always, 0)).unwrap();
        assert_eq!(live_order(&r), want);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = SimDir::new(5);
        let mut s =
            DurableScheme::open(ltree(), Box::new(dir.clone()), opts(SyncPolicy::Always, 0))
                .unwrap();
        s.bulk_build(6).unwrap();
        s.checkpoint().unwrap();
        drop(s);
        // Flip a byte in the snapshot body.
        let mut image = dir.read(SNAP_FILE).unwrap().unwrap();
        image[7] ^= 0xff;
        let mut d = dir.clone();
        d.replace(SNAP_FILE, &image).unwrap();
        match DurableScheme::open(ltree(), Box::new(dir), opts(SyncPolicy::Always, 0)) {
            Err(LTreeError::Durability { context }) => {
                assert!(context.contains("checksum"), "{context}")
            }
            Err(other) => panic!("expected a Durability error, got {other:?}"),
            Ok(_) => panic!("expected a Durability error, got a recovered scheme"),
        }
    }

    #[test]
    fn fsync_and_checkpoint_durations_flow_into_metrics() {
        let dir = SimDir::new(6);
        let mut s =
            DurableScheme::open(ltree(), Box::new(dir), opts(SyncPolicy::Always, 0)).unwrap();
        let hs = s.bulk_build(4).unwrap();
        s.insert_after(hs[0]).unwrap();
        s.checkpoint().unwrap();
        let metrics = s.metrics();
        let hist = |name: &str| match &metrics.iter().find(|m| m.name == name).unwrap().value {
            ltree_core::metrics::MetricValue::Histogram(h) => h.clone(),
            other => panic!("{name} should be a histogram, got {other:?}"),
        };
        assert_eq!(hist("wal/fsync-duration").count, 2, "one per logged op");
        assert_eq!(hist("wal/checkpoint-duration").count, 1);
        let names: Vec<_> = metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "metrics come back name-sorted");
        // The reset discipline clears the histograms too.
        s.reset_scheme_stats();
        assert_eq!(s.metrics().len(), 2, "inner scheme reports no metrics");
        assert_eq!(hist("wal/fsync-duration").count, 2, "snapshot is passive");
        match &s.metrics()[0].value {
            ltree_core::metrics::MetricValue::Histogram(h) => assert_eq!(h.count, 0),
            other => panic!("expected a histogram, got {other:?}"),
        }
    }

    #[test]
    fn breakdown_entries_are_name_sorted() {
        let dir = SimDir::new(7);
        let mut s =
            DurableScheme::open(ltree(), Box::new(dir), opts(SyncPolicy::Always, 0)).unwrap();
        s.bulk_build(4).unwrap();
        let names: Vec<_> = s.stats_breakdown().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn scratch_dirs_are_removed_on_drop() {
        let s = DurableScheme::open_scratch(ltree(), DurableOptions::default()).unwrap();
        let path = s.own_dir.clone().unwrap();
        assert!(path.exists());
        drop(s);
        assert!(!path.exists(), "scratch dir must be cleaned up");
    }
}
