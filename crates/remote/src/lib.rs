//! # `ltree-remote` — a networked label store speaking splices
//!
//! The trait split (`OrderedLabeling*`) made a labeling scheme a
//! *contract*; the sharded store made it *partitionable*; this crate
//! makes it *remote*: label state lives behind a wire protocol, and the
//! paper's batch splices amortize **round trips** the same way they
//! amortize relabelings. The ancestry-labeling line of related work
//! (Fraigniaud & Korman; Dahlgaard et al.) is about keeping labels
//! compact precisely so they are cheap to ship across a boundary — here
//! the boundary is a connection.
//!
//! The crate is layered so the wire format, the connection model, and
//! the scheme logic vary independently:
//!
//! * [`wire`] — a dependency-free length-prefixed frame codec covering
//!   the full trait surface (point ops, typed splices, chunked
//!   `(handle, label)` pages, stats, and a `Metrics` scrape frame
//!   carrying counter/gauge/histogram snapshots), with explicit
//!   protocol-version and error frames;
//! * [`transport`] — one framed request/response channel:
//!   [`TcpTransport`] (a socket) or [`LoopbackTransport`] (in-process,
//!   same codec, no syscalls) behind the [`Transport`] trait;
//! * [`pool`] — the connection model: an [`Endpoint`] mints transports
//!   (a `host:port`, or a loopback onto a server); a
//!   [`ConnectionPool`] owns `conns` of them so concurrent
//!   readers spread over connections and hit the server's shared read
//!   lock in parallel, while writes serialize through one pipelined
//!   connection; a declarative [`ClientPolicy`]
//!   (`{conns, retries, reconnect, op_timeout, coalesce}`) drives
//!   automatic reconnect-and-retry on transport errors, with mandatory
//!   page-cache invalidation on every reconnect;
//! * [`LabelServer`] — a `std::net` TCP server hosting any
//!   registry-built scheme behind an `RwLock` (shared reads, exclusive
//!   writes), thread-per-connection with request pipelining, graceful
//!   shutdown, per-connection op/byte counters, per-request phase
//!   latency histograms (decode / lock-wait / apply / encode) answered
//!   live through the wire `Metrics` request, and
//!   [`loopback`](LabelServer::loopback) in-process connections;
//!   [`ServerGroup`] launches *n* of them and hands back the
//!   `sharded(n,remote(…))` deployment spec in one call;
//! * [`RemoteScheme`] — the client: the whole trait family over a pool,
//!   page-cached reads, one frame per splice, an opt-in coalescing
//!   write buffer (adjacent single-op edits merge into splice runs,
//!   flushed pipelined on any read), and transport counters in
//!   `stats_breakdown()`.
//!
//! The crate also owns the **durability layer** (see [`durable`] and
//! [`wal`]): [`DurableScheme`] wraps any scheme with a write-ahead log
//! of wire-encoded splice frames (fsynced before the mutation returns)
//! plus snapshot checkpoints, and recovers snapshot + log tail after a
//! crash — [`LabelServer::recover_from_dir`] is the restart-from-disk
//! server constructor.
//!
//! ## Registry specs
//!
//! [`register`] adds three composite specs (grammar in
//! [`ltree_core::registry`]; the same table lives in ARCHITECTURE.md):
//!
//! | spec | meaning |
//! |------|---------|
//! | `remote(addrs[,options])` | connect to already-running [`LabelServer`]s; `addrs` is `host:port` or a `\|`-separated list (each build connects to the next entry, round-robin) |
//! | `served(inner[,options])` | spawn an in-process loopback server hosting `inner`, connect to it |
//! | `durable(inner[,dir=PATH][,sync=always\|never][,checkpoint_every=N])` | write-ahead logged, snapshot-checkpointed wrapper; recovers from `dir` when it holds state, uses a self-cleaning scratch dir when `dir=` is omitted |
//!
//! Options are `key=value` pairs / bare flags mapping onto
//! [`ClientPolicy`]: `conns=N`, `retries=N`, `reconnect`,
//! `timeout-ms=N`, `coalesce`. Defaults reproduce the plain
//! single-connection client, so every pre-existing spec parses
//! unchanged.
//!
//! `served` is the zero-infrastructure form: tests, benches and CI get
//! a real client/server pair (real frames through the real codec) from
//! a plain spec string. And because it is just another registry scheme,
//! it composes: `sharded(4,served(ltree(4,2)))` routes each segment's
//! splices to its own server through the segment directory, unchanged —
//! and `sharded(4,remote(a\|b\|c\|d,conns=2))` is the same deployment
//! over real processes, one spec string from [`ServerGroup::spec_with`].
//!
//! ```
//! use ltree_core::registry::SchemeRegistry;
//! use ltree_core::{OrderedLabeling, OrderedLabelingMut};
//!
//! let mut reg = SchemeRegistry::with_builtin();
//! ltree_remote::register(&mut reg);
//! let mut scheme = reg.build("served(ltree(4,2),conns=2,coalesce)").unwrap();
//! let handles = scheme.bulk_build(10).unwrap();
//! assert!(scheme.label_of(handles[3]).unwrap() < scheme.label_of(handles[4]).unwrap());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod wire;

pub mod client;
pub mod durable;
pub mod pool;
pub mod server;
pub mod transport;
pub mod wal;

pub use client::{RemoteScheme, TransportStats};
pub use durable::{DurableOptions, DurableScheme, SyncPolicy};
pub use pool::{ClientPolicy, ConnectionPool, Endpoint};
pub use server::{LabelServer, ServerGroup, TransportCounters};
pub use transport::{LoopbackTransport, TcpTransport, Transport};
pub use wal::{scratch_dir, DurableDir, FsDir, SimDir};
pub use wire::PROTOCOL_VERSION;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ltree_core::registry::{SchemeRegistry, SpecArg, SpecOptions};
use ltree_core::LTreeError;

/// Register the `remote(host:port[,options])`,
/// `served(inner[,options])` and `durable(inner[,options])` composite
/// specs.
///
/// * `remote(addrs)` connects to an external [`LabelServer`]; the build
///   fails with [`LTreeError::Remote`] when nothing listens there.
///   `addrs` is one `host:port` or a `|`-separated list: consecutive
///   builds of the same list rotate through it, one address per build
///   (so `sharded(n,remote(a|b|…))` — the [`ServerGroup`] deployment
///   spec — puts each segment on its own server). Reconnects always
///   redial the address the client was built with: the listed servers
///   are *not* replicas of each other.
/// * `served(inner)` builds `inner` against the same registry
///   (recursively — any spec works), hosts it on an in-process loopback
///   server, and hands back the connected [`RemoteScheme`].
///
/// Both accept trailing [`ClientPolicy`] options — `conns=N`,
/// `retries=N`, `reconnect`, `timeout-ms=N`, `coalesce` — e.g.
/// `remote(127.0.0.1:7878,conns=4,retries=2,coalesce)`. Unknown or
/// malformed options are typed [`LTreeError::InvalidOption`] errors
/// naming the key.
///
/// * `durable(inner)` wraps `inner` in a [`DurableScheme`]: every
///   mutation is appended to a write-ahead log (and fsynced, unless
///   `sync=never`) before it is acknowledged, snapshots checkpoint the
///   log every `checkpoint_every=N` logged records (default 1024), and
///   reopening the same `dir=PATH` recovers snapshot + log tail. With
///   no `dir=` the store lives in a unique scratch directory removed
///   when the scheme is dropped — durable across `checkpoint`/reopen
///   within the process, perfect for tests and sweeps.
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_composite(
        "durable",
        "write-ahead logged, snapshot-checkpointed wrapper; args: (inner-spec[,dir=PATH,sync=always|never,checkpoint_every=N])",
        |reg, cfg, args| {
            let Some((SpecArg::Spec(inner), rest)) = args.split_first() else {
                return Err(LTreeError::InvalidSpec {
                    spec: "durable".into(),
                    reason: "expected an inner scheme spec first, e.g. durable(ltree(4,2),dir=/path/to/store)",
                });
            };
            let mut opts = SpecOptions::parse("durable", rest)?;
            let dir = opts.take_str("dir")?;
            let sync = match opts.take_str("sync")?.as_deref() {
                None | Some("always") => SyncPolicy::Always,
                Some("never") => SyncPolicy::Never,
                Some(_) => {
                    return Err(LTreeError::InvalidOption {
                        spec: "durable".into(),
                        key: "sync".into(),
                        reason: "expected `always` or `never`",
                    })
                }
            };
            let checkpoint_every = match opts.take_u64("checkpoint_every")? {
                Some(0) => {
                    return Err(LTreeError::InvalidOption {
                        spec: "durable".into(),
                        key: "checkpoint_every".into(),
                        reason: "must be at least 1 (records between checkpoints)",
                    })
                }
                Some(n) => n,
                None => DurableOptions::default().checkpoint_every,
            };
            opts.finish()?;
            let inner = reg.build_with(inner, cfg)?;
            let dopts = DurableOptions {
                sync,
                checkpoint_every,
            };
            let scheme = match dir {
                Some(path) => {
                    DurableScheme::open_path(inner, std::path::Path::new(&path), dopts)?
                }
                None => DurableScheme::open_scratch(inner, dopts)?,
            };
            Ok(Box::new(scheme))
        },
    );
    reg.register_composite(
        "served",
        "loopback-served remote store; args: (inner-spec[,conns=N,retries=N,reconnect,timeout-ms=N,coalesce])",
        |reg, cfg, args| {
            let Some((SpecArg::Spec(inner), rest)) = args.split_first() else {
                return Err(LTreeError::InvalidSpec {
                    spec: "served".into(),
                    reason: "expected an inner scheme spec first, e.g. served(ltree(4,2))",
                });
            };
            let mut opts = SpecOptions::parse("served", rest)?;
            let policy = ClientPolicy::from_options(&mut opts)?;
            opts.finish()?;
            let scheme = reg.build_with(inner, cfg)?;
            Ok(Box::new(RemoteScheme::served_with(scheme, policy)?))
        },
    );
    // Consecutive builds of the same address list rotate their primary
    // address, keyed per list, so one spec string fans a sharded store's
    // segments out over a ServerGroup one-to-one.
    let rotation: Arc<Mutex<HashMap<String, usize>>> = Arc::new(Mutex::new(HashMap::new()));
    reg.register_composite(
        "remote",
        "client for external label server(s); args: (host:port|host:port…[,conns=N,retries=N,reconnect,timeout-ms=N,coalesce])",
        move |_, _, args| {
            let Some((SpecArg::Spec(addrs), rest)) = args.split_first() else {
                return Err(LTreeError::InvalidSpec {
                    spec: "remote".into(),
                    reason: "expected a host:port address (or a |-separated list) first, \
                             e.g. remote(127.0.0.1:7878,conns=4)",
                });
            };
            let mut opts = SpecOptions::parse("remote", rest)?;
            let policy = ClientPolicy::from_options(&mut opts)?;
            opts.finish()?;
            let list: Vec<String> = addrs.split('|').map(|a| a.trim().to_owned()).collect();
            let primary = if list.len() > 1 {
                let mut seen = rotation.lock().unwrap_or_else(|p| p.into_inner());
                let next = seen.entry(addrs.clone()).or_insert(0);
                let p = *next;
                *next += 1;
                p
            } else {
                0
            };
            let endpoint = Endpoint::tcp_rotated(list, primary)?;
            Ok(Box::new(RemoteScheme::from_endpoint(endpoint, policy, None)?))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::registry::SchemeRegistry;
    use ltree_core::{
        BatchLabeling, Instrumented, LTree, LTreeError, OrderedLabeling, OrderedLabelingMut,
        Params, Splice, SpliceResult,
    };

    fn ltree() -> Box<ltree_core::LTree> {
        Box::new(LTree::new(Params::new(4, 2).unwrap()))
    }

    fn served() -> RemoteScheme {
        RemoteScheme::served(ltree()).unwrap()
    }

    fn round_trips(s: &RemoteScheme) -> u64 {
        s.transport_stats().round_trips
    }

    #[test]
    fn point_ops_and_labels_match_a_local_scheme() {
        let mut remote = served();
        let mut local = LTree::new(Params::new(4, 2).unwrap());
        let rh = remote.bulk_build(16).unwrap();
        let lh = OrderedLabelingMut::bulk_build(&mut local, 16).unwrap();
        assert_eq!(remote.len(), OrderedLabeling::len(&local));
        // Same structure ⇒ identical labels, read through the wire.
        for (r, l) in rh.iter().zip(&lh) {
            assert_eq!(remote.label_of(*r).unwrap(), local.label_of(*l).unwrap());
        }
        let mid = remote.insert_after(rh[7]).unwrap();
        assert!(remote.label_of(rh[7]).unwrap() < remote.label_of(mid).unwrap());
        assert!(remote.label_of(mid).unwrap() < remote.label_of(rh[8]).unwrap());
        remote.delete(mid).unwrap();
        assert!(matches!(remote.delete(mid), Err(LTreeError::DeletedLeaf)));
        assert_eq!(remote.live_len(), 16);
        assert_eq!(remote.len(), 17, "tombstone still tracked");
    }

    #[test]
    fn cursor_pages_instead_of_tripping_per_item() {
        let mut s = served();
        s.bulk_build(1000).unwrap();
        let before = round_trips(&s);
        assert_eq!(s.cursor().count(), 1000);
        let walk_trips = round_trips(&s) - before;
        assert!(
            walk_trips <= 1000 / 256 + 2,
            "a full walk must page, not trip per item ({walk_trips} trips)"
        );
        // And the labels stream in strictly increasing order.
        let mut prev = None;
        for h in s.cursor() {
            let l = s.label_of(h).unwrap();
            if let Some(p) = prev {
                assert!(p < l);
            }
            prev = Some(l);
        }
    }

    #[test]
    fn batches_are_one_round_trip_each() {
        let mut s = served();
        let hs = s.bulk_build(8).unwrap();
        let before = round_trips(&s);
        let batch = s.insert_many_after(hs[3], 500).unwrap();
        assert_eq!(batch.len(), 500);
        assert_eq!(round_trips(&s) - before, 1, "one frame per batch");
        let before = round_trips(&s);
        let deleted = s.delete_run(batch[0], 200).unwrap();
        assert_eq!(deleted, 200);
        assert_eq!(round_trips(&s) - before, 1, "one frame per delete run");
    }

    #[test]
    fn pipelined_plans_pay_latency_once() {
        let mut s = served();
        let hs = s.bulk_build(10).unwrap();
        let before = round_trips(&s);
        let plan: Vec<Splice> = hs
            .iter()
            .map(|&h| Splice::InsertAfter {
                anchor: h,
                count: 3,
            })
            .collect();
        let results = s.pipeline_splices(&plan).unwrap();
        assert_eq!(results.len(), 10);
        for r in &results {
            assert!(matches!(r, SpliceResult::Inserted(v) if v.len() == 3));
        }
        assert_eq!(round_trips(&s) - before, 1, "whole plan, one round trip");
        assert_eq!(s.live_len(), 40);
    }

    #[test]
    fn pipelined_errors_keep_the_stream_in_sync() {
        let mut s = served();
        let hs = s.bulk_build(4).unwrap();
        let plan = vec![
            Splice::InsertAfter {
                anchor: hs[0],
                count: 2,
            },
            Splice::InsertAfter {
                anchor: hs[1],
                count: 0,
            }, // EmptyBatch
            Splice::InsertAfter {
                anchor: hs[2],
                count: 2,
            },
        ];
        assert!(matches!(
            s.pipeline_splices(&plan),
            Err(LTreeError::EmptyBatch)
        ));
        // The connection is still usable and the non-erroring splices
        // were applied (the SpliceBuilder prefix contract).
        assert_eq!(s.live_len(), 8);
        s.insert_after(hs[3]).unwrap();
    }

    #[test]
    fn stats_forward_and_breakdown_carries_transport_counters() {
        let mut s = served();
        let hs = s.bulk_build(32).unwrap();
        s.reset_scheme_stats();
        s.insert_after(hs[5]).unwrap();
        let stats = s.scheme_stats();
        assert_eq!(stats.inserts, 1);
        assert!(stats.label_writes >= 1);
        let breakdown = s.stats_breakdown();
        let net = |k: &str| {
            breakdown
                .iter()
                .find(|(n, _)| n == k)
                .unwrap_or_else(|| panic!("missing {k} in {breakdown:?}"))
                .1
                .node_touches
        };
        assert!(net("net/round-trips") >= 2, "insert + stats trips");
        assert!(net("net/bytes-out") > 0);
        assert!(net("net/bytes-in") > 0);
        // Reset zeroes the transport counters with the scheme counters.
        s.reset_scheme_stats();
        assert_eq!(s.transport_stats().round_trips, 0);
    }

    #[test]
    fn server_side_instrumentation_sees_connections() {
        let mut s = served();
        let hs = s.bulk_build(10).unwrap();
        s.insert_after(hs[4]).unwrap();
        let server = s.server().expect("loopback owns its server");
        // Host-side view: bulk loading is not an update in the paper's
        // model, so only the point insert counts.
        assert_eq!(server.scheme_stats().inserts, 1);
        let breakdown = server.stats_breakdown();
        assert!(
            breakdown
                .iter()
                .any(|(n, st)| n == "net/conn0/round-trips" && st.node_touches >= 2),
            "{breakdown:?}"
        );
    }

    #[test]
    fn errors_cross_the_wire_typed() {
        let mut s = served();
        assert!(matches!(
            s.insert_after(ltree_core::LeafHandle(u64::MAX)),
            Err(LTreeError::UnknownHandle)
        ));
        assert!(matches!(
            s.label_of(ltree_core::LeafHandle(u64::MAX)),
            Err(LTreeError::UnknownHandle)
        ));
        let hs = s.bulk_build(4).unwrap();
        assert!(matches!(
            s.insert_many_after(hs[0], 0),
            Err(LTreeError::EmptyBatch)
        ));
        assert!(matches!(s.bulk_build(4), Err(LTreeError::NotEmpty)));
    }

    #[test]
    fn connect_to_nothing_is_a_remote_error() {
        let mut reg = SchemeRegistry::with_builtin();
        register(&mut reg);
        // Reserve a port, then close it: nothing listens there.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match reg.build(&format!("remote({addr})")) {
            Err(LTreeError::Remote { context }) => assert!(context.contains("connect")),
            Err(other) => panic!("expected a Remote error, got {other:?}"),
            Ok(_) => panic!("expected a Remote error, got a scheme"),
        }
    }

    #[test]
    fn registry_specs_build_and_reject_bad_shapes() {
        let mut reg = SchemeRegistry::with_builtin();
        register(&mut reg);
        let mut s = reg.build("served(ltree(4,2))").unwrap();
        assert_eq!(s.name(), "remote");
        assert_eq!(s.bulk_build(12).unwrap().len(), 12);
        // Policy options parse through the spec string.
        let mut s = reg
            .build("served(ltree(4,2),conns=3,retries=1,coalesce)")
            .unwrap();
        assert_eq!(s.bulk_build(4).unwrap().len(), 4);
        for bad in ["served", "served()", "served(4)"] {
            assert!(
                matches!(reg.build(bad), Err(LTreeError::InvalidSpec { .. })),
                "{bad} must be rejected"
            );
        }
        for bad in ["remote", "remote()", "remote(1,2)"] {
            assert!(
                matches!(reg.build(bad), Err(LTreeError::InvalidSpec { .. })),
                "{bad} must be rejected"
            );
        }
        // A second positional where an option belongs names the word;
        // unknown/malformed options name the key.
        for (bad, key) in [
            ("served(ltree,gap)", "gap"),
            ("served(ltree,bogus=1)", "bogus"),
            ("served(ltree,conns=many)", "conns"),
            ("served(ltree,conns=0)", "conns"),
            ("served(ltree,coalesce=1)", "coalesce"),
        ] {
            match reg.build(bad) {
                Err(LTreeError::InvalidOption { key: k, .. }) => {
                    assert_eq!(k, key, "{bad}");
                }
                Err(other) => panic!("{bad}: expected InvalidOption, got {other:?}"),
                Ok(_) => panic!("{bad}: expected InvalidOption, got a scheme"),
            }
        }
        assert!(
            matches!(
                reg.build("served(nope)"),
                Err(LTreeError::UnknownScheme { .. })
            ),
            "inner spec must resolve"
        );
    }

    #[test]
    fn two_clients_share_one_server() {
        let mut a = served();
        let hs = a.bulk_build(8).unwrap();
        let addr = a.server().unwrap().local_addr().to_string();
        let b = RemoteScheme::connect(&addr).unwrap();
        // The second client reads state the first one wrote.
        assert_eq!(b.live_len(), 8);
        assert_eq!(
            b.label_of(hs[3]).unwrap(),
            a.label_of(hs[3]).unwrap(),
            "same handle, same label, either connection"
        );
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let mut s = served();
        s.bulk_build(4).unwrap();
        let addr = s.server().unwrap().local_addr();
        drop(s); // client socket closes, server joins all threads
                 // The port no longer accepts label traffic.
        assert!(RemoteScheme::connect(&addr.to_string()).is_err());
        // Explicit double-shutdown is fine.
        let mut server = LabelServer::bind("127.0.0.1:0", ltree()).unwrap();
        server.shutdown();
        server.shutdown();
    }
}
