//! # Write-ahead log: durable record framing and crash-injectable storage
//!
//! The durability layer's storage substrate, split the same way the
//! network stack is: a record codec (what bytes mean), a storage trait
//! (where bytes live and when they are *guaranteed* to survive a
//! crash), and two implementations — the real filesystem and a
//! deterministic crash simulator for fault-injection tests.
//!
//! ## Record format
//!
//! A log is a sequence of self-delimiting records:
//!
//! ```text
//! u32 LE body length | body | u64 LE FNV-1a(body)
//! body = u64 LE sequence number ++ wire-encoded Request payload
//! ```
//!
//! The payload reuses [`wire::encode_request`](crate::wire::encode_request)
//! verbatim — every mutation the trait family can express already has a
//! wire frame, so the log format falls out of the protocol. Sequence
//! numbers are strictly increasing across the log's lifetime and let
//! recovery skip records already covered by a snapshot (which makes the
//! checkpoint's write-snapshot-then-truncate-log window idempotent).
//!
//! ## Torn vs corrupt
//!
//! [`scan_log`] distinguishes the two failure shapes recovery meets:
//!
//! * a **torn tail** — the file ends before the final record completes
//!   (crash mid-append). Expected; the scan stops at the last complete
//!   record and reports the valid byte length so the caller can
//!   truncate the tail away.
//! * a **corrupt record** — a *complete* record whose checksum does not
//!   verify, anywhere in the file. Never expected from a crash; it is a
//!   typed [`LTreeError::Durability`] error, not a panic and not data.
//!
//! ## Crash simulation
//!
//! [`SimDir`] counts every mutating storage operation and can be armed
//! to fail on the N-th one. At the crash instant, every file keeps its
//! fsynced bytes plus a seeded, *strictly shorter* prefix of its
//! unsynced bytes — an interrupted operation never takes full effect.
//! That is exactly the regime in which fsync-before-ack is sound and
//! ack-before-fsync is not, and `tests/durable_recovery.rs` proves both
//! directions by sweeping the crash point across whole edit streams.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ltree_core::rng::SplitMix64;
use ltree_core::{LTreeError, Result};

use crate::wire::{self, Request};

/// File name of the append-only log inside a durable directory.
pub const WAL_FILE: &str = "wal.log";

/// File name of the checkpoint snapshot inside a durable directory.
pub const SNAP_FILE: &str = "snapshot.bin";

/// FNV-1a over `bytes` — the same dependency-free checksum
/// `ltree_core::snapshot` trails its images with.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn store_err(context: impl Into<String>) -> LTreeError {
    LTreeError::Durability {
        context: context.into(),
    }
}

// ----------------------------------------------------------------------
// Record codec
// ----------------------------------------------------------------------

/// Encode one log record: `(seq, request)` framed with length prefix
/// and checksum trailer.
pub fn encode_record(seq: u64, req: &Request) -> Vec<u8> {
    let payload = wire::encode_request(req);
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&payload);
    let mut out = Vec::with_capacity(4 + body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out
}

/// One log scan result: the decoded records and how many leading bytes
/// of the file they cover (everything past `valid_len` is a torn tail
/// the caller should truncate away).
#[derive(Debug)]
pub struct LogScan {
    /// `(sequence, request)` pairs, in file order.
    pub records: Vec<(u64, Request)>,
    /// Byte length of the valid prefix (end of the last complete record).
    pub valid_len: u64,
}

/// Scan a log image: decode every complete record, tolerate a torn
/// final record, and reject corruption (a complete record whose
/// checksum or payload does not verify) as [`LTreeError::Durability`].
pub fn scan_log(bytes: &[u8]) -> Result<LogScan> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            break; // clean end, or a torn length prefix
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len + 8 {
            break; // torn record: the crash landed mid-append
        }
        let body = &rest[4..4 + len];
        let stored = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(store_err(format!(
                "log record at byte {pos} is complete but its checksum does not \
                 verify — the log is corrupt, not merely torn"
            )));
        }
        if body.len() < 8 {
            return Err(store_err(format!(
                "log record at byte {pos} is too short to carry a sequence number"
            )));
        }
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        let req = wire::decode_request(&body[8..])
            .map_err(|e| store_err(format!("log record at byte {pos} (seq {seq}): {e}")))?;
        if let Some(&(prev, _)) = records.last() {
            if seq <= prev {
                return Err(store_err(format!(
                    "log sequence went backwards at byte {pos}: {prev} then {seq}"
                )));
            }
        }
        records.push((seq, req));
        pos += 4 + len + 8;
    }
    Ok(LogScan {
        records,
        valid_len: pos as u64,
    })
}

// ----------------------------------------------------------------------
// Storage
// ----------------------------------------------------------------------

/// A directory of named byte files with explicit durability points.
///
/// The contract mirrors what POSIX gives a write-ahead log: bytes
/// passed to [`append`](Self::append) are visible to same-process
/// [`read`](Self::read)s immediately but only survive a crash once
/// [`sync`](Self::sync) returns; [`replace`](Self::replace) is atomic
/// *and* durable (write-temp, fsync, rename — a crash leaves the old
/// content or the new, never a mix). Implementations are free to fail
/// any mutating call with [`LTreeError::Durability`]; the [`SimDir`]
/// simulator does so deliberately, mid-effect, to model crashes.
pub trait DurableDir: Send + Sync {
    /// Full content of `name`, or `None` when absent.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>>;
    /// Append `bytes` to `name` (created when absent). Not yet durable.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()>;
    /// Make every appended byte of `name` crash-durable.
    fn sync(&mut self, name: &str) -> Result<()>;
    /// Atomically and durably replace `name` with `bytes`.
    fn replace(&mut self, name: &str, bytes: &[u8]) -> Result<()>;
    /// Truncate `name` to its first `len` bytes, durably.
    fn truncate(&mut self, name: &str, len: u64) -> Result<()>;
}

/// The real filesystem behind [`DurableDir`]: one directory, appends
/// through a cached handle, `sync_data` for durability points, and
/// write-temp-fsync-rename for [`replace`](DurableDir::replace).
pub struct FsDir {
    dir: PathBuf,
    appender: Option<(String, fs::File)>,
}

impl FsDir {
    /// Open (creating if needed) `dir` as a durable directory.
    pub fn open(dir: &Path) -> Result<Self> {
        fs::create_dir_all(dir).map_err(|e| store_err(format!("create {}: {e}", dir.display())))?;
        Ok(FsDir {
            dir: dir.to_path_buf(),
            appender: None,
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn appender(&mut self, name: &str) -> Result<&mut fs::File> {
        let stale = matches!(&self.appender, Some((n, _)) if n != name);
        if stale || self.appender.is_none() {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))
                .map_err(|e| store_err(format!("open {name} for append: {e}")))?;
            self.appender = Some((name.to_owned(), file));
        }
        Ok(&mut self.appender.as_mut().unwrap().1)
    }
}

impl DurableDir for FsDir {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(store_err(format!("read {name}: {e}"))),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.appender(name)?
            .write_all(bytes)
            .map_err(|e| store_err(format!("append {name}: {e}")))
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        if let Some((n, file)) = &self.appender {
            if n == name {
                return file
                    .sync_data()
                    .map_err(|e| store_err(format!("fsync {name}: {e}")));
            }
        }
        Ok(()) // nothing appended since open: nothing to make durable
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        let target = self.path(name);
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
            fs::rename(&tmp, &target)?;
            // Persist the rename itself; not every platform lets a
            // directory be opened for syncing, so failure to do so is
            // not fatal (the rename is still atomic).
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
            Ok(())
        };
        write().map_err(|e| store_err(format!("replace {name}: {e}")))
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<()> {
        if matches!(&self.appender, Some((n, _)) if n == name) {
            self.appender = None; // reopen after the length change
        }
        let go = || -> std::io::Result<()> {
            let f = fs::OpenOptions::new().write(true).open(self.path(name))?;
            f.set_len(len)?;
            f.sync_data()
        };
        match go() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && len == 0 => Ok(()),
            Err(e) => Err(store_err(format!("truncate {name}: {e}"))),
        }
    }
}

#[derive(Default)]
struct SimFile {
    /// Bytes guaranteed to survive a crash.
    persisted: Vec<u8>,
    /// Bytes visible now but lost (except a seeded strict prefix) at a
    /// crash.
    volatile: Vec<u8>,
}

struct SimState {
    files: BTreeMap<String, SimFile>,
    rng: SplitMix64,
    ops_done: u64,
    crash_at: Option<u64>,
    crashed: bool,
}

impl SimState {
    /// Called at the top of every mutating op: either pass, or crash —
    /// every file keeps its persisted bytes plus a seeded strictly
    /// shorter prefix of its volatile bytes, and all later ops fail.
    fn tick(&mut self) -> Result<()> {
        if self.crashed {
            return Err(store_err("simulated storage is down (post-crash)"));
        }
        self.ops_done += 1;
        if Some(self.ops_done) == self.crash_at.map(|n| n + 1) {
            for f in self.files.values_mut() {
                let keep = if f.volatile.is_empty() {
                    0
                } else {
                    self.rng.gen_range(0..f.volatile.len())
                };
                f.persisted.extend_from_slice(&f.volatile[..keep]);
                f.volatile.clear();
            }
            self.crashed = true;
            return Err(store_err("simulated crash"));
        }
        Ok(())
    }
}

/// A deterministic in-memory [`DurableDir`] with crash injection.
///
/// Clones share state, so a test can hold one handle while the durable
/// scheme owns another: arm a crash with
/// [`crash_after`](Self::crash_after), drive writes until the storage
/// "dies", then [`restart`](Self::restart) and recover from what
/// survived. Mutating operations ([`append`](DurableDir::append),
/// [`sync`](DurableDir::sync), [`replace`](DurableDir::replace),
/// [`truncate`](DurableDir::truncate)) each count as one disk op;
/// reads are free.
#[derive(Clone)]
pub struct SimDir {
    state: Arc<Mutex<SimState>>,
}

impl SimDir {
    /// A fresh simulated directory; `seed` drives how much unsynced
    /// data survives each crash.
    pub fn new(seed: u64) -> Self {
        SimDir {
            state: Arc::new(Mutex::new(SimState {
                files: BTreeMap::new(),
                rng: SplitMix64::new(seed),
                ops_done: 0,
                crash_at: None,
                crashed: false,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arm a crash on the `(n+1)`-th mutating disk op from now
    /// (`n == 0` crashes the very next one).
    pub fn crash_after(&self, n: u64) {
        let mut st = self.lock();
        let base = st.ops_done;
        st.crash_at = Some(base + n);
    }

    /// Mutating disk ops performed so far.
    pub fn ops_done(&self) -> u64 {
        self.lock().ops_done
    }

    /// Has the armed crash fired?
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Bring the storage back up after a crash: what survived is now
    /// the persisted content, the op counter keeps counting, and no
    /// crash is armed.
    pub fn restart(&self) {
        let mut st = self.lock();
        st.crashed = false;
        st.crash_at = None;
        // Anything still unsynced did not survive the power cycle.
        for f in st.files.values_mut() {
            f.volatile.clear();
        }
    }
}

impl DurableDir for SimDir {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let st = self.lock();
        Ok(st.files.get(name).map(|f| {
            let mut out = f.persisted.clone();
            out.extend_from_slice(&f.volatile);
            out
        }))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut st = self.lock();
        if st.crashed {
            return Err(store_err("simulated storage is down (post-crash)"));
        }
        // Stage first so the crash rule sees the in-flight bytes and
        // can keep a torn prefix of them.
        st.files
            .entry(name.to_owned())
            .or_default()
            .volatile
            .extend_from_slice(bytes);
        st.tick()
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        let mut st = self.lock();
        st.tick()?;
        if let Some(f) = st.files.get_mut(name) {
            let vol = std::mem::take(&mut f.volatile);
            f.persisted.extend_from_slice(&vol);
        }
        Ok(())
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut st = self.lock();
        // Atomic rename semantics: a crash here leaves the old content.
        st.tick()?;
        st.files.insert(
            name.to_owned(),
            SimFile {
                persisted: bytes.to_vec(),
                volatile: Vec::new(),
            },
        );
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<()> {
        let mut st = self.lock();
        st.tick()?;
        if let Some(f) = st.files.get_mut(name) {
            let mut all = std::mem::take(&mut f.persisted);
            all.extend_from_slice(&f.volatile);
            f.volatile.clear();
            all.truncate(len as usize);
            f.persisted = all;
        }
        Ok(())
    }
}

/// A fresh, process-unique scratch directory under the OS temp dir —
/// the repo-wide way for tests and dir-less `durable(...)` builds to
/// get on-disk space without fixed paths (which the
/// `cargo xtask lint` `fixed-path` rule forbids in tests).
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // relaxed: uniqueness only; the RMW's atomicity suffices.
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ltree-{tag}-{}-{n}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireSplice;

    fn rand_request(rng: &mut SplitMix64) -> Request {
        match rng.gen_range(0..7) {
            0 => Request::BulkBuild(rng.next_u64() >> 40),
            1 => Request::InsertFirst,
            2 => Request::InsertAfter(rng.next_u64()),
            3 => Request::InsertBefore(rng.next_u64()),
            4 => Request::Delete(rng.next_u64()),
            5 => Request::Splice(WireSplice::InsertAfter {
                anchor: rng.next_u64(),
                count: rng.next_u64() >> 40,
            }),
            _ => Request::Splice(WireSplice::DeleteRun {
                first: rng.next_u64(),
                count: rng.next_u64() >> 40,
            }),
        }
    }

    /// Satellite: encode → append → reopen → replay is the identity
    /// over randomized splice streams, for every seed.
    #[test]
    fn log_roundtrip_fuzz() {
        for seed in 0..24u64 {
            let mut rng = SplitMix64::new(seed);
            let n = rng.gen_range(1..80);
            let recs: Vec<(u64, Request)> = (0..n as u64)
                .map(|i| (i + 1, rand_request(&mut rng)))
                .collect();
            let mut dir = SimDir::new(seed);
            for (seq, req) in &recs {
                dir.append(WAL_FILE, &encode_record(*seq, req)).unwrap();
            }
            dir.sync(WAL_FILE).unwrap();
            let image = dir.read(WAL_FILE).unwrap().unwrap();
            let scan = scan_log(&image).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(scan.records, recs, "seed {seed}");
            assert_eq!(scan.valid_len, image.len() as u64, "seed {seed}");
        }
    }

    /// A torn tail (any strict prefix cut inside the final record) is
    /// tolerated: the scan returns every earlier record and the valid
    /// length to truncate to.
    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let recs: Vec<(u64, Request)> =
            (1..=5).map(|i| (i, Request::InsertAfter(i * 10))).collect();
        let mut image = Vec::new();
        let mut offsets = vec![0usize];
        for (seq, req) in &recs {
            image.extend_from_slice(&encode_record(*seq, req));
            offsets.push(image.len());
        }
        for cut in offsets[4]..image.len() {
            let scan = scan_log(&image[..cut]).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert_eq!(scan.records, recs[..4], "cut {cut}");
            assert_eq!(scan.valid_len as usize, offsets[4], "cut {cut}");
        }
        let full = scan_log(&image).unwrap();
        assert_eq!(full.records, recs);
    }

    /// A complete record with a flipped byte is corruption — a typed
    /// `Durability` error, never a panic, at every byte position.
    #[test]
    fn corrupted_checksums_are_typed_errors() {
        let mut image = Vec::new();
        for i in 1..=3u64 {
            image.extend_from_slice(&encode_record(i, &Request::Delete(i)));
        }
        let rec_len = image.len() / 3;
        // Flip one byte inside the *first* record so the damage is
        // followed by complete records (i.e. unambiguously not a torn
        // tail).
        for pos in 0..rec_len {
            let mut bad = image.clone();
            bad[pos] ^= 0x41;
            match scan_log(&bad) {
                Err(LTreeError::Durability { context }) => {
                    assert!(
                        context.contains("corrupt") || context.contains("log"),
                        "{context}"
                    );
                }
                Ok(scan) => {
                    // Flipping a length-prefix byte can turn the rest of
                    // the file into one torn record — allowed, but then
                    // nothing decodes past the damage.
                    assert!(
                        scan.records.len() < 3,
                        "pos {pos}: corruption decoded as {} records",
                        scan.records.len()
                    );
                }
                Err(e) => panic!("pos {pos}: wrong error type {e}"),
            }
        }
    }

    #[test]
    fn sequence_regressions_are_rejected() {
        let mut image = Vec::new();
        image.extend_from_slice(&encode_record(5, &Request::InsertFirst));
        image.extend_from_slice(&encode_record(5, &Request::InsertFirst));
        assert!(matches!(
            scan_log(&image),
            Err(LTreeError::Durability { .. })
        ));
    }

    /// The simulator's crash rule: fsynced bytes always survive, the
    /// in-flight op never takes full effect.
    #[test]
    fn simulated_crash_keeps_synced_bytes_and_tears_unsynced_ones() {
        for seed in 0..20u64 {
            let mut dir = SimDir::new(seed);
            dir.append(WAL_FILE, b"durable-part").unwrap();
            dir.sync(WAL_FILE).unwrap();
            dir.crash_after(0);
            let err = dir.append(WAL_FILE, b"lost-or-torn").unwrap_err();
            assert!(matches!(err, LTreeError::Durability { .. }));
            assert!(dir.crashed());
            // Post-crash ops fail until restart.
            assert!(dir.append(WAL_FILE, b"x").is_err());
            dir.restart();
            let image = dir.read(WAL_FILE).unwrap().unwrap();
            assert!(image.starts_with(b"durable-part"), "seed {seed}");
            assert!(
                image.len() < b"durable-part".len() + b"lost-or-torn".len(),
                "seed {seed}: an interrupted append must never fully persist"
            );
        }
    }

    #[test]
    fn fs_dir_appends_syncs_replaces_and_truncates() {
        let root = scratch_dir("fsdir-test");
        let mut dir = FsDir::open(&root).unwrap();
        assert_eq!(dir.read(WAL_FILE).unwrap(), None);
        dir.append(WAL_FILE, b"abc").unwrap();
        dir.append(WAL_FILE, b"def").unwrap();
        dir.sync(WAL_FILE).unwrap();
        assert_eq!(dir.read(WAL_FILE).unwrap().unwrap(), b"abcdef");
        dir.truncate(WAL_FILE, 4).unwrap();
        assert_eq!(dir.read(WAL_FILE).unwrap().unwrap(), b"abcd");
        // Appends continue at the truncated boundary.
        dir.append(WAL_FILE, b"Z").unwrap();
        assert_eq!(dir.read(WAL_FILE).unwrap().unwrap(), b"abcdZ");
        dir.replace(SNAP_FILE, b"snapshot").unwrap();
        assert_eq!(dir.read(SNAP_FILE).unwrap().unwrap(), b"snapshot");
        dir.replace(SNAP_FILE, b"snapshot2").unwrap();
        assert_eq!(dir.read(SNAP_FILE).unwrap().unwrap(), b"snapshot2");
        // Truncating a missing file to zero is a no-op, not an error.
        dir.truncate("absent", 0).unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scratch_dirs_are_unique() {
        let a = scratch_dir("uniq");
        let b = scratch_dir("uniq");
        assert_ne!(a, b);
        assert!(a.starts_with(std::env::temp_dir()));
    }
}
