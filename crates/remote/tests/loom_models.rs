//! Exhaustive interleaving models of the three concurrency protocols in
//! this crate, driven by `ltree_checked::interleave` (the workspace's
//! dependency-free stand-in for `loom` — see that module's docs for the
//! scope statement; the scheduled TSan CI lane covers weak memory).
//!
//! Each model extracts one protocol into an explicit state machine and
//! proves a claim over **every** schedule, not one lucky test ordering:
//!
//! 1. **Epoch-keyed cache** (`pool.rs::kill`/`epoch` +
//!    `client.rs::lock_cache`/`fetch_page`): a cache hit never serves
//!    data older than the last *detected* failover. The proof hinges on
//!    `fetch_page` sampling the epoch **before** the exchange and
//!    installing the page under that pre-call epoch; the seeded-bug
//!    variant samples at install time instead and the explorer exhibits
//!    the stale-read schedule.
//! 2. **Checkout rotation** (`pool.rs::checkout_read`): the rotating
//!    try-lock probe over all slots, falling back to a blocking lock on
//!    the start slot, completes every client, leaks no slot and cannot
//!    deadlock — including more clients than slots.
//! 3. **Two-pass shutdown** (`server.rs::shutdown` + `accept_loop`): a
//!    connection accepted concurrently with the first signaling pass may
//!    register *after* that pass ran; the second pass catches it. The
//!    seeded-bug variant drops the second pass and the explorer exhibits
//!    the lost-connection deadlock.
//!
//! The models compile and run under plain `cargo test` with small
//! bounds; `RUSTFLAGS="--cfg loom" cargo test --release` widens them
//! (more rounds, more failover cycles, more contention).

use ltree_checked::interleave::{Explored, Explorer, Step, Thread, Violation};

// ---------------------------------------------------------------------
// Model 1: epoch-keyed client cache vs. pool failover.
// ---------------------------------------------------------------------

/// One linearized answer handed to a caller, stamped with enough of the
/// world to judge its freshness after the fact.
#[derive(Debug, Clone, Copy)]
struct Serve {
    from_cache: bool,
    /// Server generation the answer's data was produced by.
    data_gen: u64,
    /// Last failover generation *detected* (epoch-bumped) at serve time.
    detected_gen: u64,
}

/// Shared state of the cache model. `epoch` mirrors
/// `ConnectionPool::epoch`; `server_gen` is which server incarnation is
/// live; `conn_gen` is the incarnation the pooled connection talks to
/// (stale after a restart until a failed exchange kills + reconnects).
#[derive(Debug, Clone)]
struct CacheWorld {
    epoch: u64,
    server_gen: u64,
    conn_gen: u64,
    detected_gen: u64,
    /// The client page cache: `(install_epoch, data_gen)`.
    cache: Option<(u64, u64)>,
    serves: Vec<Serve>,
}

impl CacheWorld {
    fn new() -> Self {
        CacheWorld {
            epoch: 0,
            server_gen: 0,
            conn_gen: 0,
            detected_gen: 0,
            cache: None,
            serves: Vec::new(),
        }
    }

    /// A failed exchange: `ConnectionPool::kill` (epoch bump, Release in
    /// the real code) followed by reconnect to the live server.
    fn kill_and_reconnect(&mut self) {
        self.epoch += 1;
        self.detected_gen = self.server_gen;
        self.conn_gen = self.server_gen;
    }
}

/// Where a reader is inside `cached_label` → `fetch_page`.
#[derive(Debug, Clone, Copy)]
enum ReadPhase {
    /// `lock_cache`: validate the cache against the current epoch.
    Check,
    /// `fetch_page`: sample the epoch *before* the exchange.
    Sample,
    /// The exchange itself (may fail and retry after kill+reconnect).
    Exchange { pre: u64 },
    /// Install the fetched page into the cache.
    Install { pre: u64, data_gen: u64 },
}

/// A client performing `rounds` cached lookups. With `install_pre_epoch`
/// the page is installed under the epoch sampled before the exchange
/// (what `fetch_page` does); without it, under the epoch at install time
/// (the seeded bug).
#[derive(Debug, Clone)]
struct Reader {
    rounds: u32,
    phase: ReadPhase,
    install_pre_epoch: bool,
}

impl Reader {
    fn new(rounds: u32, install_pre_epoch: bool) -> Self {
        Reader {
            rounds,
            phase: ReadPhase::Check,
            install_pre_epoch,
        }
    }

    fn finish_round(&mut self) -> Step {
        self.rounds -= 1;
        self.phase = ReadPhase::Check;
        if self.rounds == 0 {
            Step::Done
        } else {
            Step::Ran
        }
    }
}

impl Thread<CacheWorld> for Reader {
    fn step(&mut self, w: &mut CacheWorld, _choice: u32) -> Step {
        match self.phase {
            ReadPhase::Check => match w.cache {
                // `lock_cache` keeps the cache only while its install
                // epoch matches the pool's; a hit answers immediately.
                Some((install_epoch, data_gen)) if install_epoch == w.epoch => {
                    w.serves.push(Serve {
                        from_cache: true,
                        data_gen,
                        detected_gen: w.detected_gen,
                    });
                    self.finish_round()
                }
                _ => {
                    w.cache = None;
                    self.phase = ReadPhase::Sample;
                    Step::Ran
                }
            },
            ReadPhase::Sample => {
                self.phase = ReadPhase::Exchange { pre: w.epoch };
                Step::Ran
            }
            ReadPhase::Exchange { pre } => {
                if w.conn_gen == w.server_gen {
                    // Live connection: the answer is fresh by
                    // construction (served from the exchange payload).
                    let data_gen = w.conn_gen;
                    w.serves.push(Serve {
                        from_cache: false,
                        data_gen,
                        detected_gen: w.detected_gen,
                    });
                    self.phase = ReadPhase::Install { pre, data_gen };
                } else {
                    // Dead connection: `exchange` kills (epoch bump) and
                    // the retry policy reconnects; `pre` stays what it
                    // was, so the eventual install is already invalid —
                    // conservative, never stale.
                    w.kill_and_reconnect();
                }
                Step::Ran
            }
            ReadPhase::Install { pre, data_gen } => {
                let key = if self.install_pre_epoch { pre } else { w.epoch };
                w.cache = Some((key, data_gen));
                self.finish_round()
            }
        }
    }
}

/// The failure injector: each cycle restarts the server (new
/// generation; the pooled connection silently goes stale) and then a
/// concurrent writer's failing call detects it (kill + reconnect).
#[derive(Debug, Clone)]
struct Faulter {
    cycles: u32,
    mid_cycle: bool,
}

impl Thread<CacheWorld> for Faulter {
    fn step(&mut self, w: &mut CacheWorld, _choice: u32) -> Step {
        if !self.mid_cycle {
            w.server_gen += 1;
            self.mid_cycle = true;
            Step::Ran
        } else {
            w.kill_and_reconnect();
            self.mid_cycle = false;
            self.cycles -= 1;
            if self.cycles == 0 {
                Step::Done
            } else {
                Step::Ran
            }
        }
    }
}

/// The freshness claim: no serve — cache hit or direct — carries data
/// older than the last failover that had been detected when it was
/// handed out. (Data from an *undetected* failover window is the
/// inherent staleness any cache has; the epoch key bounds it at one
/// failed call.)
fn freshness(w: &CacheWorld) -> Result<(), String> {
    for s in &w.serves {
        if s.data_gen < s.detected_gen {
            return Err(format!(
                "stale {} serve: data from generation {} after failover {} was detected",
                if s.from_cache { "cache" } else { "direct" },
                s.data_gen,
                s.detected_gen
            ));
        }
    }
    Ok(())
}

fn cache_model(
    readers: usize,
    rounds: u32,
    cycles: u32,
    install_pre_epoch: bool,
) -> Result<Explored, Violation> {
    let threads: Vec<Reader> = (0..readers)
        .map(|_| Reader::new(rounds, install_pre_epoch))
        .collect();
    // A Reader and a Faulter are different types; run them as one enum.
    #[derive(Clone)]
    enum T {
        R(Reader),
        F(Faulter),
    }
    impl Thread<CacheWorld> for T {
        fn step(&mut self, w: &mut CacheWorld, choice: u32) -> Step {
            match self {
                T::R(r) => r.step(w, choice),
                T::F(f) => f.step(w, choice),
            }
        }
    }
    let mut all: Vec<T> = threads.into_iter().map(T::R).collect();
    all.push(T::F(Faulter {
        cycles,
        mid_cycle: false,
    }));
    Explorer::default().run(&CacheWorld::new(), &all, freshness)
}

#[cfg(not(loom))]
const CACHE_SIZES: (usize, u32, u32) = (2, 1, 1); // readers, rounds, failover cycles
#[cfg(loom)]
const CACHE_SIZES: (usize, u32, u32) = (2, 1, 2);

#[test]
fn epoch_keyed_cache_never_serves_stale_data() {
    let (readers, rounds, cycles) = CACHE_SIZES;
    let explored = cache_model(readers, rounds, cycles, true).unwrap();
    // The model must genuinely interleave: cache hits, misses and the
    // failover all occur across the explored schedules.
    assert!(explored.schedules > 100, "trivial model: {explored:?}");
}

#[test]
fn installing_under_the_current_epoch_is_the_stale_read_bug() {
    // Seeded bug: key the page under the epoch read at install time.
    // Schedule exhibiting it: reader A fetches from the old server,
    // the faulter restarts + detection bumps the epoch, A installs the
    // old page under the *new* epoch, reader B cache-hits stale data.
    let (readers, rounds, cycles) = CACHE_SIZES;
    let err = cache_model(readers, rounds, cycles, false).unwrap_err();
    match err {
        Violation::Invariant { message, schedule } => {
            assert!(message.contains("stale cache serve"), "{message}");
            assert!(!schedule.is_empty());
        }
        other => panic!("expected a stale-read invariant violation, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Model 2: checkout_read's rotating try-lock probe.
// ---------------------------------------------------------------------

/// Shared state: the rotation counter (Relaxed in the real code — it is
/// only a start-slot hint), one mutex per slot, and completion records.
#[derive(Debug, Clone)]
struct PoolWorld {
    rotation: usize,
    locked: Vec<bool>,
    /// Slot index acquired, in acquisition order.
    history: Vec<usize>,
    completed: usize,
}

impl PoolWorld {
    fn new(slots: usize) -> Self {
        PoolWorld {
            rotation: 0,
            locked: vec![false; slots],
            history: Vec::new(),
            completed: 0,
        }
    }
}

/// Where a client is inside `checkout_read`.
#[derive(Debug, Clone, Copy)]
enum CheckoutPhase {
    /// `rotation.fetch_add(1, Relaxed)` picks the start slot.
    Start,
    /// Non-blocking `try_lock` probe at `start + probed`.
    Probe { start: usize, probed: usize },
    /// Every probe failed: block on the start slot (`lock_slot`).
    BlockOn { start: usize },
    /// Exchange done under the slot lock; release it.
    Release { held: usize },
}

#[derive(Debug, Clone)]
struct Checkout {
    phase: CheckoutPhase,
}

impl Checkout {
    fn new() -> Self {
        Checkout {
            phase: CheckoutPhase::Start,
        }
    }
}

impl Thread<PoolWorld> for Checkout {
    fn step(&mut self, w: &mut PoolWorld, _choice: u32) -> Step {
        let n = w.locked.len();
        match self.phase {
            CheckoutPhase::Start => {
                let start = w.rotation % n;
                w.rotation += 1;
                self.phase = CheckoutPhase::Probe { start, probed: 0 };
                Step::Ran
            }
            CheckoutPhase::Probe { start, probed } => {
                let slot = (start + probed) % n;
                if !w.locked[slot] {
                    w.locked[slot] = true;
                    w.history.push(slot);
                    self.phase = CheckoutPhase::Release { held: slot };
                } else if probed + 1 == n {
                    self.phase = CheckoutPhase::BlockOn { start };
                } else {
                    self.phase = CheckoutPhase::Probe {
                        start,
                        probed: probed + 1,
                    };
                }
                Step::Ran
            }
            CheckoutPhase::BlockOn { start } => {
                if w.locked[start] {
                    return Step::Blocked;
                }
                w.locked[start] = true;
                w.history.push(start);
                self.phase = CheckoutPhase::Release { held: start };
                Step::Ran
            }
            CheckoutPhase::Release { held } => {
                w.locked[held] = false;
                w.completed += 1;
                Step::Done
            }
        }
    }
}

fn checkout_model(clients: usize, slots: usize) -> Result<Explored, Violation> {
    let threads: Vec<Checkout> = (0..clients).map(|_| Checkout::new()).collect();
    Explorer::default().run(&PoolWorld::new(slots), &threads, move |w| {
        if w.completed != clients {
            return Err(format!("{} of {clients} clients completed", w.completed));
        }
        if w.locked.iter().any(|&l| l) {
            return Err(format!("slot leaked locked: {:?}", w.locked));
        }
        if w.history.len() != clients {
            return Err(format!(
                "{} checkouts for {clients} clients",
                w.history.len()
            ));
        }
        Ok(())
    })
}

#[test]
fn checkout_completes_every_client_without_leaking_a_slot() {
    // As many clients as slots: every schedule completes, no deadlock.
    let explored = checkout_model(2, 2).unwrap();
    assert!(explored.schedules > 10, "trivial model: {explored:?}");
    // One slot: the blocking fallback path is forced to serialize.
    checkout_model(2, 1).unwrap();
}

#[cfg(not(loom))]
const CONTENTION: (usize, usize) = (3, 2);
#[cfg(loom)]
const CONTENTION: (usize, usize) = (3, 3);

#[test]
fn checkout_survives_contention_beyond_the_slot_count() {
    // More clients than slots: the probe loop misses everywhere and the
    // blocking fallback must still guarantee progress for everyone.
    let (clients, slots) = CONTENTION;
    checkout_model(clients, slots).unwrap();
}

#[test]
fn rotation_spreads_sequential_checkouts_across_slots() {
    // Uncontended clients, run to completion one after another, land on
    // distinct slots round-robin — the point of the Relaxed rotation
    // counter (a hint, not a guarantee under contention).
    let mut w = PoolWorld::new(2);
    for _ in 0..4 {
        let mut c = Checkout::new();
        while !matches!(c.step(&mut w, 0), Step::Done) {}
    }
    assert_eq!(w.history, vec![0, 1, 0, 1]);
}

// ---------------------------------------------------------------------
// Model 3: two-pass server shutdown vs. concurrent accept.
// ---------------------------------------------------------------------

/// One server-side connection's lifecycle flags.
#[derive(Debug, Clone, Copy, Default)]
struct ConnState {
    registered: bool,
    /// Socket shut down by a signaling pass — unblocks the read.
    signaled: bool,
    finished: bool,
}

/// Shared state mirroring `LabelServer`: the `stop` flag, the accept
/// queue depth, the registered-connections list and the accept-loop
/// join flag.
#[derive(Debug, Clone)]
struct ServerWorld {
    stop: bool,
    pending: u32,
    accept_done: bool,
    conns: Vec<ConnState>,
}

/// A client whose only modeled action is connecting.
#[derive(Debug, Clone)]
struct Connector;

impl Thread<ServerWorld> for Connector {
    fn step(&mut self, w: &mut ServerWorld, _choice: u32) -> Step {
        w.pending += 1;
        Step::Done
    }
}

/// The accept loop. Faithful to `accept_loop`: `accept()` returns, the
/// `stop` flag is checked, and only then is the connection registered —
/// the registration is a *separate* step, so it can interleave after
/// shutdown's first signaling pass (the race the second pass exists
/// for).
#[derive(Debug, Clone)]
enum Acceptor {
    Waiting { next: usize },
    Registering { next: usize },
}

impl Thread<ServerWorld> for Acceptor {
    fn step(&mut self, w: &mut ServerWorld, _choice: u32) -> Step {
        match *self {
            Acceptor::Waiting { next } => {
                if w.pending == 0 {
                    return Step::Blocked; // blocked in accept()
                }
                w.pending -= 1;
                if w.stop {
                    // Post-accept stop check: drop the stream, break.
                    w.accept_done = true;
                    return Step::Done;
                }
                *self = Acceptor::Registering { next };
                Step::Ran
            }
            Acceptor::Registering { next } => {
                w.conns[next].registered = true;
                *self = Acceptor::Waiting { next: next + 1 };
                Step::Ran
            }
        }
    }
}

/// One `serve_conn` thread: not schedulable until registered, serves a
/// few requests, then sits in a blocking read that only the socket
/// shutdown (signal) can unblock.
#[derive(Debug, Clone)]
struct ServeConn {
    index: usize,
    requests_left: u32,
}

impl Thread<ServerWorld> for ServeConn {
    fn step(&mut self, w: &mut ServerWorld, _choice: u32) -> Step {
        let me = w.conns[self.index];
        if !me.registered {
            if w.accept_done {
                // The listener closed before this connection was ever
                // accepted; the thread never comes to life.
                return Step::Done;
            }
            return Step::Blocked;
        }
        if me.signaled {
            w.conns[self.index].finished = true;
            return Step::Done;
        }
        if self.requests_left > 0 {
            self.requests_left -= 1;
            return Step::Ran;
        }
        Step::Blocked // blocking read; only shutdown() unblocks it
    }
}

/// `LabelServer::shutdown`, step for step. `two_pass: false` seeds the
/// bug of joining connection threads without the second signaling pass.
#[derive(Debug, Clone)]
struct Shutdown {
    phase: u32,
    two_pass: bool,
}

impl Thread<ServerWorld> for Shutdown {
    fn step(&mut self, w: &mut ServerWorld, _choice: u32) -> Step {
        match self.phase {
            // stop.swap(true, SeqCst)
            0 => {
                w.stop = true;
                self.phase = 1;
                Step::Ran
            }
            // First pass: shut down every *currently registered* socket
            // (one step — the real code holds the conns lock).
            1 => {
                for c in w.conns.iter_mut().filter(|c| c.registered) {
                    c.signaled = true;
                }
                self.phase = 2;
                Step::Ran
            }
            // Throwaway connect to unblock accept().
            2 => {
                w.pending += 1;
                self.phase = 3;
                Step::Ran
            }
            // Join the accept loop.
            3 => {
                if !w.accept_done {
                    return Step::Blocked;
                }
                self.phase = 4;
                Step::Ran
            }
            // Second pass: signal again — catching any connection that
            // registered between the first pass and the accept join.
            4 => {
                if self.two_pass {
                    for c in w.conns.iter_mut().filter(|c| c.registered) {
                        c.signaled = true;
                    }
                }
                self.phase = 5;
                Step::Ran
            }
            // Join every connection thread.
            _ => {
                if w.conns.iter().any(|c| c.registered && !c.finished) {
                    return Step::Blocked;
                }
                Step::Done
            }
        }
    }
}

fn shutdown_model(conns: usize, requests: u32, two_pass: bool) -> Result<Explored, Violation> {
    #[derive(Clone)]
    enum T {
        C(Connector),
        A(Acceptor),
        S(ServeConn),
        D(Shutdown),
    }
    impl Thread<ServerWorld> for T {
        fn step(&mut self, w: &mut ServerWorld, choice: u32) -> Step {
            match self {
                T::C(t) => t.step(w, choice),
                T::A(t) => t.step(w, choice),
                T::S(t) => t.step(w, choice),
                T::D(t) => t.step(w, choice),
            }
        }
    }
    let mut threads = Vec::new();
    for i in 0..conns {
        threads.push(T::C(Connector));
        threads.push(T::S(ServeConn {
            index: i,
            requests_left: requests,
        }));
    }
    threads.push(T::A(Acceptor::Waiting { next: 0 }));
    threads.push(T::D(Shutdown { phase: 0, two_pass }));
    let world = ServerWorld {
        stop: false,
        pending: 0,
        accept_done: false,
        conns: vec![ConnState::default(); conns],
    };
    Explorer::default().run(&world, &threads, |w| {
        if !w.accept_done {
            return Err("accept loop still running after shutdown".into());
        }
        for (i, c) in w.conns.iter().enumerate() {
            if c.registered && !(c.signaled && c.finished) {
                return Err(format!("connection {i} lost: {c:?}"));
            }
        }
        Ok(())
    })
}

#[cfg(not(loom))]
const SHUTDOWN_REQUESTS: u32 = 1;
#[cfg(loom)]
const SHUTDOWN_REQUESTS: u32 = 3;

#[test]
fn two_pass_shutdown_loses_no_connection() {
    let explored = shutdown_model(1, SHUTDOWN_REQUESTS, true).unwrap();
    assert!(explored.schedules > 50, "trivial model: {explored:?}");
}

#[test]
fn single_pass_shutdown_deadlocks_on_the_registration_race() {
    // Seeded bug: join connection threads after the accept join without
    // signaling again. The lost schedule: accept() returns and passes
    // the stop check, shutdown's first pass signals (nothing registered
    // yet), the connection registers, its read blocks forever — and so
    // does the join.
    let err = shutdown_model(1, SHUTDOWN_REQUESTS, false).unwrap_err();
    match err {
        Violation::Deadlock { blocked, schedule } => {
            assert!(!blocked.is_empty());
            assert!(!schedule.is_empty());
        }
        other => panic!("expected a lost-connection deadlock, got {other}"),
    }
}
