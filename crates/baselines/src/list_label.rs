//! Classic even-redistribution list labeling (Itai–Konheim–Rodeh /
//! Dietz–Sleator lineage — references [8, 9, 10] of the paper, the work
//! the L-Tree "has been inspired by" and parameterizes).
//!
//! Labels live in a fixed universe `[0, 2^W)`. Insertion takes a midpoint;
//! when the midpoint collapses, the smallest enclosing *dyadic* range
//! whose density is below its threshold `(2τ)^i / 2^i` is relabeled
//! evenly. If even the whole universe is too dense, `W` grows by one and
//! everything is relabeled. This gives `O(log² n)` amortized label writes
//! — asymptotically worse than the L-Tree's `O(log n)` but with smaller
//! constants at modest sizes, which is exactly the trade-off experiment
//! X3 visualizes.
//!
//! The sorted label set is kept in a [`counted_btree::CountedBTree`] —
//! the same substrate the virtual L-Tree uses — so range counts and range
//! scans are `O(log n)`.

use counted_btree::CountedBTree;
use ltree_core::{
    BatchLabeling, Instrumented, LTreeError, LeafHandle, OrderedLabeling, OrderedLabelingMut,
    Result, SchemeStats,
};

#[derive(Debug, Clone)]
struct Item {
    label: u128,
    alive: bool,
}

/// Even-redistribution list labeling. See the [crate docs](crate).
pub struct ListLabeling {
    /// Universe is `[0, 2^bits)`.
    bits: u32,
    /// Density threshold base `τ ∈ (0.5, 1)`.
    tau: f64,
    tree: CountedBTree<u32>,
    items: Vec<Item>,
    stats: SchemeStats,
    /// Universe doublings (exposed for the experiments).
    grows: u64,
}

impl ListLabeling {
    /// Default density threshold.
    pub const DEFAULT_TAU: f64 = 0.75;

    /// A scheme with `τ = 0.75` and a small initial universe.
    pub fn new() -> Self {
        Self::with_config(16, Self::DEFAULT_TAU)
    }

    /// A scheme with a custom initial universe width and threshold.
    ///
    /// # Panics
    /// Panics unless `4 ≤ bits ≤ 120` and `0.5 < tau < 1.0`.
    pub fn with_config(bits: u32, tau: f64) -> Self {
        assert!(
            (4..=120).contains(&bits),
            "universe width must be in 4..=120"
        );
        assert!(tau > 0.5 && tau < 1.0, "tau must be in (0.5, 1)");
        ListLabeling {
            bits,
            tau,
            tree: CountedBTree::new(),
            items: Vec::new(),
            stats: SchemeStats::default(),
            grows: 0,
        }
    }

    /// How many times the universe doubled.
    pub fn universe_grows(&self) -> u64 {
        self.grows
    }

    /// Current universe width in bits.
    pub fn universe_bits(&self) -> u32 {
        self.bits
    }

    fn item(&self, h: LeafHandle) -> Result<&Item> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get(idx) {
            Some(item) if item.alive => Ok(item),
            _ => Err(LTreeError::UnknownHandle),
        }
    }

    fn universe(&self) -> u128 {
        1u128 << self.bits
    }

    /// Allowed occupancy of a dyadic range of size `2^i`: `(2τ)^i`,
    /// clamped to at least 1.
    fn capacity(&self, i: u32) -> u64 {
        let cap = (2.0 * self.tau).powi(i as i32);
        if cap >= u64::MAX as f64 {
            u64::MAX
        } else {
            (cap as u64).max(1)
        }
    }

    /// Spread `m` existing entries (plus leave room) evenly over
    /// `[base, base + size)`, writing labels back to the items.
    fn relabel_range(&mut self, base: u128, size: u128) {
        let entries = self.tree.drain_range(base, base.saturating_add(size));
        let m = entries.len() as u128;
        debug_assert!(m > 0);
        let step = size / (m + 1);
        debug_assert!(step >= 1, "caller guarantees room");
        let mut batch = Vec::with_capacity(entries.len());
        for (j, (_, idx)) in entries.into_iter().enumerate() {
            let label = base + (j as u128 + 1) * step;
            self.items[idx as usize].label = label;
            batch.push((label, idx));
        }
        self.stats.label_writes += m as u64;
        self.stats.relabel_events += 1;
        self.tree
            .extend_sorted(batch)
            .expect("even redistribution produces strictly increasing labels");
    }

    /// Double the universe and spread everything evenly.
    fn grow_universe(&mut self) {
        self.bits += 1;
        assert!(self.bits <= 124, "list-labeling universe exhausted u128");
        self.grows += 1;
        let size = self.universe();
        self.relabel_range(0, size);
    }

    /// Find room for a label strictly inside `(lo, hi)` — `lo`/`hi` are
    /// occupied bounds (or virtual sentinels). Returns `None` after a
    /// redistribution (the caller re-reads its neighbours and retries).
    fn make_label(&mut self, lo: Option<u128>, hi: Option<u128>) -> Option<u128> {
        let lo_v = lo.map(|l| l + 1).unwrap_or(0); // first free slot
        let hi_v = hi.unwrap_or(self.universe()); // exclusive
        if hi_v > lo_v {
            // Midpoint of the free slots [lo_v, hi_v).
            return Some(lo_v + (hi_v - lo_v) / 2);
        }
        // No room: find the smallest enclosing dyadic range around the
        // collision point that is under its density threshold. The new
        // entry will land there too, so require room for one more and a
        // usable integer step.
        let pivot = lo.or(hi).expect("collision implies a neighbour");
        let mut redistributed = false;
        for i in 1..=self.bits {
            let size = 1u128 << i;
            let base = pivot & !(size - 1);
            let count = self.tree.count_range(base, base + size) as u64;
            if count < self.capacity(i) && size / (count as u128 + 2) >= 1 {
                self.relabel_range(base, size);
                redistributed = true;
                break;
            }
        }
        if !redistributed {
            self.grow_universe();
        }
        None
    }

    fn insert_with_neighbours(
        &mut self,
        prev: Option<LeafHandle>,
        next: Option<LeafHandle>,
    ) -> Result<LeafHandle> {
        self.stats.inserts += 1;
        loop {
            let lo = match prev {
                Some(h) => Some(self.item(h)?.label),
                None => None,
            };
            let hi = match next {
                Some(h) => Some(self.item(h)?.label),
                None => None,
            };
            let Some(label) = self.make_label(lo, hi) else {
                // A redistribution happened; neighbour labels changed —
                // retry with the fresh values.
                self.stats.node_touches += 1;
                continue;
            };
            let idx = self.items.len() as u32;
            self.items.push(Item { label, alive: true });
            self.tree
                .insert(label, idx)
                .expect("midpoint label is unoccupied");
            self.stats.label_writes += 1;
            return Ok(LeafHandle(u64::from(idx)));
        }
    }
}

impl Default for ListLabeling {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderedLabeling for ListLabeling {
    fn name(&self) -> &'static str {
        "list-label"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        Ok(self.item(h)?.label)
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn live_len(&self) -> usize {
        self.tree.len()
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.tree.kth(0).map(|(_, &idx)| LeafHandle(u64::from(idx)))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        let label = self.item(h).ok()?.label;
        self.tree
            .successor(label + 1)
            .map(|(_, &idx)| LeafHandle(u64::from(idx)))
    }

    fn label_space_bits(&self) -> u32 {
        self.bits
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.items.capacity() * std::mem::size_of::<Item>()
            + self.tree.memory_bytes()
    }
}

impl OrderedLabelingMut for ListLabeling {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if !self.items.is_empty() {
            return Err(LTreeError::NotEmpty);
        }
        // Pick a universe with comfortable headroom.
        while (self.capacity(self.bits)) < (n as u64).saturating_mul(2) {
            self.bits += 1;
            assert!(self.bits <= 124);
        }
        let size = self.universe();
        let step = (size / (n as u128 + 1)).max(1);
        let mut out = Vec::with_capacity(n);
        let mut batch = Vec::with_capacity(n);
        for j in 0..n {
            let label = (j as u128 + 1) * step;
            self.items.push(Item { label, alive: true });
            batch.push((label, j as u32));
            out.push(LeafHandle(j as u64));
        }
        self.tree
            .extend_sorted(batch)
            .expect("bulk labels strictly increase");
        self.stats = SchemeStats::default();
        self.tree.reset_touches();
        Ok(out)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        let next = self.tree.kth(0).map(|(_, &idx)| LeafHandle(u64::from(idx)));
        self.insert_with_neighbours(None, next)
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let label = self.item(anchor)?.label;
        let next = self
            .tree
            .successor(label + 1)
            .map(|(_, &idx)| LeafHandle(u64::from(idx)));
        self.insert_with_neighbours(Some(anchor), next)
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let label = self.item(anchor)?.label;
        let prev = self
            .tree
            .predecessor(label)
            .map(|(_, &idx)| LeafHandle(u64::from(idx)));
        self.insert_with_neighbours(prev, Some(anchor))
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get_mut(idx) {
            Some(item) if item.alive => {
                item.alive = false;
                let label = item.label;
                self.tree.remove(label).expect("alive item is indexed");
                self.stats.deletes += 1;
                Ok(())
            }
            _ => Err(LTreeError::UnknownHandle),
        }
    }
}

/// Batches fall back to the default loop: redistribution is triggered
/// per midpoint collision, so a batch behaves like `k` singles (the
/// `O(log² n)` amortized bound the paper cites).
impl BatchLabeling for ListLabeling {}

impl Instrumented for ListLabeling {
    fn scheme_stats(&self) -> SchemeStats {
        let mut s = self.stats;
        s.node_touches += self.tree.touches();
        s
    }

    fn reset_scheme_stats(&mut self) {
        self.stats = SchemeStats::default();
        self.tree.reset_touches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_order(s: &ListLabeling, hs: &[LeafHandle]) {
        let labels: Vec<u128> = hs.iter().map(|&h| s.label_of(h).unwrap()).collect();
        assert!(
            labels.windows(2).all(|w| w[0] < w[1]),
            "order broken: {labels:?}"
        );
    }

    #[test]
    fn bulk_build_spreads_evenly() {
        let mut s = ListLabeling::new();
        let hs = s.bulk_build(10).unwrap();
        check_order(&s, &hs);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hotspot_insertions_redistribute_locally() {
        let mut s = ListLabeling::new();
        let hs = s.bulk_build(64).unwrap();
        let mut seq = vec![hs[31]];
        for _ in 0..500 {
            let anchor = *seq.last().unwrap();
            seq.push(s.insert_after(anchor).unwrap());
        }
        // Full order must hold across old and new items.
        let mut all = hs[..32].to_vec();
        all.extend(&seq[1..]);
        all.extend(&hs[32..]);
        check_order(&s, &all);
        assert!(
            s.scheme_stats().relabel_events > 0,
            "hotspot must trigger redistribution"
        );
    }

    #[test]
    fn interleaved_inserts_everywhere() {
        let mut s = ListLabeling::new();
        let mut order = s.bulk_build(4).unwrap();
        let mut x = 99u64;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % order.len();
            let h = s.insert_after(order[i]).unwrap();
            order.insert(i + 1, h);
        }
        check_order(&s, &order);
        assert_eq!(s.len(), 404);
    }

    #[test]
    fn delete_then_insert_reuses_space() {
        let mut s = ListLabeling::new();
        let hs = s.bulk_build(8).unwrap();
        s.delete(hs[3]).unwrap();
        assert_eq!(s.len(), 7);
        assert!(
            s.label_of(hs[3]).is_err(),
            "deleted handles are invalid here"
        );
        let h = s.insert_after(hs[2]).unwrap();
        assert!(s.label_of(hs[2]).unwrap() < s.label_of(h).unwrap());
        assert!(s.label_of(h).unwrap() < s.label_of(hs[4]).unwrap());
    }

    #[test]
    fn front_insertions() {
        let mut s = ListLabeling::new();
        let mut front = s.insert_first().unwrap();
        let mut all = vec![front];
        for _ in 0..100 {
            front = s.insert_first().unwrap();
            all.insert(0, front);
        }
        check_order(&s, &all);
    }

    #[test]
    fn amortized_cost_is_polylog() {
        let mut s = ListLabeling::new();
        let hs = s.bulk_build(2000).unwrap();
        s.reset_scheme_stats();
        let mut anchor = hs[1000];
        for _ in 0..2000 {
            anchor = s.insert_after(anchor).unwrap();
        }
        let w = s.scheme_stats().amortized_label_writes();
        // log2(4000)^2 ≈ 143; allow generous slack but far below O(n).
        assert!(
            w < 400.0,
            "amortized label writes should be polylog, got {w}"
        );
    }
}
