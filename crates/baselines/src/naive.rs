//! Consecutive-integer labeling (paper, Section 1 / Figure 1).
//!
//! Labels are exactly the document positions `0..n`. Every insertion
//! shifts the labels of everything to its right: `O(n)` label writes per
//! update — the behaviour the paper opens with ("relabeling of half the
//! nodes on average"). Deletions tombstone (like the L-Tree) so the
//! comparison stays apples-to-apples.

use ltree_core::{
    BatchLabeling, Instrumented, LTreeError, LeafHandle, OrderedLabeling, OrderedLabelingMut,
    Result, SchemeStats,
};

#[derive(Debug, Clone)]
struct Item {
    pos: usize,
    deleted: bool,
    alive: bool,
}

/// The naive sequential labeling scheme. See the [crate docs](crate).
#[derive(Debug, Default)]
pub struct NaiveLabeling {
    /// Document order: item indices (tombstones included).
    order: Vec<u32>,
    items: Vec<Item>,
    n_live: usize,
    stats: SchemeStats,
}

impl NaiveLabeling {
    /// An empty scheme.
    pub fn new() -> Self {
        Self::default()
    }

    fn item(&self, h: LeafHandle) -> Result<&Item> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get(idx) {
            Some(item) if item.alive => Ok(item),
            _ => Err(LTreeError::UnknownHandle),
        }
    }

    fn insert_at(&mut self, pos: usize) -> LeafHandle {
        let idx = self.items.len() as u32;
        self.items.push(Item {
            pos,
            deleted: false,
            alive: true,
        });
        self.order.insert(pos, idx);
        // Shift every item to the right: each is one label write.
        let shifted = self.order.len() - pos - 1;
        for &i in &self.order[pos + 1..] {
            self.items[i as usize].pos += 1;
        }
        self.n_live += 1;
        self.stats.inserts += 1;
        self.stats.label_writes += shifted as u64 + 1;
        self.stats.node_touches += shifted as u64;
        self.stats.relabel_events += u64::from(shifted > 0);
        LeafHandle(u64::from(idx))
    }
}

impl OrderedLabeling for NaiveLabeling {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        Ok(self.item(h)?.pos as u128)
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn live_len(&self) -> usize {
        self.n_live
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.order.first().map(|&idx| LeafHandle(u64::from(idx)))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        let pos = self.item(h).ok()?.pos;
        self.order
            .get(pos + 1)
            .map(|&idx| LeafHandle(u64::from(idx)))
    }

    fn label_space_bits(&self) -> u32 {
        usize::BITS - self.order.len().saturating_sub(1).leading_zeros()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.order.capacity() * std::mem::size_of::<u32>()
            + self.items.capacity() * std::mem::size_of::<Item>()
    }
}

impl OrderedLabelingMut for NaiveLabeling {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if !self.order.is_empty() {
            return Err(LTreeError::NotEmpty);
        }
        self.items = (0..n)
            .map(|pos| Item {
                pos,
                deleted: false,
                alive: true,
            })
            .collect();
        self.order = (0..n as u32).collect();
        self.n_live = n;
        self.stats = SchemeStats::default();
        Ok((0..n as u64).map(LeafHandle).collect())
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        Ok(self.insert_at(0))
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let pos = self.item(anchor)?.pos;
        Ok(self.insert_at(pos + 1))
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let pos = self.item(anchor)?.pos;
        Ok(self.insert_at(pos))
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get_mut(idx) {
            Some(item) if item.alive => {
                if item.deleted {
                    return Err(LTreeError::DeletedLeaf);
                }
                item.deleted = true;
                self.n_live -= 1;
                self.stats.deletes += 1;
                Ok(())
            }
            _ => Err(LTreeError::UnknownHandle),
        }
    }
}

/// Batches fall back to the default single-insert loop: the whole point
/// of this baseline is that every insert pays `O(n)`.
impl BatchLabeling for NaiveLabeling {}

impl Instrumented for NaiveLabeling {
    fn scheme_stats(&self) -> SchemeStats {
        self.stats
    }

    fn reset_scheme_stats(&mut self) {
        self.stats = SchemeStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(s: &NaiveLabeling, hs: &[LeafHandle]) -> Vec<u128> {
        hs.iter().map(|&h| s.label_of(h).unwrap()).collect()
    }

    #[test]
    fn bulk_is_sequential() {
        let mut s = NaiveLabeling::new();
        let hs = s.bulk_build(5).unwrap();
        assert_eq!(labels(&s, &hs), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.label_space_bits(), 3);
    }

    #[test]
    fn insert_shifts_right_neighbours() {
        let mut s = NaiveLabeling::new();
        let hs = s.bulk_build(4).unwrap();
        let mid = s.insert_after(hs[1]).unwrap();
        assert_eq!(s.label_of(mid).unwrap(), 2);
        assert_eq!(labels(&s, &hs), vec![0, 1, 3, 4]);
        // 2 shifted labels + 1 initial assignment.
        assert_eq!(s.scheme_stats().label_writes, 3);
    }

    #[test]
    fn insert_before_and_first() {
        let mut s = NaiveLabeling::new();
        let first = s.insert_first().unwrap();
        let before = s.insert_before(first).unwrap();
        assert_eq!(s.label_of(before).unwrap(), 0);
        assert_eq!(s.label_of(first).unwrap(), 1);
    }

    #[test]
    fn delete_is_tombstone() {
        let mut s = NaiveLabeling::new();
        let hs = s.bulk_build(3).unwrap();
        s.delete(hs[1]).unwrap();
        assert_eq!(s.live_len(), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.label_of(hs[1]).unwrap(), 1, "tombstones keep labels");
        assert!(s.delete(hs[1]).is_err());
    }

    #[test]
    fn average_shift_is_half_n() {
        // The paper's claim: "relabeling of half the nodes on average".
        let mut s = NaiveLabeling::new();
        let hs = s.bulk_build(1000).unwrap();
        s.reset_scheme_stats();
        // Insert at uniformly spread anchors.
        for i in (0..1000).step_by(10) {
            s.insert_after(hs[i]).unwrap();
        }
        let per_insert = s.scheme_stats().amortized_label_writes();
        assert!(
            per_insert > 300.0 && per_insert < 800.0,
            "expected ~n/2, got {per_insert}"
        );
    }
}
