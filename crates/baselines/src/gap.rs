//! Fixed-gap labeling (paper, Section 1: "one can leave gaps in between
//! successive labels to reduce the number of relabelings upon updates …
//! it is not clear how to assign the gaps").
//!
//! Labels start as multiples of a configurable `gap`. Insertion takes the
//! midpoint of the surrounding gap; when a gap is exhausted the *entire*
//! list is relabeled with fresh gaps (`O(n)`). Uniform workloads rarely
//! relabel; a hotspot exhausts its gap after ~`log₂ gap` insertions and
//! then pays `O(n)` again and again — exactly the failure mode the L-Tree
//! fixes by localizing the relabeled region.
//!
//! Items form a doubly-linked list so the scheme's own bookkeeping is
//! `O(1)` and the measured cost is purely about labels.

use ltree_core::{
    BatchLabeling, Instrumented, LTreeError, LeafHandle, OrderedLabeling, OrderedLabelingMut,
    Result, SchemeStats,
};

#[derive(Debug, Clone)]
struct Item {
    label: u128,
    prev: Option<u32>,
    next: Option<u32>,
    deleted: bool,
    alive: bool,
}

/// The fixed-gap labeling scheme. See the [crate docs](crate).
#[derive(Debug)]
pub struct GapLabeling {
    gap: u128,
    items: Vec<Item>,
    head: Option<u32>,
    tail: Option<u32>,
    len: usize,
    n_live: usize,
    stats: SchemeStats,
    /// Number of global relabel passes (exposed for the experiments).
    global_relabels: u64,
}

impl GapLabeling {
    /// Default gap used by the paper-era systems this models.
    pub const DEFAULT_GAP: u128 = 32;

    /// A scheme with the default gap.
    pub fn new() -> Self {
        Self::with_gap(Self::DEFAULT_GAP)
    }

    /// A scheme with a custom `gap ≥ 2`.
    ///
    /// # Panics
    /// Panics if `gap < 2` (no room for any midpoint).
    pub fn with_gap(gap: u128) -> Self {
        assert!(gap >= 2, "gap must be at least 2");
        GapLabeling {
            gap,
            items: Vec::new(),
            head: None,
            tail: None,
            len: 0,
            n_live: 0,
            stats: SchemeStats::default(),
            global_relabels: 0,
        }
    }

    /// How many times the entire list was relabeled.
    pub fn global_relabels(&self) -> u64 {
        self.global_relabels
    }

    fn item(&self, h: LeafHandle) -> Result<&Item> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get(idx) {
            Some(item) if item.alive => Ok(item),
            _ => Err(LTreeError::UnknownHandle),
        }
    }

    /// Relabel everything as multiples of `gap` (1-based).
    fn global_relabel(&mut self) {
        let mut cur = self.head;
        let mut label = self.gap;
        while let Some(i) = cur {
            self.items[i as usize].label = label;
            label += self.gap;
            cur = self.items[i as usize].next;
            self.stats.label_writes += 1;
            self.stats.node_touches += 1;
        }
        self.stats.relabel_events += 1;
        self.global_relabels += 1;
    }

    /// Insert a fresh item between `prev` and `next` (either may be None).
    fn insert_between(&mut self, prev: Option<u32>, next: Option<u32>) -> LeafHandle {
        let idx = self.items.len() as u32;
        self.items.push(Item {
            label: 0,
            prev,
            next,
            deleted: false,
            alive: true,
        });
        match prev {
            Some(p) => self.items[p as usize].next = Some(idx),
            None => self.head = Some(idx),
        }
        match next {
            Some(nx) => self.items[nx as usize].prev = Some(idx),
            None => self.tail = Some(idx),
        }
        self.len += 1;
        self.n_live += 1;
        self.stats.inserts += 1;

        if !self.assign_label(idx) {
            self.global_relabel();
            let ok = self.assign_label(idx);
            debug_assert!(ok, "a fresh global relabel always leaves room");
        }
        LeafHandle(u64::from(idx))
    }

    /// Try to give `idx` a label strictly between its neighbours.
    fn assign_label(&mut self, idx: u32) -> bool {
        let item = &self.items[idx as usize];
        let lo = item.prev.map(|p| self.items[p as usize].label);
        let hi = item.next.map(|n| self.items[n as usize].label);
        let label = match (lo, hi) {
            (None, None) => self.gap,
            (Some(l), None) => l.saturating_add(self.gap),
            (None, Some(h)) => {
                if h < 2 {
                    return false;
                }
                h / 2
            }
            (Some(l), Some(h)) => {
                if h - l < 2 {
                    return false;
                }
                l + (h - l) / 2
            }
        };
        self.items[idx as usize].label = label;
        self.stats.label_writes += 1;
        true
    }
}

impl Default for GapLabeling {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderedLabeling for GapLabeling {
    fn name(&self) -> &'static str {
        "gap"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        Ok(self.item(h)?.label)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn live_len(&self) -> usize {
        self.n_live
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.head.map(|i| LeafHandle(u64::from(i)))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        self.item(h).ok()?.next.map(|i| LeafHandle(u64::from(i)))
    }

    fn label_space_bits(&self) -> u32 {
        let max = self.tail.map(|t| self.items[t as usize].label).unwrap_or(0);
        128 - max.leading_zeros()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.items.capacity() * std::mem::size_of::<Item>()
    }
}

impl OrderedLabelingMut for GapLabeling {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if self.len != 0 {
            return Err(LTreeError::NotEmpty);
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let prev = if i == 0 { None } else { Some(i as u32 - 1) };
            let next = if i + 1 == n { None } else { Some(i as u32 + 1) };
            self.items.push(Item {
                label: (i as u128 + 1) * self.gap,
                prev,
                next,
                deleted: false,
                alive: true,
            });
            out.push(LeafHandle(i as u64));
        }
        if n > 0 {
            self.head = Some(0);
            self.tail = Some(n as u32 - 1);
        }
        self.len = n;
        self.n_live = n;
        self.stats = SchemeStats::default();
        Ok(out)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        Ok(self.insert_between(None, self.head))
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let idx = anchor.0 as u32;
        let next = self.item(anchor)?.next;
        Ok(self.insert_between(Some(idx), next))
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let idx = anchor.0 as u32;
        let prev = self.item(anchor)?.prev;
        Ok(self.insert_between(prev, Some(idx)))
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get_mut(idx) {
            Some(item) if item.alive => {
                if item.deleted {
                    return Err(LTreeError::DeletedLeaf);
                }
                item.deleted = true;
                self.n_live -= 1;
                self.stats.deletes += 1;
                Ok(())
            }
            _ => Err(LTreeError::UnknownHandle),
        }
    }
}

/// Batches fall back to the default loop; each insert still takes the
/// midpoint of its gap, so a batch drains the gap just like `k` singles.
impl BatchLabeling for GapLabeling {}

impl Instrumented for GapLabeling {
    fn scheme_stats(&self) -> SchemeStats {
        self.stats
    }

    fn reset_scheme_stats(&mut self) {
        self.stats = SchemeStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_is_consistent(s: &GapLabeling) {
        let mut cur = s.head;
        let mut last: Option<u128> = None;
        while let Some(i) = cur {
            let item = &s.items[i as usize];
            if let Some(prev) = last {
                assert!(prev < item.label, "labels must increase along the list");
            }
            last = Some(item.label);
            cur = item.next;
        }
    }

    #[test]
    fn bulk_leaves_gaps() {
        let mut s = GapLabeling::with_gap(10);
        let hs = s.bulk_build(3).unwrap();
        assert_eq!(s.label_of(hs[0]).unwrap(), 10);
        assert_eq!(s.label_of(hs[2]).unwrap(), 30);
        order_is_consistent(&s);
    }

    #[test]
    fn midpoint_insertion() {
        let mut s = GapLabeling::with_gap(10);
        let hs = s.bulk_build(2).unwrap();
        let mid = s.insert_after(hs[0]).unwrap();
        assert_eq!(s.label_of(mid).unwrap(), 15);
        assert_eq!(s.global_relabels(), 0);
        order_is_consistent(&s);
    }

    #[test]
    fn hotspot_forces_global_relabel() {
        let mut s = GapLabeling::with_gap(8);
        let hs = s.bulk_build(100).unwrap();
        let mut anchor = hs[50];
        for _ in 0..20 {
            anchor = s.insert_after(anchor).unwrap();
            order_is_consistent(&s);
        }
        assert!(
            s.global_relabels() > 0,
            "a hotspot must exhaust the fixed gap"
        );
        // Each global relabel writes all ~100+ labels.
        assert!(s.scheme_stats().label_writes > 100);
    }

    #[test]
    fn front_and_back_insertion() {
        let mut s = GapLabeling::new();
        let a = s.insert_first().unwrap();
        let b = s.insert_first().unwrap();
        let c = s.insert_after(a).unwrap();
        assert!(s.label_of(b).unwrap() < s.label_of(a).unwrap());
        assert!(s.label_of(a).unwrap() < s.label_of(c).unwrap());
        order_is_consistent(&s);
    }

    #[test]
    fn delete_tombstones() {
        let mut s = GapLabeling::new();
        let hs = s.bulk_build(4).unwrap();
        s.delete(hs[2]).unwrap();
        assert_eq!(s.live_len(), 3);
        assert!(s.label_of(hs[2]).is_ok());
        assert!(s.delete(hs[2]).is_err());
    }

    #[test]
    #[should_panic(expected = "gap must be at least 2")]
    fn tiny_gap_rejected() {
        let _ = GapLabeling::with_gap(1);
    }
}
