//! # `labeling-baselines` — the schemes the L-Tree paper argues against
//!
//! The introduction and related-work sections of the paper position the
//! L-Tree against three families of order-preserving labeling schemes.
//! This crate implements one representative of each, all behind the same
//! [`ltree_core::LabelingScheme`] trait so the benchmark harness can put
//! them side by side:
//!
//! * [`NaiveLabeling`] — consecutive integers, the scheme of Figure 1:
//!   "this leads to relabeling of half the nodes on average, even for a
//!   single node insertion" (`O(n)` per insert, minimal bits);
//! * [`GapLabeling`] — "leave gaps in between successive labels":
//!   midpoint insertion with a *global* relabel whenever a gap is
//!   exhausted — cheap until a hotspot kills it;
//! * [`ListLabeling`] — classic even-redistribution list labeling in the
//!   style of Itai–Konheim–Rodeh / Dietz–Sleator ([8, 9, 10] in the
//!   paper), the lineage the L-Tree generalizes: `O(log² n)` amortized
//!   relabelings in a fixed-size universe that doubles when exhausted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gap;
mod list_label;
mod naive;

pub use gap::GapLabeling;
pub use list_label::ListLabeling;
pub use naive::NaiveLabeling;
