//! # `labeling-baselines` — the schemes the L-Tree paper argues against
//!
//! The introduction and related-work sections of the paper position the
//! L-Tree against three families of order-preserving labeling schemes.
//! This crate implements one representative of each, all behind the
//! ordered-labeling trait family ([`ltree_core::OrderedLabeling`] /
//! [`ltree_core::OrderedLabelingMut`] / [`ltree_core::BatchLabeling`] /
//! [`ltree_core::Instrumented`]) so the benchmark harness can put them
//! side by side:
//!
//! * [`NaiveLabeling`] — consecutive integers, the scheme of Figure 1:
//!   "this leads to relabeling of half the nodes on average, even for a
//!   single node insertion" (`O(n)` per insert, minimal bits);
//! * [`GapLabeling`] — "leave gaps in between successive labels":
//!   midpoint insertion with a *global* relabel whenever a gap is
//!   exhausted — cheap until a hotspot kills it;
//! * [`ListLabeling`] — classic even-redistribution list labeling in the
//!   style of Itai–Konheim–Rodeh / Dietz–Sleator ([8, 9, 10] in the
//!   paper), the lineage the L-Tree generalizes: `O(log² n)` amortized
//!   relabelings in a fixed-size universe that doubles when exhausted.
//!
//! All three take the *default* loop fallbacks of
//! [`ltree_core::BatchLabeling`] — none has a batch fast-path, which is
//! exactly the asymmetry the batch experiments measure. Call
//! [`register`] to add them to a [`SchemeRegistry`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod gap;
mod list_label;
mod naive;

pub use gap::GapLabeling;
pub use list_label::ListLabeling;
pub use naive::NaiveLabeling;

use ltree_core::registry::{as_u32, SchemeRegistry};
use ltree_core::LTreeError;

/// Register the three baselines:
///
/// * `"naive"` — no arguments;
/// * `"gap"` — optional `(gap)` argument, e.g. `"gap(64)"`;
/// * `"list-label"` — optional `(bits)` or `(bits, tau)`, e.g.
///   `"list-label(16,0.8)"`.
pub fn register(reg: &mut SchemeRegistry) {
    reg.register(
        "naive",
        "consecutive integers (paper Fig. 1); no args",
        |_cfg, args| {
            if !args.is_empty() {
                return Err(LTreeError::InvalidSpec {
                    spec: "naive".into(),
                    reason: "the naive scheme takes no arguments",
                });
            }
            Ok(Box::new(NaiveLabeling::new()))
        },
    );

    reg.register(
        "gap",
        "fixed-gap midpoint labels; args: (gap)",
        |cfg, args| {
            let gap = match args {
                [] => cfg.gap,
                [g] => u128::from(as_u32("gap", *g)?),
                _ => {
                    return Err(LTreeError::InvalidSpec {
                        spec: "gap".into(),
                        reason: "expected at most one argument (gap)",
                    })
                }
            };
            if gap < 2 {
                return Err(LTreeError::InvalidSpec {
                    spec: "gap".into(),
                    reason: "gap must be at least 2",
                });
            }
            Ok(Box::new(GapLabeling::with_gap(gap)))
        },
    );

    reg.register(
        "list-label",
        "even-redistribution list labeling [8,9,10]; args: (bits) or (bits,tau)",
        |cfg, args| {
            let (bits, tau) = match args {
                [] => (cfg.list_bits, cfg.list_tau),
                [b] => (as_u32("list-label", *b)?, cfg.list_tau),
                [b, t] => (as_u32("list-label", *b)?, *t),
                _ => {
                    return Err(LTreeError::InvalidSpec {
                        spec: "list-label".into(),
                        reason: "expected at most (bits, tau)",
                    })
                }
            };
            if !(4..=120).contains(&bits) {
                return Err(LTreeError::InvalidSpec {
                    spec: "list-label".into(),
                    reason: "universe width must be in 4..=120",
                });
            }
            if !(tau > 0.5 && tau < 1.0) {
                return Err(LTreeError::InvalidSpec {
                    spec: "list-label".into(),
                    reason: "tau must be in (0.5, 1)",
                });
            }
            Ok(Box::new(ListLabeling::with_config(bits, tau)))
        },
    );
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use ltree_core::{OrderedLabeling, OrderedLabelingMut};

    #[test]
    fn all_baselines_build_by_name() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        for spec in [
            "naive",
            "gap",
            "gap(64)",
            "list-label",
            "list-label(20,0.8)",
        ] {
            let mut s = reg.build(spec).unwrap();
            let hs = s.bulk_build(10).unwrap();
            assert_eq!(hs.len(), 10, "{spec}");
            assert!(
                s.label_of(hs[0]).unwrap() < s.label_of(hs[9]).unwrap(),
                "{spec}"
            );
        }
    }

    #[test]
    fn bad_arguments_are_rejected() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        for spec in [
            "naive(1)",
            "gap(1)",
            "gap(2,3)",
            "list-label(2)",
            "list-label(16,0.4)",
        ] {
            assert!(
                matches!(reg.build(spec), Err(LTreeError::InvalidSpec { .. })),
                "{spec} must be rejected"
            );
        }
    }
}
