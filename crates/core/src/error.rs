//! Error types for the L-Tree crates.

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LTreeError>;

/// Errors produced by L-Tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LTreeError {
    /// The `(f, s)` pair violates the paper's requirements.
    InvalidParams {
        /// Offending `f`.
        f: u32,
        /// Offending `s`.
        s: u32,
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// The label space `B^H` no longer fits in a `u128`. This only happens
    /// for astronomically deep trees (the tuner never produces them) and is
    /// reported *before* any mutation takes place.
    LabelOverflow {
        /// Height at which `B^height` overflowed.
        height: u8,
    },
    /// A handle did not refer to a live node of this tree (wrong tree,
    /// freed by `compact`, or internal node where a leaf was expected).
    UnknownHandle,
    /// The referenced leaf exists but was already tombstoned.
    DeletedLeaf,
    /// The operation requires a non-empty tree.
    EmptyTree,
    /// `bulk_build` was invoked on a scheme that already holds items.
    NotEmpty,
    /// The requested batch size was zero.
    EmptyBatch,
    /// A scheme name was not found in the [`crate::registry::SchemeRegistry`].
    UnknownScheme {
        /// The name that failed to resolve.
        name: String,
    },
    /// A scheme spec string ("name(args)") could not be parsed or its
    /// arguments were rejected by the factory.
    InvalidSpec {
        /// The offending spec.
        spec: String,
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// A `key=value` option (or bare flag) in a scheme spec was unknown,
    /// duplicated, or carried a malformed value. Unlike
    /// [`InvalidSpec`](Self::InvalidSpec) this names the offending key,
    /// so `remote(host:port,conns=nope)` points at `conns`, not at the
    /// whole spec.
    InvalidOption {
        /// The spec (or scheme name) the option appeared in.
        spec: String,
        /// The offending option key (or the raw argument, when it could
        /// not even be split into `key=value`).
        key: String,
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// A scheme wrapped in the `checked(...)` contract auditor violated
    /// the ordered-labeling contract: the auditor's shadow model and the
    /// scheme disagreed after a mutation (label order, cursor agreement,
    /// `len`/`live_len` consistency, splice-vs-loop equivalence, or
    /// stats monotonicity). This reports a **bug in the scheme**, not a
    /// caller error — the wrapped scheme's state is still whatever the
    /// mutation left behind.
    ContractViolation {
        /// Name of the offending scheme (`name()` of the wrapped inner).
        scheme: String,
        /// Which contract clause broke, with the observed evidence.
        detail: String,
    },
    /// A durable label store (write-ahead log or snapshot) failed:
    /// genuine on-disk corruption (a *complete* record whose checksum
    /// does not verify, a bad snapshot magic/version), an I/O failure
    /// while appending/fsyncing, or an inconsistency detected during
    /// recovery replay. A *torn* final record (crash mid-append) is not
    /// an error — recovery truncates it and keeps the acknowledged
    /// prefix.
    Durability {
        /// What failed, in storage terms.
        context: String,
    },
    /// A remote label store failed in transport or protocol terms:
    /// connect/read/write errors, a protocol-version mismatch, a
    /// malformed frame, or a peer error with no local structured form.
    /// Scheme-level failures (unknown handle, empty batch, …) travel the
    /// wire as their own variants and never degrade into this one.
    Remote {
        /// What failed, in transport terms.
        context: String,
    },
}

impl std::fmt::Display for LTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LTreeError::InvalidParams { f: pf, s, reason } => {
                write!(f, "invalid L-Tree parameters (f={pf}, s={s}): {reason}")
            }
            LTreeError::LabelOverflow { height } => write!(
                f,
                "label space (f+1)^{height} exceeds u128; choose smaller f or rebuild with larger s"
            ),
            LTreeError::UnknownHandle => {
                write!(f, "handle does not refer to a live leaf of this structure")
            }
            LTreeError::DeletedLeaf => write!(f, "leaf was already deleted"),
            LTreeError::EmptyTree => write!(f, "operation requires a non-empty structure"),
            LTreeError::NotEmpty => write!(f, "bulk_build requires an empty structure"),
            LTreeError::EmptyBatch => write!(f, "batch insertion of zero leaves is not meaningful"),
            LTreeError::UnknownScheme { name } => {
                write!(
                    f,
                    "no labeling scheme registered under the name '{name}' \
                     (spec grammar: `ltree_core::registry` module docs, or \
                     SchemeRegistry::summaries() for the registered names)"
                )
            }
            LTreeError::InvalidSpec { spec, reason } => {
                write!(
                    f,
                    "invalid scheme spec '{spec}': {reason} \
                     (spec grammar: `ltree_core::registry` module docs \
                     and the spec-grammar table in ARCHITECTURE.md)"
                )
            }
            LTreeError::InvalidOption { spec, key, reason } => {
                write!(
                    f,
                    "invalid option '{key}' in scheme spec '{spec}': {reason} \
                     (option grammar: the spec-grammar table in ARCHITECTURE.md \
                     and the `ltree_core::registry` module docs)"
                )
            }
            LTreeError::ContractViolation { scheme, detail } => {
                write!(
                    f,
                    "ordered-labeling contract violated by scheme '{scheme}': {detail} \
                     (reported by the checked(...) auditor; see `ltree-checked`)"
                )
            }
            LTreeError::Durability { context } => {
                write!(f, "durable label store: {context}")
            }
            LTreeError::Remote { context } => {
                write!(f, "remote label store: {context}")
            }
        }
    }
}

impl std::error::Error for LTreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LTreeError::InvalidParams {
            f: 5,
            s: 2,
            reason: "nope",
        };
        assert!(e.to_string().contains("f=5"));
        assert!(e.to_string().contains("nope"));
        let e = LTreeError::LabelOverflow { height: 200 };
        assert!(e.to_string().contains("200"));
    }

    #[test]
    fn option_errors_name_the_key_and_the_grammar_table() {
        let e = LTreeError::InvalidOption {
            spec: "remote".into(),
            key: "conns".into(),
            reason: "expected a positive integer",
        };
        let msg = e.to_string();
        assert!(msg.contains("'conns'"), "{msg}");
        assert!(msg.contains("ARCHITECTURE.md"), "{msg}");
        assert!(msg.contains("positive integer"), "{msg}");
    }
}
