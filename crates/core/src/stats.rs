//! Cost accounting.
//!
//! The paper measures maintenance cost "in terms of the number of nodes
//! accessed for searching or relabeling" (Section 3.1). [`Stats`] counts
//! exactly those events so the benchmark harness can compare the measured
//! amortized cost with the paper's closed-form bound.

/// Running counters for one [`crate::LTree`]. All counters are cumulative
/// since the last [`reset`](Stats::reset).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of single-leaf insert operations.
    pub inserts: u64,
    /// Number of batch insert operations (any `k ≥ 1` counts once).
    pub batch_inserts: u64,
    /// Total leaves inserted (singles + batch members).
    pub leaves_inserted: u64,
    /// Number of tombstoned leaves.
    pub deletes: u64,
    /// Ancestor count-update steps — the paper's "cost H to update L(a)
    /// for every ancestor a" term.
    pub count_updates: u64,
    /// Number of relabel events (suffix relabels + subtree relabels).
    pub relabel_events: u64,
    /// Total nodes whose `num` was rewritten. This is the paper's headline
    /// "number of relabelings" quantity.
    pub nodes_relabeled: u64,
    /// Subset of `nodes_relabeled` that were leaves — i.e. labels visible
    /// to the document layer. This is the unit that is comparable across
    /// labeling schemes (baselines have no interior nodes).
    pub leaf_label_writes: u64,
    /// Largest number of nodes relabeled by any single operation.
    pub max_relabeled_in_one_op: u64,
    /// Number of node splits (excluding root rebuilds).
    pub splits: u64,
    /// Replacement subtrees created by splits (`s` per split in the
    /// single-insert regime).
    pub pieces_created: u64,
    /// Root rebuilds (tree height grew).
    pub root_rebuilds: u64,
    /// Times a split cascaded to the parent because a *batch* insertion
    /// overflowed its fanout. Provably zero for single-leaf workloads
    /// (paper, Proposition 3) — asserted by the test-suite.
    pub cascade_splits: u64,
    /// Total nodes visited for structural navigation (walks up to the
    /// root, leaf collection during splits, subtree rebuilds).
    pub nodes_visited: u64,
}

impl Stats {
    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        *self = Stats::default();
    }

    /// Total inserted-leaf count, never zero (to make ratios safe).
    fn denom(&self) -> f64 {
        (self.leaves_inserted.max(1)) as f64
    }

    /// Amortized relabeled-nodes per inserted leaf.
    pub fn amortized_relabels(&self) -> f64 {
        self.nodes_relabeled as f64 / self.denom()
    }

    /// Amortized total cost per inserted leaf in the paper's unit
    /// (node accesses: count updates + visits + relabels).
    pub fn amortized_cost(&self) -> f64 {
        (self.count_updates + self.nodes_visited + self.nodes_relabeled) as f64 / self.denom()
    }

    /// Fold another stats block into this one (used by sharded drivers).
    pub fn merge(&mut self, other: &Stats) {
        self.inserts += other.inserts;
        self.batch_inserts += other.batch_inserts;
        self.leaves_inserted += other.leaves_inserted;
        self.deletes += other.deletes;
        self.count_updates += other.count_updates;
        self.relabel_events += other.relabel_events;
        self.nodes_relabeled += other.nodes_relabeled;
        self.leaf_label_writes += other.leaf_label_writes;
        self.max_relabeled_in_one_op = self
            .max_relabeled_in_one_op
            .max(other.max_relabeled_in_one_op);
        self.splits += other.splits;
        self.pieces_created += other.pieces_created;
        self.root_rebuilds += other.root_rebuilds;
        self.cascade_splits += other.cascade_splits;
        self.nodes_visited += other.nodes_visited;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_is_safe_on_zero() {
        let s = Stats::default();
        assert_eq!(s.amortized_relabels(), 0.0);
        assert_eq!(s.amortized_cost(), 0.0);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = Stats {
            inserts: 1,
            nodes_relabeled: 10,
            max_relabeled_in_one_op: 4,
            ..Default::default()
        };
        let b = Stats {
            inserts: 2,
            nodes_relabeled: 5,
            max_relabeled_in_one_op: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.inserts, 3);
        assert_eq!(a.nodes_relabeled, 15);
        assert_eq!(a.max_relabeled_in_one_op, 9);
    }

    #[test]
    fn amortized_cost_counts_all_components() {
        let s = Stats {
            leaves_inserted: 2,
            count_updates: 4,
            nodes_visited: 2,
            nodes_relabeled: 6,
            ..Default::default()
        };
        assert_eq!(s.amortized_cost(), 6.0);
    }
}
