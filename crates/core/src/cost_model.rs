//! The paper's closed-form cost model (Section 3), used by the tuner
//! (`ltree-tuning`) and by the experiment harness to overlay predicted
//! curves over measured ones.
//!
//! All formulas take real-valued `f`, `s` (the optimization of Section 3.2
//! treats them as continuous and rounds afterwards) and `n`, the current
//! document size in tags.

/// Amortized insertion cost (paper, Section 3.1):
///
/// ```text
/// cost(f, s, n) = (1 + 2 f / (s − 1)) · log n / log (f/s)  +  f
/// ```
///
/// composed of the ancestor count updates (`H = log n / log(f/s)`), the
/// per-level amortized split charge (`2 f / (s − 1)` each), and the sibling
/// relabel bound `f`.
pub fn amortized_cost(f: f64, s: f64, n: f64) -> f64 {
    debug_assert!(f > s && s > 1.0 && n >= 2.0);
    let h = n.ln() / (f / s).ln();
    (1.0 + 2.0 * f / (s - 1.0)) * h + f
}

/// Bits per label (paper, Section 3.1):
///
/// ```text
/// bits(f, s, n) = log₂(f + 1) · log₂ n / log₂(f/s)
/// ```
///
/// i.e. `log₂ N` with `N ≤ (f+1)^H`.
pub fn label_bits(f: f64, s: f64, n: f64) -> f64 {
    debug_assert!(f > s && s > 1.0 && n >= 2.0);
    (f + 1.0).log2() * n.log2() / (f / s).log2()
}

/// Amortized per-leaf cost of inserting a batch of `k` leaves at one point
/// (paper, Section 4.1):
///
/// ```text
/// cost(f, s, n, k) ≤ log n / (k·log(f/s)) + f/k
///                    + (2 f / (s−1)) · (log(n/k) / log(f/s) + 1)
/// ```
///
/// The first two terms are the one-off path/sibling costs shared by the
/// `k` leaves; the last is the split charge over the `H − h₀ + 1` ancestor
/// levels that can still split after the batch lands (`h₀ ≈ log_a k`).
pub fn batch_amortized_cost(f: f64, s: f64, n: f64, k: f64) -> f64 {
    debug_assert!(k >= 1.0);
    let la = (f / s).ln();
    let shared = n.ln() / (k * la) + f / k;
    let levels = ((n / k).max(1.0)).ln() / la + 1.0;
    shared + (2.0 * f / (s - 1.0)) * levels
}

/// Integer-height label width: the bits actually needed by an L-Tree
/// holding `n` leaves, `⌈log₂((f+1)^H)⌉` with `H` the minimal bulk-load
/// height. The continuous [`label_bits`] can undershoot this by up to one
/// level's worth of bits because real heights are integers — budget
/// checks should use the max of the two.
pub fn label_bits_integer(params: &crate::Params, n: u64) -> u32 {
    let h = params.height_for(n.max(1));
    match params.interval(h) {
        Ok(space) => 128 - (space - 1).leading_zeros(),
        Err(_) => 128,
    }
}

/// Query-side cost of one label comparison (paper, Section 3.2, "Minimize
/// the Overall Cost"): free (1 unit) while a label fits a machine word,
/// proportional to the word count beyond that.
pub fn query_cost(bits: f64, word_bits: u32) -> f64 {
    let w = f64::from(word_bits);
    if bits <= w {
        1.0
    } else {
        (bits / w).ceil()
    }
}

/// Workload-weighted overall cost (paper, Section 3.2): `q` label
/// comparisons per update on average.
pub fn overall_cost(f: f64, s: f64, n: f64, queries_per_update: f64, word_bits: u32) -> f64 {
    amortized_cost(f, s, n) + queries_per_update * query_cost(label_bits(f, s, n), word_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_logarithmic_in_n() {
        let c1 = amortized_cost(8.0, 2.0, 1e3);
        let c2 = amortized_cost(8.0, 2.0, 1e6);
        // Doubling the exponent doubles the log-term, far from 1000x.
        assert!(
            c2 < 2.5 * c1,
            "cost must grow logarithmically: {c1} vs {c2}"
        );
        assert!(c2 > c1);
    }

    #[test]
    fn bits_formula_matches_hand_computation() {
        // f = 4, s = 2: bits = log2(5)/log2(2) * log2(n) = 2.3219 * log2 n.
        let b = label_bits(4.0, 2.0, 1024.0);
        assert!((b - 2.321928 * 10.0).abs() < 1e-3);
    }

    #[test]
    fn batch_cost_decreases_with_k() {
        let n = 1e5;
        let c1 = batch_amortized_cost(4.0, 2.0, n, 1.0);
        let c16 = batch_amortized_cost(4.0, 2.0, n, 16.0);
        let c256 = batch_amortized_cost(4.0, 2.0, n, 256.0);
        assert!(
            c1 > c16 && c16 > c256,
            "larger batches amortize better: {c1} {c16} {c256}"
        );
        // "the decrease of the cost is roughly logarithmic in the increase
        // of insertion size": halving is much slower than 1/k.
        assert!(c256 > c1 / 256.0 * 4.0);
    }

    #[test]
    fn query_cost_word_boundary() {
        assert_eq!(query_cost(32.0, 64), 1.0);
        assert_eq!(query_cost(64.0, 64), 1.0);
        assert_eq!(query_cost(65.0, 64), 2.0);
        assert_eq!(query_cost(200.0, 64), 4.0);
    }

    #[test]
    fn overall_cost_prefers_narrow_labels_when_query_heavy() {
        let n = 1e6;
        // (f=32, s=16) has wide labels (arity 2, base 33); (8,2) is narrow.
        let update_heavy_wide = overall_cost(32.0, 16.0, n, 0.1, 64);
        let update_heavy_narrow = overall_cost(8.0, 2.0, n, 0.1, 64);
        let query_heavy_wide = overall_cost(32.0, 16.0, n, 1e4, 64);
        let query_heavy_narrow = overall_cost(8.0, 2.0, n, 1e4, 64);
        // Wide labels pay multi-word comparisons under heavy querying.
        assert!(query_heavy_narrow < query_heavy_wide);
        let _ = (update_heavy_wide, update_heavy_narrow);
    }
}
