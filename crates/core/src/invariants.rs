//! Full structural checker for the materialized L-Tree.
//!
//! Verifies, after any sequence of operations, every property the paper
//! states or that the implementation relies on:
//!
//! 1. the root is an interior node with `num = 0` and no parent;
//! 2. heights decrease by exactly one along every edge and all leaves sit
//!    at height 0 / depth `H` (paper, Proposition 2.3);
//! 3. parent links agree with child lists;
//! 4. fanout never exceeds `f` (paper, Proposition 2.2 — the transient
//!    `f`-fanout state is resolved within the same operation);
//! 5. the **global labeling invariant**
//!    `num(child_i) = num(parent) + i · B^{h(child)}` — the property that
//!    makes the virtual L-Tree (Section 4.2) possible;
//! 6. leaf counts are consistent and strictly below the split threshold
//!    `s · a^h` (the criterion is restored by the end of each operation);
//! 7. the stored totals (`len`, `live_len`) match the structure;
//! 8. no arena slots leak (every live slot is reachable from the root);
//! 9. every label fits the label space `[0, B^H)`.

use crate::arena::NodeId;
use crate::node::NodeData;
use crate::tree::LTree;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantError(pub String);

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L-Tree invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantError {}

macro_rules! ensure {
    ($cond:expr, $($arg:tt)*) => {
        if !$cond {
            return Err(InvariantError(format!($($arg)*)));
        }
    };
}

/// Run every check described in the [module docs](self).
pub fn check(tree: &LTree) -> Result<(), InvariantError> {
    let arena = tree.arena_ref();
    let params = tree.params();
    let root = tree.root_id();

    let root_node = arena
        .get(root)
        .ok_or_else(|| InvariantError("root id is stale".into()))?;
    ensure!(!root_node.is_leaf(), "root must be an interior node");
    ensure!(root_node.parent.is_none(), "root must have no parent");
    ensure!(
        root_node.num == 0,
        "root must be numbered 0, found {}",
        root_node.num
    );
    ensure!(
        root_node.height == tree.height(),
        "stored height {} != root height {}",
        tree.height(),
        root_node.height
    );

    let mut reachable = 0usize;
    let mut leaf_total = 0u64;
    let mut live_total = 0u64;
    let mut last_label: Option<u128> = None;
    let space = params
        .interval(tree.height())
        .map_err(|_| InvariantError("label space B^H overflows u128".into()))?;

    // DFS in document order.
    let mut stack: Vec<NodeId> = vec![root];
    while let Some(id) = stack.pop() {
        reachable += 1;
        let node = arena
            .get(id)
            .ok_or_else(|| InvariantError("dangling child pointer".into()))?;
        ensure!(
            node.num < space,
            "num {} outside label space {}",
            node.num,
            space
        );
        match &node.data {
            NodeData::Leaf { deleted } => {
                ensure!(node.height == 0, "leaf at height {}", node.height);
                leaf_total += 1;
                if !deleted {
                    live_total += 1;
                }
                if let Some(prev) = last_label {
                    ensure!(
                        prev < node.num,
                        "leaf labels not strictly increasing: {} then {}",
                        prev,
                        node.num
                    );
                }
                last_label = Some(node.num);
            }
            NodeData::Internal {
                children,
                leaf_count,
            } => {
                if id != root {
                    ensure!(
                        !children.is_empty(),
                        "non-root interior node with no children"
                    );
                }
                ensure!(
                    children.len() <= params.f() as usize,
                    "fanout {} exceeds f = {} at height {}",
                    children.len(),
                    params.f(),
                    node.height
                );
                let threshold = params.split_threshold(node.height);
                ensure!(
                    *leaf_count < threshold,
                    "leaf count {} at height {} reached split threshold {}",
                    leaf_count,
                    node.height,
                    threshold
                );
                let interval = params
                    .interval(node.height - 1)
                    .map_err(|_| InvariantError("child interval overflows u128".into()))?;
                let mut sum = 0u64;
                for (i, &c) in children.iter().enumerate() {
                    let child = arena
                        .get(c)
                        .ok_or_else(|| InvariantError("dangling child pointer".into()))?;
                    ensure!(child.parent == Some(id), "child parent link is wrong");
                    ensure!(
                        child.height + 1 == node.height,
                        "child height {} under parent height {}",
                        child.height,
                        node.height
                    );
                    let expect = node.num + i as u128 * interval;
                    ensure!(
                        child.num == expect,
                        "labeling invariant broken: child {} of node num={} h={} has num {}, expected {}",
                        i,
                        node.num,
                        node.height,
                        child.num,
                        expect
                    );
                    sum += child.leaf_count();
                }
                ensure!(
                    sum == *leaf_count,
                    "leaf_count {} != sum of children {}",
                    leaf_count,
                    sum
                );
                for &c in children.iter().rev() {
                    stack.push(c);
                }
            }
        }
    }

    ensure!(
        leaf_total == tree.leaf_total(),
        "stored leaf total {} != found {}",
        tree.leaf_total(),
        leaf_total
    );
    ensure!(
        live_total == tree.live_total(),
        "stored live total {} != found {}",
        tree.live_total(),
        live_total
    );
    ensure!(
        reachable == arena.len(),
        "arena leak: {} slots live but only {} reachable",
        arena.len(),
        reachable
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::params::Params;
    use crate::tree::LTree;

    #[test]
    fn fresh_trees_pass() {
        for n in [0usize, 1, 5, 17, 64] {
            let (tree, _) = LTree::bulk_load(Params::example(), n).unwrap();
            tree.check_invariants().unwrap();
        }
    }

    #[test]
    fn error_message_is_descriptive() {
        let e = super::InvariantError("fanout 9 exceeds f = 4 at height 2".into());
        assert!(e.to_string().contains("fanout 9"));
    }
}
