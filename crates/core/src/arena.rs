//! A generational slab arena for L-Tree nodes.
//!
//! Splits free and recreate interior nodes constantly, so node identity is
//! index-based with a generation counter: a stale [`NodeId`] (freed slot or
//! recycled slot) is detected rather than silently aliased. Leaves are only
//! freed by [`crate::LTree::compact`], so the public [`crate::LeafId`]
//! handles stay valid across arbitrary updates.

use std::num::NonZeroU32;

use crate::node::Node;

/// Identifier of an arena slot: a 1-based index plus a generation stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    idx: NonZeroU32,
    gen: u32,
}

impl NodeId {
    /// Pack into a `u64` (used by the `LabelingScheme` handle type).
    #[inline]
    pub fn to_u64(self) -> u64 {
        (u64::from(self.idx.get()) << 32) | u64::from(self.gen)
    }

    /// Unpack from a `u64`; `None` if the index half is zero.
    #[inline]
    pub fn from_u64(v: u64) -> Option<Self> {
        let idx = NonZeroU32::new((v >> 32) as u32)?;
        Some(NodeId { idx, gen: v as u32 })
    }

    #[inline]
    fn slot(self) -> usize {
        (self.idx.get() - 1) as usize
    }
}

enum Slot {
    Occupied { gen: u32, node: Node },
    Free { gen: u32, next: Option<u32> },
}

/// The arena. Nodes are allocated/freed in O(1); lookups validate the
/// generation stamp.
pub struct Arena {
    slots: Vec<Slot>,
    free_head: Option<u32>,
    len: usize,
}

impl Arena {
    /// Empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Empty arena with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocate a node, reusing a free slot when available.
    pub fn alloc(&mut self, node: Node) -> NodeId {
        self.len += 1;
        if let Some(free) = self.free_head {
            let slot = &mut self.slots[free as usize];
            match *slot {
                Slot::Free { gen, next } => {
                    self.free_head = next;
                    let gen = gen.wrapping_add(1);
                    *slot = Slot::Occupied { gen, node };
                    NodeId {
                        idx: NonZeroU32::new(free + 1).expect("index+1 is nonzero"),
                        gen,
                    }
                }
                Slot::Occupied { .. } => unreachable!("free list points at an occupied slot"),
            }
        } else {
            self.slots.push(Slot::Occupied { gen: 0, node });
            let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 indices");
            NodeId {
                idx: NonZeroU32::new(idx).expect("len is nonzero after push"),
                gen: 0,
            }
        }
    }

    /// Free a node. Panics on stale ids (internal misuse is a bug).
    pub fn free(&mut self, id: NodeId) {
        let slot = &mut self.slots[id.slot()];
        match slot {
            Slot::Occupied { gen, .. } if *gen == id.gen => {
                *slot = Slot::Free {
                    gen: id.gen,
                    next: self.free_head,
                };
                self.free_head = Some(id.slot() as u32);
                self.len -= 1;
            }
            _ => panic!("freeing a stale NodeId"),
        }
    }

    /// Borrow a node if the id is current.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&Node> {
        match self.slots.get(id.slot()) {
            Some(Slot::Occupied { gen, node }) if *gen == id.gen => Some(node),
            _ => None,
        }
    }

    /// Mutably borrow a node if the id is current.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        match self.slots.get_mut(id.slot()) {
            Some(Slot::Occupied { gen, node }) if *gen == id.gen => Some(node),
            _ => None,
        }
    }

    /// Borrow without an Option; panics on stale ids. For internal use on
    /// ids the tree knows to be live.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        self.get(id).expect("stale NodeId in tree structure")
    }

    /// Mutable twin of [`node`](Arena::node).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.get_mut(id).expect("stale NodeId in tree structure")
    }

    /// Iterate over `(NodeId, &Node)` for all live nodes (slot order).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { gen, node } => Some((
                NodeId {
                    idx: NonZeroU32::new(i as u32 + 1).expect("index+1 nonzero"),
                    gen: *gen,
                },
                node,
            )),
            Slot::Free { .. } => None,
        })
    }

    /// Approximate heap footprint in bytes (used by the space experiment).
    pub fn memory_bytes(&self) -> usize {
        let slot_size = std::mem::size_of::<Slot>();
        let mut total = self.slots.capacity() * slot_size;
        for (_, node) in self.iter() {
            total += node.children_capacity() * std::mem::size_of::<NodeId>();
        }
        total
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeData};

    fn leaf() -> Node {
        Node::new_leaf(None)
    }

    #[test]
    fn alloc_get_free_cycle() {
        let mut a = Arena::new();
        let id = a.alloc(leaf());
        assert!(a.get(id).is_some());
        assert_eq!(a.len(), 1);
        a.free(id);
        assert!(a.get(id).is_none(), "freed id must be stale");
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn recycled_slot_gets_new_generation() {
        let mut a = Arena::new();
        let id1 = a.alloc(leaf());
        a.free(id1);
        let id2 = a.alloc(leaf());
        assert_ne!(id1, id2, "generation must differ");
        assert!(a.get(id1).is_none());
        assert!(a.get(id2).is_some());
    }

    #[test]
    fn u64_roundtrip() {
        let mut a = Arena::new();
        let id = a.alloc(leaf());
        assert_eq!(NodeId::from_u64(id.to_u64()), Some(id));
        assert_eq!(NodeId::from_u64(0), None);
    }

    #[test]
    fn iter_skips_free_slots() {
        let mut a = Arena::new();
        let id1 = a.alloc(leaf());
        let _id2 = a.alloc(leaf());
        a.free(id1);
        assert_eq!(a.iter().count(), 1);
    }

    #[test]
    fn internal_nodes_counted_in_memory() {
        let mut a = Arena::new();
        let l = a.alloc(leaf());
        let mut internal = Node::new_internal(None, 1);
        if let NodeData::Internal {
            children,
            leaf_count,
        } = &mut internal.data
        {
            children.push(l);
            *leaf_count = 1;
        }
        a.alloc(internal);
        assert!(a.memory_bytes() > 0);
    }
}
