//! Pure label-layout arithmetic shared by the materialized and the
//! *virtual* L-Tree.
//!
//! Section 4.2 of the paper observes that the whole L-Tree structure is
//! implicit in the base-`(f+1)` digits of the leaf labels. The functions in
//! this module are the single source of truth for how labels are assigned
//! when subtrees are (re)built, so the virtual implementation
//! (`ltree-virtual`) reproduces the materialized labels bit-for-bit — a
//! property the integration test-suite checks exhaustively.

use crate::error::Result;
use crate::params::Params;

/// Ceiling division for `u64`, with `ceil_div(0, b) == 0`.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Sizes of the `pieces` near-equal shares of `total` leaves: the first
/// `total % pieces` shares get one extra leaf. A split replaces an overfull
/// node with pieces of these sizes, in order.
///
/// For the paper's single-insert regime `total = s · a^h` and
/// `pieces = s`, so every share is exactly `a^h` — a complete tree.
pub fn even_split(total: u64, pieces: u64) -> Vec<u64> {
    debug_assert!(pieces > 0 && total >= pieces);
    let base = total / pieces;
    let extra = total % pieces;
    (0..pieces).map(|q| base + u64::from(q < extra)).collect()
}

/// Label offset (relative to the subtree's own number) of the `r`-th leaf
/// in a *leftmost-complete* `a`-ary subtree of height `h`: the base-`a`
/// digits of `r` spread over base-`B` positions,
/// `Σ_j ((r / a^j) mod a) · B^j`.
///
/// This is exactly what rebuilding a subtree and then relabeling it with
/// the paper's `num(v) = num(u) + i · B^{h(v)}` rule produces.
pub fn complete_offset(r: u64, height: u8, params: &Params) -> Result<u128> {
    let a = u64::from(params.arity());
    let base = params.base();
    let mut offset: u128 = 0;
    let mut rem = r;
    let mut weight: u128 = 1;
    for level in 0..height {
        let digit = rem % a;
        rem /= a;
        offset += u128::from(digit) * weight;
        if level + 1 < height {
            weight = weight
                .checked_mul(base)
                .ok_or(crate::LTreeError::LabelOverflow { height })?;
        }
    }
    debug_assert_eq!(rem, 0, "r must be below a^height");
    Ok(offset)
}

/// All leaf offsets of a leftmost-complete `a`-ary subtree of height `h`
/// holding `count` leaves, in order.
pub fn complete_offsets(count: u64, height: u8, params: &Params) -> Result<Vec<u128>> {
    (0..count)
        .map(|r| complete_offset(r, height, params))
        .collect()
}

/// Result of planning a root rebuild: the new tree height and the label of
/// every leaf, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootRebuild {
    /// Height of the tree after the rebuild.
    pub new_height: u8,
    /// Number of height-`old_height` pieces the leaves were split into.
    pub pieces: u64,
    /// Number of `a`-ary grouping levels added above the pieces.
    pub grouping_levels: u8,
}

impl RootRebuild {
    /// Plan the rebuild that replaces an overfull root (paper, Algorithm 1
    /// lines 18–20, generalized to batch insertions): the `total` leaves
    /// are split into `m = ceil(total / a^H)` near-equal pieces of height
    /// `H = old_height`; while more than `f` pieces remain they are grouped
    /// `a` at a time under new parents; a fresh root is put on top.
    ///
    /// For a single-leaf insertion `total = s · a^H`, so `m = s ≤ f` and
    /// the result is the paper's "new root with the s top-level nodes as
    /// children".
    pub fn plan(params: &Params, total: u64, old_height: u8) -> RootRebuild {
        debug_assert!(total > 0);
        let cap = params.subtree_capacity(old_height);
        let pieces = ceil_div(total, cap);
        let a = u64::from(params.arity());
        let mut m = pieces;
        let mut grouping_levels: u8 = 0;
        while m > u64::from(params.f()) {
            m = ceil_div(m, a);
            grouping_levels += 1;
        }
        RootRebuild {
            new_height: old_height + grouping_levels + 1,
            pieces,
            grouping_levels,
        }
    }

    /// Label of piece `q` (relative to the new root, i.e. absolute since
    /// the root is numbered 0).
    pub fn piece_num(&self, params: &Params, old_height: u8, q: u64) -> Result<u128> {
        let a = u64::from(params.arity());
        let base = params.base();
        let mut num: u128 = 0;
        // Positions inside the grouping levels: base-a digits of q.
        let mut rem = q;
        for j in 0..self.grouping_levels {
            let digit = rem % a;
            rem /= a;
            let weight = base
                .checked_pow(u32::from(old_height) + u32::from(j))
                .ok_or(crate::LTreeError::LabelOverflow {
                    height: self.new_height,
                })?;
            num += u128::from(digit) * weight;
        }
        // Root-child index: whatever remains (may exceed a, bounded by f).
        let weight = base.checked_pow(u32::from(self.new_height) - 1).ok_or(
            crate::LTreeError::LabelOverflow {
                height: self.new_height,
            },
        )?;
        num += u128::from(rem) * weight;
        Ok(num)
    }

    /// Labels for all `total` leaves after the rebuild, in order.
    pub fn leaf_labels(&self, params: &Params, total: u64, old_height: u8) -> Result<Vec<u128>> {
        let sizes = even_split(total, self.pieces);
        let mut out = Vec::with_capacity(total as usize);
        for (q, &size) in sizes.iter().enumerate() {
            let piece_base = self.piece_num(params, old_height, q as u64)?;
            for r in 0..size {
                out.push(piece_base + complete_offset(r, old_height, params)?);
            }
        }
        Ok(out)
    }
}

/// Labels produced by bulk loading `n` leaves (paper, Section 2.2): a
/// leftmost-complete `a`-ary tree of minimal height.
pub fn bulk_load_labels(params: &Params, n: u64) -> Result<(u8, Vec<u128>)> {
    let height = params.height_for(n);
    let labels = complete_offsets(n, height, params)?;
    Ok((height, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p42() -> Params {
        Params::new(4, 2).unwrap()
    }

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(0, 3), 0);
        assert_eq!(ceil_div(1, 3), 1);
        assert_eq!(ceil_div(3, 3), 1);
        assert_eq!(ceil_div(4, 3), 2);
    }

    #[test]
    fn even_split_shares() {
        assert_eq!(even_split(8, 2), vec![4, 4]);
        assert_eq!(even_split(9, 2), vec![5, 4]);
        assert_eq!(even_split(10, 4), vec![3, 3, 2, 2]);
    }

    #[test]
    fn complete_offsets_match_figure2_bulk_load() {
        // f=4, s=2 (base 5, arity 2), 8 leaves, height 3:
        // base-2 digits of 0..8 spread over base-5 positions.
        let p = p42();
        let (h, labels) = bulk_load_labels(&p, 8).unwrap();
        assert_eq!(h, 3);
        assert_eq!(labels, vec![0, 1, 5, 6, 25, 26, 30, 31]);
    }

    #[test]
    fn complete_offsets_partial_tree() {
        let p = p42();
        // 3 leaves need height 2; leftmost-complete: 0, 1, 5.
        let (h, labels) = bulk_load_labels(&p, 3).unwrap();
        assert_eq!(h, 2);
        assert_eq!(labels, vec![0, 1, 5]);
    }

    #[test]
    fn root_rebuild_single_insert_case() {
        // total = s * a^H = 2 * 8 = 16, H = 3: the paper's exact case:
        // s = 2 pieces, no grouping, new root at height 4.
        let p = p42();
        let plan = RootRebuild::plan(&p, 16, 3);
        assert_eq!(plan.pieces, 2);
        assert_eq!(plan.grouping_levels, 0);
        assert_eq!(plan.new_height, 4);
        let labels = plan.leaf_labels(&p, 16, 3).unwrap();
        assert_eq!(labels.len(), 16);
        // First piece at 0, second piece at B^3 = 125.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[8], 125);
        assert!(labels.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn root_rebuild_grouping_when_many_pieces() {
        // Force > f pieces: total = 100 leaves over height 1 (cap a = 2):
        // 50 pieces > f = 4 -> grouped by 2 until <= 4: 50 -> 25 -> 13 -> 7 -> 4.
        let p = p42();
        let plan = RootRebuild::plan(&p, 100, 1);
        assert_eq!(plan.pieces, 50);
        assert_eq!(plan.grouping_levels, 4);
        assert_eq!(plan.new_height, 6);
        let labels = plan.leaf_labels(&p, 100, 1).unwrap();
        assert_eq!(labels.len(), 100);
        assert!(
            labels.windows(2).all(|w| w[0] < w[1]),
            "labels strictly increasing"
        );
        // Every label fits the new label space.
        let space = p.interval(plan.new_height).unwrap();
        assert!(labels.iter().all(|&l| l < space));
    }

    #[test]
    fn complete_offset_rejects_out_of_range_in_debug() {
        let p = p42();
        // r = 7 < 2^3: fine.
        assert!(complete_offset(7, 3, &p).is_ok());
    }
}
