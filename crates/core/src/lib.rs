//! # `ltree-core` — the L-Tree dynamic labeling structure
//!
//! This crate is a faithful implementation of the **L-Tree** from
//! *"L-Tree: a Dynamic Labeling Structure for Ordered XML Data"*
//! (Chen, Mihaila, Bordawekar, Padmanabhan — EDBT 2004 Workshops).
//!
//! The L-Tree solves the *order maintenance* problem for the tag list of an
//! ordered (XML) document: every begin tag, end tag (and, if desired, text
//! section) is attached to a leaf of an ordered, balanced tree, and every
//! leaf carries an integer label such that document order coincides with
//! label order. The structure supports:
//!
//! * **`O(log n)` amortized relabeling cost per insertion** — when a region
//!   of the document becomes dense, only a logarithmically-chargeable
//!   neighbourhood is relabeled (a *split*, Section 2.3 of the paper);
//! * **`O(log n)` bits per label** — labels never exceed `(f+1)^H` where
//!   `H` is the tree height (Section 3.1);
//! * **tunable trade-offs** via the two shape parameters `f` and `s`
//!   (Section 3.2; see the companion crate `ltree-tuning`);
//! * **batch (subtree) insertion** with amortized cost that decreases
//!   roughly logarithmically in the batch size (Section 4.1);
//! * **constant-time label lookup** — the label is stored on the leaf.
//!
//! ## Quick start
//!
//! ```
//! use ltree_core::{LTree, Params};
//!
//! // f = 4, s = 2: splits produce 2 half-full binary subtrees.
//! let params = Params::new(4, 2).unwrap();
//! let (mut tree, leaves) = LTree::bulk_load(params, 8).unwrap();
//!
//! // Labels are strictly increasing in document order.
//! let labels: Vec<u128> = leaves.iter().map(|&l| tree.label(l).unwrap().get()).collect();
//! assert!(labels.windows(2).all(|w| w[0] < w[1]));
//!
//! // Insert a new item right after the third one; order is preserved.
//! let new_leaf = tree.insert_after(leaves[2]).unwrap();
//! assert!(tree.label(leaves[2]).unwrap() < tree.label(new_leaf).unwrap());
//! assert!(tree.label(new_leaf).unwrap() < tree.label(leaves[3]).unwrap());
//! tree.check_invariants().unwrap();
//! ```
//!
//! ## Crate layout
//!
//! * [`params`] — the `(f, s)` shape parameters and derived quantities;
//! * [`label`] — the `Label` type (a `u128` with base-`(f+1)` structure);
//! * [`tree`] — the materialized [`LTree`] itself;
//! * [`layout`] — pure label-layout helpers shared with the *virtual*
//!   L-Tree (`ltree-virtual`), which re-derives the structure from labels;
//! * [`scheme`] — the composable ordered-labeling trait family
//!   ([`OrderedLabeling`] / [`OrderedLabelingMut`] / [`BatchLabeling`] /
//!   [`Instrumented`], bundled as the object-safe [`DynScheme`] with the
//!   [`LabelingScheme`] alias) implemented by the L-Tree, the virtual
//!   L-Tree and the baseline schemes, so that the benchmark harness can
//!   compare them on equal footing;
//! * [`registry`] — named scheme construction
//!   ([`registry::SchemeRegistry`]): experiments and examples build any
//!   scheme from a spec string like `"ltree(4,2)"`;
//! * [`probe`] — call-level probes: [`CallCounter`] counts trait-method
//!   traffic so bulk paths can prove they issue fewer write calls;
//! * [`metrics`] — passive metric snapshots ([`Metric`],
//!   [`HistogramSnapshot`] with bounded-error quantiles) returned by
//!   [`Instrumented::metrics`]; the live recording side is `ltree-obs`;
//! * [`cost_model`] — the closed-form cost/bit formulas of Section 3;
//! * [`invariants`] — a full structural checker used pervasively in tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod cost_model;
pub mod error;
pub mod invariants;
pub mod label;
pub mod layout;
pub mod metrics;
pub mod node;
pub mod order;
pub mod params;
pub mod probe;
pub mod registry;
pub mod rng;
pub mod scheme;
pub mod snapshot;
pub mod stats;
pub mod tree;

pub use error::{LTreeError, Result};
pub use label::Label;
pub use metrics::{HistogramSnapshot, Metric, MetricValue};
pub use order::OrderedList;
pub use params::Params;
pub use probe::{CallCounter, CallCounts};
pub use registry::{SchemeConfig, SchemeRegistry};
pub use scheme::{
    BatchLabeling, Cursor, DynScheme, Instrumented, LabelingScheme, LeafHandle, OrderedLabeling,
    OrderedLabelingMut, SchemeStats, Splice, SpliceBuilder, SpliceResult,
};
pub use stats::Stats;
pub use tree::{LTree, LeafId};
