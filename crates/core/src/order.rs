//! [`OrderedList<T, S>`] — the order-maintenance problem as a container.
//!
//! The paper frames the L-Tree around XML tags, but the underlying
//! machinery solves the classic *ordered list maintenance* problem of
//! Dietz/Sleator ([8, 9] in the paper): keep a list under insertions such
//! that "which of x, y comes first?" is O(1). This module packages any
//! [`LabelingScheme`] as a value container with that API, which is the
//! form a downstream (non-XML) user would adopt.
//!
//! ```
//! use ltree_core::order::OrderedList;
//! use ltree_core::{LTree, Params};
//!
//! let mut list = OrderedList::new(LTree::new(Params::new(4, 2).unwrap()));
//! let a = list.push_back("alpha").unwrap();
//! let c = list.push_back("gamma").unwrap();
//! let b = list.insert_after(a, "beta").unwrap();
//! assert!(list.cmp(a, b).unwrap().is_lt());
//! assert!(list.cmp(b, c).unwrap().is_lt());
//! let items: Vec<&&str> = list.iter().map(|(_, v)| v).collect();
//! assert_eq!(items, [&"alpha", &"beta", &"gamma"]);
//! ```

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::error::{LTreeError, Result};
use crate::scheme::{LabelingScheme, LeafHandle};

/// Identifier of one list item; stable across relabelings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItemId(LeafHandle);

/// An ordered list of values over a labeling scheme. See the
/// [module docs](self).
pub struct OrderedList<T, S: LabelingScheme> {
    scheme: S,
    values: HashMap<u64, T>,
}

impl<T, S: LabelingScheme> OrderedList<T, S> {
    /// Wrap an empty scheme.
    ///
    /// # Panics
    /// Panics if the scheme already holds items (a fresh scheme is part
    /// of the contract).
    pub fn new(scheme: S) -> Self {
        assert!(scheme.is_empty(), "OrderedList requires a fresh scheme");
        OrderedList {
            scheme,
            values: HashMap::new(),
        }
    }

    /// Bulk load values in order (cheaper than repeated appends).
    pub fn bulk_load(mut scheme: S, values: Vec<T>) -> Result<(Self, Vec<ItemId>)> {
        let handles = scheme.bulk_build(values.len())?;
        let mut map = HashMap::with_capacity(values.len());
        let ids: Vec<ItemId> = handles.iter().map(|&h| ItemId(h)).collect();
        for (h, v) in handles.into_iter().zip(values) {
            map.insert(h.0, v);
        }
        Ok((
            OrderedList {
                scheme,
                values: map,
            },
            ids,
        ))
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the list holds no items.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying scheme (stats, label space, …).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Append a value at the end.
    pub fn push_back(&mut self, value: T) -> Result<ItemId> {
        let handle = match self.last() {
            Some(last) => self.scheme.insert_after(last.0)?,
            None => self.scheme.insert_first()?,
        };
        self.values.insert(handle.0, value);
        Ok(ItemId(handle))
    }

    /// Prepend a value at the front.
    pub fn push_front(&mut self, value: T) -> Result<ItemId> {
        let handle = self.scheme.insert_first()?;
        self.values.insert(handle.0, value);
        Ok(ItemId(handle))
    }

    /// Insert a value right after `anchor`.
    pub fn insert_after(&mut self, anchor: ItemId, value: T) -> Result<ItemId> {
        self.check_live(anchor)?;
        let handle = self.scheme.insert_after(anchor.0)?;
        self.values.insert(handle.0, value);
        Ok(ItemId(handle))
    }

    /// Insert a value right before `anchor`.
    pub fn insert_before(&mut self, anchor: ItemId, value: T) -> Result<ItemId> {
        self.check_live(anchor)?;
        let handle = self.scheme.insert_before(anchor.0)?;
        self.values.insert(handle.0, value);
        Ok(ItemId(handle))
    }

    /// Insert several values right after `anchor`, as one batch
    /// (paper §4.1 semantics — cheaper than repeated singles). An empty
    /// batch is a no-op, unlike the scheme-level
    /// [`BatchLabeling::insert_many_after`](crate::BatchLabeling::insert_many_after)
    /// which rejects `k = 0`.
    pub fn insert_many_after(&mut self, anchor: ItemId, values: Vec<T>) -> Result<Vec<ItemId>> {
        self.check_live(anchor)?;
        if values.is_empty() {
            return Ok(Vec::new());
        }
        let handles = self.scheme.insert_many_after(anchor.0, values.len())?;
        let ids: Vec<ItemId> = handles.iter().map(|&h| ItemId(h)).collect();
        for (h, v) in handles.into_iter().zip(values) {
            self.values.insert(h.0, v);
        }
        Ok(ids)
    }

    /// Remove an item, returning its value. The scheme-side slot is
    /// tombstoned (or physically removed, scheme-dependent).
    pub fn remove(&mut self, id: ItemId) -> Result<T> {
        let value = self
            .values
            .remove(&id.0 .0)
            .ok_or(LTreeError::UnknownHandle)?;
        self.scheme.delete(id.0)?;
        Ok(value)
    }

    /// Borrow the value of a live item.
    pub fn get(&self, id: ItemId) -> Option<&T> {
        self.values.get(&id.0 .0)
    }

    /// Mutably borrow the value of a live item.
    pub fn get_mut(&mut self, id: ItemId) -> Option<&mut T> {
        self.values.get_mut(&id.0 .0)
    }

    /// The item's current order label (may change on any mutation).
    pub fn label(&self, id: ItemId) -> Result<u128> {
        self.check_live(id)?;
        self.scheme.label_of(id.0)
    }

    /// Compare two items in list order — two label reads, O(1).
    pub fn cmp(&self, a: ItemId, b: ItemId) -> Result<Ordering> {
        Ok(self.label(a)?.cmp(&self.label(b)?))
    }

    /// First live item.
    pub fn first(&self) -> Option<ItemId> {
        self.ordered_live().next()
    }

    /// Last live item. `O(n)` cursor walk (the scheme only exposes a
    /// forward successor), still allocation-free.
    pub fn last(&self) -> Option<ItemId> {
        self.ordered_live().last()
    }

    /// Iterate `(id, &value)` in list order — a streaming walk over the
    /// scheme's [`crate::Cursor`], no intermediate `Vec`.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &T)> {
        self.ordered_live().map(|id| (id, &self.values[&id.0 .0]))
    }

    fn ordered_live(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.scheme
            .cursor()
            .filter(|h| self.values.contains_key(&h.0))
            .map(ItemId)
    }

    fn check_live(&self, id: ItemId) -> Result<()> {
        if self.values.contains_key(&id.0 .0) {
            Ok(())
        } else {
            Err(LTreeError::UnknownHandle)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Instrumented;
    use crate::{LTree, Params};

    fn list() -> OrderedList<String, LTree> {
        OrderedList::new(LTree::new(Params::new(4, 2).unwrap()))
    }

    #[test]
    fn push_and_iterate() {
        let mut l = list();
        l.push_back("b".into()).unwrap();
        l.push_front("a".into()).unwrap();
        l.push_back("c".into()).unwrap();
        let got: Vec<&String> = l.iter().map(|(_, v)| v).collect();
        assert_eq!(got, ["a", "b", "c"]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn insert_relative_and_compare() {
        let mut l = list();
        let a = l.push_back("a".into()).unwrap();
        let c = l.push_back("c".into()).unwrap();
        let b = l.insert_before(c, "b".into()).unwrap();
        assert!(l.cmp(a, b).unwrap().is_lt());
        assert!(l.cmp(b, c).unwrap().is_lt());
        assert!(l.cmp(c, a).unwrap().is_gt());
        assert!(l.cmp(b, b).unwrap().is_eq());
    }

    #[test]
    fn remove_returns_value_and_invalidates() {
        let mut l = list();
        let a = l.push_back("x".into()).unwrap();
        assert_eq!(l.remove(a).unwrap(), "x");
        assert!(l.get(a).is_none());
        assert!(l.remove(a).is_err());
        assert!(l.label(a).is_err());
        assert!(l.is_empty());
    }

    #[test]
    fn empty_batch_insert_is_a_noop() {
        let mut l = list();
        let a = l.push_back("a".into()).unwrap();
        let ids = l.insert_many_after(a, Vec::new()).unwrap();
        assert!(ids.is_empty());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn batch_insert_keeps_order() {
        let mut l: OrderedList<i32, LTree> =
            OrderedList::new(LTree::new(Params::new(4, 2).unwrap()));
        let a = l.push_back(0).unwrap();
        let z = l.push_back(99).unwrap();
        let ids = l.insert_many_after(a, vec![1, 2, 3]).unwrap();
        let got: Vec<i32> = l.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, [0, 1, 2, 3, 99]);
        assert!(l.cmp(ids[2], z).unwrap().is_lt());
    }

    #[test]
    fn bulk_load_preserves_order() {
        let scheme = LTree::new(Params::new(8, 2).unwrap());
        let (l, ids) = OrderedList::bulk_load(scheme, (0..100).collect::<Vec<i32>>()).unwrap();
        assert_eq!(l.len(), 100);
        for w in ids.windows(2) {
            assert!(l.cmp(w[0], w[1]).unwrap().is_lt());
        }
        assert_eq!(*l.get(ids[42]).unwrap(), 42);
    }

    #[test]
    fn heavy_editing_session() {
        let mut l = list();
        let mut cursor = l.push_back("line0".into()).unwrap();
        for i in 1..500 {
            cursor = l.insert_after(cursor, format!("line{i}")).unwrap();
            if i % 7 == 0 {
                let before = l.insert_before(cursor, format!("note{i}")).unwrap();
                l.remove(before).unwrap();
            }
        }
        assert_eq!(l.len(), 500);
        let got: Vec<&String> = l.iter().map(|(_, v)| v).collect();
        assert_eq!(got[0], "line0");
        assert_eq!(got[499], "line499");
        l.scheme().scheme_stats();
    }

    #[test]
    fn works_over_other_schemes() {
        // Same contract over the virtual tree's trait sibling — here the
        // naive baseline, which exercises a physically different layout.
        let mut l: OrderedList<u8, crate::LTree> =
            OrderedList::new(LTree::new(Params::new(16, 4).unwrap()));
        let a = l.push_back(1).unwrap();
        l.insert_after(a, 2).unwrap();
        assert_eq!(l.iter().map(|(_, v)| *v).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    #[should_panic(expected = "fresh scheme")]
    fn rejects_non_empty_scheme() {
        let (tree, _) = LTree::bulk_load(Params::new(4, 2).unwrap(), 4).unwrap();
        let _ = OrderedList::<u8, _>::new(tree);
    }
}
