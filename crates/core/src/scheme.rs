//! The composable ordered-labeling trait family.
//!
//! The paper compares the L-Tree against the labeling alternatives of its
//! introduction (sequential labels, gapped labels) and of related work
//! (classic list labeling [8, 9, 10]). The common contract — an *order
//! maintenance structure with integer labels* — used to be one monolithic
//! `LabelingScheme` trait; it is now split along the paper's own
//! read/write asymmetry into four composable traits:
//!
//! * [`OrderedLabeling`] — the **read side**: label lookup, order
//!   comparison, label-space width, and a zero-allocation streaming
//!   [`Cursor`] over the handles in list order (ancestry/order queries
//!   are the hot path; reads are always cheap);
//! * [`OrderedLabelingMut`] — the **write side**: bulk build plus the
//!   single-item insert/delete operations whose amortized relabeling
//!   cost is the quantity the paper measures;
//! * [`BatchLabeling`] — typed **batch splices** ([`Splice`]): insert
//!   `k` items after an anchor (paper, Section 4.1) or delete a
//!   contiguous run, with native fast-paths in the L-Tree variants and a
//!   loop fallback for the baselines;
//! * [`Instrumented`] — the [`SchemeStats`] cost counters, in the
//!   paper's unit of "nodes accessed for searching or relabeling".
//!
//! [`DynScheme`] bundles all four into one object-safe supertrait
//! (blanket-implemented), so heterogeneous collections use
//! `Box<dyn DynScheme>`; the [`LabelingScheme`] alias keeps the familiar
//! name for generic bounds. Schemes are usually constructed by name
//! through the [`crate::registry::SchemeRegistry`].
//!
//! The labeling contract itself is unchanged: labels are `u128`s; at any
//! point in time the label order of live items equals their list order;
//! labels may change arbitrarily during *any* mutation (that is the cost
//! being studied), but reads are always cheap.

use std::cmp::Ordering;

use crate::error::{LTreeError, Result};

/// An opaque, scheme-specific handle to one list item. Handles are stable
/// across relabelings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafHandle(pub u64);

/// Scheme-agnostic cost counters, in the paper's unit of "nodes accessed
/// for searching or relabeling".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Items inserted since the last reset.
    pub inserts: u64,
    /// Items deleted since the last reset.
    pub deletes: u64,
    /// Item labels written (initial assignment + relabelings).
    pub label_writes: u64,
    /// All maintenance node/entry accesses, including interior bookkeeping.
    pub node_touches: u64,
    /// Number of relabeling events (each may write many labels).
    pub relabel_events: u64,
}

impl SchemeStats {
    /// Amortized label writes per inserted item.
    pub fn amortized_label_writes(&self) -> f64 {
        self.label_writes as f64 / (self.inserts.max(1)) as f64
    }

    /// Amortized total maintenance cost per inserted item.
    pub fn amortized_cost(&self) -> f64 {
        (self.label_writes + self.node_touches) as f64 / (self.inserts.max(1)) as f64
    }

    /// True when no counter of `self` is smaller than in `earlier` — the
    /// monotonicity half of the [`Instrumented`] contract.
    pub fn dominates(&self, earlier: &SchemeStats) -> bool {
        self.inserts >= earlier.inserts
            && self.deletes >= earlier.deletes
            && self.label_writes >= earlier.label_writes
            && self.node_touches >= earlier.node_touches
            && self.relabel_events >= earlier.relabel_events
    }
}

// ----------------------------------------------------------------------
// Read side
// ----------------------------------------------------------------------

/// The read side of an ordered labeling scheme: label lookup, order
/// comparison and streaming iteration. See the [module docs](self).
///
/// The one invariant every implementation upholds: at any point in
/// time, the label order of live items equals their list order.
///
/// ```
/// use ltree_core::{LTree, OrderedLabeling, OrderedLabelingMut, Params};
///
/// let mut tree = LTree::new(Params::new(4, 2).unwrap());
/// let handles = tree.bulk_build(8).unwrap();
/// // Reads: labels strictly increase along list order …
/// assert!(tree.label_of(handles[2]).unwrap() < tree.label_of(handles[3]).unwrap());
/// // … and the zero-allocation cursor streams the whole list in order.
/// let walked: Vec<_> = tree.cursor().collect();
/// assert_eq!(walked, handles);
/// ```
pub trait OrderedLabeling {
    /// Short scheme name for tables ("ltree", "naive", …).
    fn name(&self) -> &'static str;

    /// Current label of an item.
    fn label_of(&self, h: LeafHandle) -> Result<u128>;

    /// Total items tracked (tombstones included, where applicable).
    fn len(&self) -> usize;

    /// Items not deleted.
    fn live_len(&self) -> usize;

    /// True when no items are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First handle in list order (tombstones included where the scheme
    /// keeps them), or `None` when empty.
    fn first_in_order(&self) -> Option<LeafHandle>;

    /// Successor of `h` in list order, or `None` at the end (or for a
    /// handle the scheme no longer tracks).
    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle>;

    /// Bits needed to encode any label the scheme may currently hand out.
    fn label_space_bits(&self) -> u32;

    /// Approximate heap usage in bytes.
    fn memory_bytes(&self) -> usize;

    /// Compare two items in list order — two label reads, `O(1)`.
    fn compare(&self, a: LeafHandle, b: LeafHandle) -> Result<Ordering> {
        Ok(self.label_of(a)?.cmp(&self.label_of(b)?))
    }

    /// A zero-allocation streaming cursor over all handles in list order
    /// (tombstones included where the scheme keeps them). Replaces the
    /// old `handles_in_order() -> Vec` API: `O(1)` space, and callers
    /// that stop early pay only for what they consume.
    fn cursor(&self) -> Cursor<'_, Self>
    where
        Self: Sized,
    {
        Cursor::new(self)
    }
}

/// Streaming iterator over a scheme's handles in list order. Holds only a
/// borrow of the scheme and the next handle — no allocation, regardless
/// of scheme size. Obtain one via [`OrderedLabeling::cursor`] (sized
/// schemes) or [`Cursor::new`] (also works on `&dyn` objects).
pub struct Cursor<'a, S: OrderedLabeling + ?Sized> {
    scheme: &'a S,
    next: Option<LeafHandle>,
}

impl<'a, S: OrderedLabeling + ?Sized> Cursor<'a, S> {
    /// A cursor positioned at the start of the list.
    pub fn new(scheme: &'a S) -> Self {
        Cursor {
            next: scheme.first_in_order(),
            scheme,
        }
    }

    /// A cursor that starts at `at` (inclusive). `at` must be a handle
    /// the scheme tracks; the cursor ends immediately otherwise.
    pub fn starting_at(scheme: &'a S, at: LeafHandle) -> Self {
        let next = scheme.label_of(at).is_ok().then_some(at);
        Cursor { next, scheme }
    }

    /// The handle the next `next()` call will yield, without advancing.
    pub fn peek(&self) -> Option<LeafHandle> {
        self.next
    }
}

impl<S: OrderedLabeling + ?Sized> Iterator for Cursor<'_, S> {
    type Item = LeafHandle;

    fn next(&mut self) -> Option<LeafHandle> {
        let out = self.next?;
        self.next = self.scheme.next_in_order(out);
        Some(out)
    }
}

// ----------------------------------------------------------------------
// Write side
// ----------------------------------------------------------------------

/// The write side of an ordered labeling scheme: the single-item updates
/// whose amortized relabeling cost the paper measures.
///
/// Handles stay stable across relabelings, so callers hold on to them
/// while labels shift underneath:
///
/// ```
/// use ltree_core::{DynScheme, LTree, OrderedLabeling, OrderedLabelingMut, Params};
///
/// let mut tree: Box<dyn DynScheme> = Box::new(LTree::new(Params::new(4, 2).unwrap()));
/// let handles = tree.bulk_build(4).unwrap();
/// let mid = tree.insert_after(handles[1]).unwrap();
/// assert!(tree.label_of(handles[1]).unwrap() < tree.label_of(mid).unwrap());
/// assert!(tree.label_of(mid).unwrap() < tree.label_of(handles[2]).unwrap());
/// tree.delete(mid).unwrap();
/// assert_eq!(tree.live_len(), 4);
/// ```
pub trait OrderedLabelingMut: OrderedLabeling {
    /// Load `n` items into an empty scheme; returns handles in list order.
    /// Fails with [`crate::LTreeError::NotEmpty`] if items already exist.
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>>;

    /// Insert a new first item (must work on an empty scheme).
    fn insert_first(&mut self) -> Result<LeafHandle>;

    /// Insert an item immediately after `anchor`.
    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle>;

    /// Insert an item immediately before `anchor`.
    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle>;

    /// Delete an item. Whether this tombstones or physically removes is
    /// scheme-specific; either way it must not disturb the order of the
    /// remaining items.
    fn delete(&mut self, h: LeafHandle) -> Result<()>;
}

// ----------------------------------------------------------------------
// Batch side
// ----------------------------------------------------------------------

/// A typed batch operation over a contiguous stretch of the list.
///
/// ```
/// use ltree_core::{BatchLabeling, LTree, OrderedLabelingMut, Params, Splice};
///
/// let mut tree = LTree::new(Params::new(4, 2).unwrap());
/// let handles = tree.bulk_build(4).unwrap();
/// let inserted = tree
///     .splice(Splice::InsertAfter { anchor: handles[0], count: 3 })
///     .unwrap()
///     .into_inserted();
/// assert_eq!(inserted.len(), 3);
/// let deleted = tree
///     .splice(Splice::DeleteRun { first: inserted[0], count: 2 })
///     .unwrap()
///     .deleted();
/// assert_eq!(deleted, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Splice {
    /// Insert `count` consecutive fresh items immediately after `anchor`
    /// (paper, Section 4.1 — subtree insertion).
    InsertAfter {
        /// The live item the batch lands after.
        anchor: LeafHandle,
        /// Number of items to insert (`>= 1`).
        count: usize,
    },
    /// Delete the run of up to `count` live items starting at `first`
    /// (inclusive), following list order and skipping tombstones.
    DeleteRun {
        /// First item of the run; must be tracked by the scheme.
        first: LeafHandle,
        /// Maximum number of live items to delete.
        count: usize,
    },
}

/// What a [`Splice`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpliceResult {
    /// Handles of the freshly inserted items, in list order.
    Inserted(Vec<LeafHandle>),
    /// Number of items actually deleted (the run may hit the list end).
    Deleted(usize),
}

impl SpliceResult {
    /// The inserted handles (empty for a delete splice).
    pub fn into_inserted(self) -> Vec<LeafHandle> {
        match self {
            SpliceResult::Inserted(v) => v,
            SpliceResult::Deleted(_) => Vec::new(),
        }
    }

    /// Number of deleted items (zero for an insert splice).
    pub fn deleted(&self) -> usize {
        match self {
            SpliceResult::Inserted(_) => 0,
            SpliceResult::Deleted(n) => *n,
        }
    }
}

/// Batch splices over an ordered labeling scheme. Every method has a
/// loop fallback in terms of [`OrderedLabelingMut`], so the baselines
/// get batches for free; the L-Tree variants override
/// [`insert_many_after`](BatchLabeling::insert_many_after) with the
/// native Section 4.1 fast-path (one search/update pass for the whole
/// batch instead of `k`).
///
/// ```
/// use ltree_core::{BatchLabeling, DynScheme, LTree, OrderedLabeling, OrderedLabelingMut, Params};
///
/// let mut tree: Box<dyn DynScheme> = Box::new(LTree::new(Params::new(4, 2).unwrap()));
/// let handles = tree.bulk_build(4).unwrap();
/// // One native batch call — not 5 single insertions.
/// let batch = tree.insert_many_after(handles[1], 5).unwrap();
/// assert_eq!(batch.len(), 5);
/// assert!(tree.label_of(batch[4]).unwrap() < tree.label_of(handles[2]).unwrap());
/// ```
pub trait BatchLabeling: OrderedLabelingMut {
    /// Insert `k ≥ 1` consecutive items immediately after `anchor`;
    /// returns the new handles in list order. The default falls back to
    /// `k` repeated single insertions.
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        if k == 0 {
            return Err(LTreeError::EmptyBatch);
        }
        let mut out = Vec::with_capacity(k);
        let mut cur = anchor;
        for _ in 0..k {
            cur = self.insert_after(cur)?;
            out.push(cur);
        }
        Ok(out)
    }

    /// Delete the run of up to `count` live items starting at `first`,
    /// following list order; tombstones inside the run are skipped, and
    /// the run stops early at the list end. Returns the number deleted.
    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        let mut deleted = 0usize;
        let mut cur = Some(first);
        while deleted < count {
            let Some(h) = cur else { break };
            // The successor must be read before `delete`: schemes with
            // physical removal invalidate the handle.
            cur = self.next_in_order(h);
            match self.delete(h) {
                Ok(()) => deleted += 1,
                Err(LTreeError::DeletedLeaf) => {} // tombstone inside the run
                Err(e) => return Err(e),
            }
        }
        Ok(deleted)
    }

    /// Apply one typed batch operation.
    fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
        match op {
            Splice::InsertAfter { anchor, count } => Ok(SpliceResult::Inserted(
                self.insert_many_after(anchor, count)?,
            )),
            Splice::DeleteRun { first, count } => {
                Ok(SpliceResult::Deleted(self.delete_run(first, count)?))
            }
        }
    }
}

// ----------------------------------------------------------------------
// Splice assembly
// ----------------------------------------------------------------------

/// Assembles *sibling runs* — contiguous stretches of fresh items that
/// share one anchor — into the minimum number of [`Splice::InsertAfter`]
/// batches, instead of one `insert_after` call per item.
///
/// Callers that shred a tree (the XML layer) or replay an edit script
/// (the workload drivers) queue runs with [`push_run`](Self::push_run),
/// growing the most recent one with [`extend_last`](Self::extend_last)
/// while consecutive items keep landing on the same run, then issue the
/// whole plan with one [`apply`](Self::apply) call. Runs are applied in
/// queue order; each run costs a single [`BatchLabeling::splice`].
///
/// Two runs with the same anchor are **not** merged: a later splice at
/// the same anchor lands *between* the anchor and the earlier run, so
/// merging would reorder items. Use `extend_last` when items genuinely
/// continue the previous run.
///
/// ```
/// use ltree_core::{LTree, OrderedLabelingMut, Params, SpliceBuilder};
///
/// let mut tree = LTree::new(Params::new(4, 2).unwrap());
/// let handles = tree.bulk_build(4).unwrap();
/// let mut plan = SpliceBuilder::new();
/// plan.push_run(handles[0], 2);
/// plan.extend_last(1);        // the run grows to 3 items
/// plan.push_run(handles[2], 2);
/// assert_eq!((plan.run_count(), plan.total_items()), (2, 5));
/// let runs = plan.apply(&mut tree).unwrap(); // 2 splices, not 5 inserts
/// assert_eq!(runs[0].len(), 3);
/// assert_eq!(runs[1].len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpliceBuilder {
    runs: Vec<(LeafHandle, usize)>,
    total: usize,
}

impl SpliceBuilder {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a run of `count ≥ 1` fresh items immediately after `anchor`.
    /// The anchor must be live when [`apply`](Self::apply) runs.
    pub fn push_run(&mut self, anchor: LeafHandle, count: usize) {
        debug_assert!(count >= 1, "a sibling run holds at least one item");
        self.runs.push((anchor, count));
        self.total += count;
    }

    /// Grow the most recently queued run by `count` items. Returns
    /// `false` (queuing nothing) when no run exists yet.
    pub fn extend_last(&mut self, count: usize) -> bool {
        match self.runs.last_mut() {
            Some((_, c)) => {
                *c += count;
                self.total += count;
                true
            }
            None => false,
        }
    }

    /// Number of queued runs (splices `apply` will issue).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total items across all queued runs.
    pub fn total_items(&self) -> usize {
        self.total
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Issue one [`Splice::InsertAfter`] per queued run, in queue order.
    /// Returns the fresh handles grouped per run (each inner `Vec` in
    /// list order). The builder is consumed; on error, earlier runs have
    /// already been applied.
    pub fn apply<S: BatchLabeling + ?Sized>(self, scheme: &mut S) -> Result<Vec<Vec<LeafHandle>>> {
        let mut out = Vec::with_capacity(self.runs.len());
        for (anchor, count) in self.runs {
            out.push(
                scheme
                    .splice(Splice::InsertAfter { anchor, count })?
                    .into_inserted(),
            );
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// Instrumentation
// ----------------------------------------------------------------------

/// Cost-counter access. Counters are cumulative and **monotone** between
/// resets: no operation may decrease any [`SchemeStats`] field (the
/// conformance suite asserts this).
///
/// ```
/// use ltree_core::{DynScheme, Instrumented, LTree, OrderedLabelingMut, Params};
///
/// let mut tree: Box<dyn DynScheme> = Box::new(LTree::new(Params::new(4, 2).unwrap()));
/// let handles = tree.bulk_build(16).unwrap();
/// tree.reset_scheme_stats();
/// tree.insert_after(handles[7]).unwrap();
/// let stats = tree.scheme_stats();
/// assert_eq!(stats.inserts, 1);
/// assert!(stats.label_writes >= 1, "at least the new item's label");
/// ```
pub trait Instrumented {
    /// Cost counters in the common currency.
    fn scheme_stats(&self) -> SchemeStats;

    /// Reset the cost counters.
    fn reset_scheme_stats(&mut self);

    /// Per-component breakdown of [`scheme_stats`](Self::scheme_stats),
    /// as `(component, stats)` pairs, **sorted by component name**.
    /// Empty for monolithic schemes (the default); partitioned schemes
    /// (e.g. `ltree-sharded`) report one entry per segment so the bench
    /// harness can show where the cost concentrates. Components sum to
    /// at most the aggregate (retired components may be folded into the
    /// aggregate only).
    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        Vec::new()
    }

    /// Time-based metrics: latency histograms, duration counters and
    /// gauges as passive [`Metric`](crate::metrics::Metric) snapshots,
    /// sorted by name. Empty by default — only instrumented wrappers
    /// (`traced(...)`, `durable(...)`'s fsync timers) produce entries;
    /// composing wrappers concatenate their own entries with the
    /// inner scheme's so the full stack is visible through one call on
    /// the outermost `Box<dyn DynScheme>`.
    fn metrics(&self) -> Vec<crate::metrics::Metric> {
        Vec::new()
    }
}

// ----------------------------------------------------------------------
// The full contract
// ----------------------------------------------------------------------

/// The full scheme contract: every composable trait at once. This is an
/// object-safe supertrait, blanket-implemented for any type providing
/// the four facets — `Box<dyn DynScheme>` is what the
/// [`crate::registry::SchemeRegistry`] hands out, and boxed schemes
/// implement the facets (and thus `DynScheme`) themselves, so generic
/// code accepts them transparently.
///
/// `Send + Sync` are part of the contract: schemes cross thread
/// boundaries — composite factories are shared between threads
/// (`ltree-sharded` builds segment inners lazily), and the networked
/// backend (`ltree-remote`) hosts a registry-built scheme behind a
/// `RwLock` serviced by one thread per connection. Every scheme in the
/// workspace is plain owned data (or internally synchronized), so the
/// bound costs implementors nothing.
///
/// ```
/// use ltree_core::{DynScheme, Instrumented, LTree, OrderedLabeling, OrderedLabelingMut, Params};
///
/// let mut scheme: Box<dyn DynScheme> = Box::new(LTree::new(Params::new(4, 2).unwrap()));
/// let handles = scheme.bulk_build(8).unwrap();
/// scheme.insert_after(handles[3]).unwrap();   // write facet
/// assert_eq!(scheme.cursor().count(), 9);     // read facet
/// assert_eq!(scheme.scheme_stats().inserts, 1); // instrumentation facet
/// ```
pub trait DynScheme:
    OrderedLabeling + OrderedLabelingMut + BatchLabeling + Instrumented + Send + Sync
{
}

impl<T> DynScheme for T where
    T: OrderedLabeling + OrderedLabelingMut + BatchLabeling + Instrumented + Send + Sync + ?Sized
{
}

/// The familiar name for generic bounds (`S: LabelingScheme`); the same
/// trait as [`DynScheme`].
pub use self::DynScheme as LabelingScheme;

// ----------------------------------------------------------------------
// Forwarding impls (mutable references and boxes)
// ----------------------------------------------------------------------

macro_rules! forward_ordered_labeling {
    () => {
        fn name(&self) -> &'static str {
            (**self).name()
        }
        fn label_of(&self, h: LeafHandle) -> Result<u128> {
            (**self).label_of(h)
        }
        fn len(&self) -> usize {
            (**self).len()
        }
        fn live_len(&self) -> usize {
            (**self).live_len()
        }
        fn is_empty(&self) -> bool {
            (**self).is_empty()
        }
        fn first_in_order(&self) -> Option<LeafHandle> {
            (**self).first_in_order()
        }
        fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
            (**self).next_in_order(h)
        }
        fn label_space_bits(&self) -> u32 {
            (**self).label_space_bits()
        }
        fn memory_bytes(&self) -> usize {
            (**self).memory_bytes()
        }
        fn compare(&self, a: LeafHandle, b: LeafHandle) -> Result<Ordering> {
            (**self).compare(a, b)
        }
    };
}

macro_rules! forward_ordered_labeling_mut {
    () => {
        fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
            (**self).bulk_build(n)
        }
        fn insert_first(&mut self) -> Result<LeafHandle> {
            (**self).insert_first()
        }
        fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
            (**self).insert_after(anchor)
        }
        fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
            (**self).insert_before(anchor)
        }
        fn delete(&mut self, h: LeafHandle) -> Result<()> {
            (**self).delete(h)
        }
    };
}

macro_rules! forward_batch_labeling {
    () => {
        fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
            (**self).insert_many_after(anchor, k)
        }
        fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
            (**self).delete_run(first, count)
        }
        fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
            (**self).splice(op)
        }
    };
}

macro_rules! forward_instrumented {
    () => {
        fn scheme_stats(&self) -> SchemeStats {
            (**self).scheme_stats()
        }
        fn reset_scheme_stats(&mut self) {
            (**self).reset_scheme_stats()
        }
        fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
            (**self).stats_breakdown()
        }
        fn metrics(&self) -> Vec<crate::metrics::Metric> {
            (**self).metrics()
        }
    };
}

impl<T: OrderedLabeling + ?Sized> OrderedLabeling for &mut T {
    forward_ordered_labeling!();
}
impl<T: OrderedLabelingMut + ?Sized> OrderedLabelingMut for &mut T {
    forward_ordered_labeling_mut!();
}
impl<T: BatchLabeling + ?Sized> BatchLabeling for &mut T {
    forward_batch_labeling!();
}
impl<T: Instrumented + ?Sized> Instrumented for &mut T {
    forward_instrumented!();
}

impl<T: OrderedLabeling + ?Sized> OrderedLabeling for Box<T> {
    forward_ordered_labeling!();
}
impl<T: OrderedLabelingMut + ?Sized> OrderedLabelingMut for Box<T> {
    forward_ordered_labeling_mut!();
}
impl<T: BatchLabeling + ?Sized> BatchLabeling for Box<T> {
    forward_batch_labeling!();
}
impl<T: Instrumented + ?Sized> Instrumented for Box<T> {
    forward_instrumented!();
}

// ----------------------------------------------------------------------
// The materialized L-Tree as a labeling scheme
// ----------------------------------------------------------------------

/// Each [`next_in_order`](OrderedLabeling::next_in_order) step re-walks
/// the root path (`O(f·h)` node touches), so a full-list cursor walk
/// costs `O(n·f·h)`; callers holding a concrete `LTree` should prefer
/// [`crate::LTree::leaves`], a single `O(n)` DFS, for whole-list scans.
impl OrderedLabeling for crate::LTree {
    fn name(&self) -> &'static str {
        "ltree"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        Ok(self.label(decode(h)?)?.get())
    }

    fn len(&self) -> usize {
        crate::LTree::len(self)
    }

    fn live_len(&self) -> usize {
        crate::LTree::live_len(self)
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.first_leaf().map(|l| LeafHandle(l.to_u64()))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        let leaf = decode(h).ok()?;
        self.next_leaf(leaf)
            .ok()
            .flatten()
            .map(|l| LeafHandle(l.to_u64()))
    }

    fn label_space_bits(&self) -> u32 {
        crate::LTree::label_space_bits(self)
    }

    fn memory_bytes(&self) -> usize {
        crate::LTree::memory_bytes(self)
    }
}

impl OrderedLabelingMut for crate::LTree {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if !self.is_empty() {
            return Err(crate::LTreeError::NotEmpty);
        }
        // Rebuild in place via the constructor path.
        let (tree, leaves) = crate::LTree::bulk_load(self.params(), n)?;
        *self = tree;
        Ok(leaves.into_iter().map(|l| LeafHandle(l.to_u64())).collect())
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        Ok(LeafHandle(crate::LTree::insert_first(self)?.to_u64()))
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let leaf = decode(anchor)?;
        Ok(LeafHandle(crate::LTree::insert_after(self, leaf)?.to_u64()))
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let leaf = decode(anchor)?;
        Ok(LeafHandle(
            crate::LTree::insert_before(self, leaf)?.to_u64(),
        ))
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        crate::LTree::delete(self, decode(h)?)
    }
}

impl BatchLabeling for crate::LTree {
    /// Native Section 4.1 batch: one search/count-update pass for the
    /// whole batch instead of `k`.
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        let leaf = decode(anchor)?;
        let ids = crate::LTree::insert_many_after(self, leaf, k)?;
        Ok(ids.into_iter().map(|l| LeafHandle(l.to_u64())).collect())
    }
}

impl Instrumented for crate::LTree {
    fn scheme_stats(&self) -> SchemeStats {
        let s = self.stats();
        SchemeStats {
            inserts: s.leaves_inserted,
            deletes: s.deletes,
            label_writes: s.leaf_label_writes,
            node_touches: s.count_updates
                + s.nodes_visited
                + (s.nodes_relabeled - s.leaf_label_writes),
            relabel_events: s.relabel_events,
        }
    }

    fn reset_scheme_stats(&mut self) {
        self.reset_stats();
    }
}

fn decode(h: LeafHandle) -> Result<crate::LeafId> {
    crate::LeafId::from_u64(h.0).ok_or(crate::LTreeError::UnknownHandle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LTree, Params};

    #[test]
    fn ltree_through_the_trait_object() {
        let mut scheme: Box<dyn DynScheme> = Box::new(LTree::new(Params::example()));
        let handles = scheme.bulk_build(8).unwrap();
        assert_eq!(scheme.len(), 8);
        let mid = scheme.insert_after(handles[3]).unwrap();
        assert!(scheme.label_of(handles[3]).unwrap() < scheme.label_of(mid).unwrap());
        assert!(scheme.label_of(mid).unwrap() < scheme.label_of(handles[4]).unwrap());
        scheme.delete(mid).unwrap();
        assert_eq!(scheme.live_len(), 8);
        assert_eq!(scheme.len(), 9);
        assert!(scheme.scheme_stats().inserts >= 1);
    }

    #[test]
    fn bulk_build_rejects_non_empty() {
        let mut t = LTree::new(Params::example());
        OrderedLabelingMut::bulk_build(&mut t, 4).unwrap();
        assert!(OrderedLabelingMut::bulk_build(&mut t, 4).is_err());
    }

    #[test]
    fn cursor_streams_in_label_order() {
        let mut t = LTree::new(Params::example());
        let hs = OrderedLabelingMut::bulk_build(&mut t, 16).unwrap();
        BatchLabeling::insert_many_after(&mut t, hs[5], 7).unwrap();
        let mut prev: Option<u128> = None;
        let mut seen = 0usize;
        for h in t.cursor() {
            let l = t.label_of(h).unwrap();
            if let Some(p) = prev {
                assert!(p < l, "cursor must follow label order");
            }
            prev = Some(l);
            seen += 1;
        }
        assert_eq!(seen, OrderedLabeling::len(&t));
    }

    #[test]
    fn cursor_works_through_dyn_objects() {
        let mut boxed: Box<dyn DynScheme> = Box::new(LTree::new(Params::example()));
        boxed.bulk_build(5).unwrap();
        // Via the forwarding impl on the box …
        assert_eq!(boxed.cursor().count(), 5);
        // … and directly over the unsized trait object.
        let dyn_ref: &dyn DynScheme = &*boxed;
        assert_eq!(Cursor::new(dyn_ref).count(), 5);
    }

    #[test]
    fn cursor_starting_at_resumes_midway() {
        let mut t = LTree::new(Params::example());
        let hs = OrderedLabelingMut::bulk_build(&mut t, 10).unwrap();
        let tail: Vec<LeafHandle> = Cursor::starting_at(&t, hs[6]).collect();
        assert_eq!(tail, &hs[6..]);
        assert_eq!(Cursor::starting_at(&t, LeafHandle(u64::MAX)).count(), 0);
    }

    #[test]
    fn splice_insert_matches_insert_many() {
        let mut t = LTree::new(Params::example());
        let hs = OrderedLabelingMut::bulk_build(&mut t, 4).unwrap();
        let out = t
            .splice(Splice::InsertAfter {
                anchor: hs[0],
                count: 5,
            })
            .unwrap();
        let batch = out.into_inserted();
        assert_eq!(batch.len(), 5);
        for w in batch.windows(2) {
            assert!(t.label_of(w[0]).unwrap() < t.label_of(w[1]).unwrap());
        }
        assert!(t.label_of(hs[0]).unwrap() < t.label_of(batch[0]).unwrap());
        assert!(t.label_of(batch[4]).unwrap() < t.label_of(hs[1]).unwrap());
    }

    #[test]
    fn splice_delete_run_skips_tombstones_and_stops_at_end() {
        let mut t = LTree::new(Params::example());
        let hs = OrderedLabelingMut::bulk_build(&mut t, 8).unwrap();
        OrderedLabelingMut::delete(&mut t, hs[3]).unwrap();
        // Delete 4 live items starting at hs[2]: 2, (3 skipped), 4, 5, 6.
        let out = t
            .splice(Splice::DeleteRun {
                first: hs[2],
                count: 4,
            })
            .unwrap();
        assert_eq!(out.deleted(), 4);
        assert_eq!(OrderedLabeling::live_len(&t), 3);
        // A run over the end deletes what is left and reports it.
        let out = t
            .splice(Splice::DeleteRun {
                first: hs[0],
                count: 100,
            })
            .unwrap();
        assert_eq!(out.deleted(), 3);
        assert_eq!(OrderedLabeling::live_len(&t), 0);
    }

    #[test]
    fn default_batch_falls_back_to_singles() {
        // A &mut forwarding wrapper still routes through the native batch;
        // the semantic contract (contiguous, ordered) is what matters.
        let mut t = LTree::new(Params::example());
        let hs = OrderedLabelingMut::bulk_build(&mut t, 4).unwrap();
        let batch = BatchLabeling::insert_many_after(&mut (&mut t), hs[0], 5).unwrap();
        assert_eq!(batch.len(), 5);
        for w in batch.windows(2) {
            assert!(t.label_of(w[0]).unwrap() < t.label_of(w[1]).unwrap());
        }
        assert!(matches!(
            BatchLabeling::insert_many_after(&mut t, hs[0], 0),
            Err(LTreeError::EmptyBatch)
        ));
    }

    #[test]
    fn splice_builder_applies_runs_in_order() {
        let mut t = LTree::new(Params::example());
        let hs = OrderedLabelingMut::bulk_build(&mut t, 4).unwrap();
        let mut b = SpliceBuilder::new();
        b.push_run(hs[0], 2);
        assert!(b.extend_last(1), "run grows to 3");
        b.push_run(hs[2], 2);
        assert_eq!(b.run_count(), 2);
        assert_eq!(b.total_items(), 5);
        let runs = b.apply(&mut t).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].len(), 3);
        assert_eq!(runs[1].len(), 2);
        // First run sits between hs[0] and hs[1]; second between hs[2] and hs[3].
        assert!(t.label_of(hs[0]).unwrap() < t.label_of(runs[0][0]).unwrap());
        assert!(t.label_of(runs[0][2]).unwrap() < t.label_of(hs[1]).unwrap());
        assert!(t.label_of(hs[2]).unwrap() < t.label_of(runs[1][0]).unwrap());
        assert!(t.label_of(runs[1][1]).unwrap() < t.label_of(hs[3]).unwrap());
    }

    #[test]
    fn splice_builder_empty_and_extend_without_run() {
        let mut t = LTree::new(Params::example());
        OrderedLabelingMut::bulk_build(&mut t, 2).unwrap();
        let mut b = SpliceBuilder::new();
        assert!(b.is_empty());
        assert!(!b.extend_last(3), "nothing to extend");
        assert_eq!(b.total_items(), 0);
        assert!(b.apply(&mut t).unwrap().is_empty());
    }

    #[test]
    fn stats_roundtrip_and_monotonicity() {
        let mut t = LTree::new(Params::example());
        let hs = OrderedLabelingMut::bulk_build(&mut t, 16).unwrap();
        let before = t.scheme_stats();
        OrderedLabelingMut::insert_after(&mut t, hs[7]).unwrap();
        let st = t.scheme_stats();
        assert!(st.dominates(&before), "counters are monotone");
        assert_eq!(st.inserts, 1);
        assert!(st.label_writes >= 1);
        t.reset_scheme_stats();
        assert_eq!(t.scheme_stats().inserts, 0);
    }
}
