//! The [`LabelingScheme`] abstraction.
//!
//! The paper compares the L-Tree against the labeling alternatives of its
//! introduction (sequential labels, gapped labels) and of related work
//! (classic list labeling [8, 9, 10]). This trait is the common contract:
//! an *order-maintenance structure with integer labels*. Every scheme —
//! the materialized L-Tree, the virtual L-Tree, and the three baselines in
//! `labeling-baselines` — implements it, so the workload drivers and the
//! benchmark harness treat them uniformly.
//!
//! The contract: labels are `u128`s; at any point in time, the label order
//! of live items equals their list order; labels may change arbitrarily
//! during *any* mutation (that is the cost being studied), but reads
//! ([`LabelingScheme::label_of`]) are always cheap.

use crate::error::Result;

/// An opaque, scheme-specific handle to one list item. Handles are stable
/// across relabelings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafHandle(pub u64);

/// Scheme-agnostic cost counters, in the paper's unit of "nodes accessed
/// for searching or relabeling".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Items inserted since the last reset.
    pub inserts: u64,
    /// Items deleted since the last reset.
    pub deletes: u64,
    /// Item labels written (initial assignment + relabelings).
    pub label_writes: u64,
    /// All maintenance node/entry accesses, including interior bookkeeping.
    pub node_touches: u64,
    /// Number of relabeling events (each may write many labels).
    pub relabel_events: u64,
}

impl SchemeStats {
    /// Amortized label writes per inserted item.
    pub fn amortized_label_writes(&self) -> f64 {
        self.label_writes as f64 / (self.inserts.max(1)) as f64
    }

    /// Amortized total maintenance cost per inserted item.
    pub fn amortized_cost(&self) -> f64 {
        (self.label_writes + self.node_touches) as f64 / (self.inserts.max(1)) as f64
    }
}

/// An order-maintenance structure with integer labels. See the
/// [module docs](self).
pub trait LabelingScheme {
    /// Short scheme name for tables ("ltree", "naive", …).
    fn name(&self) -> &'static str;

    /// Load `n` items into an empty scheme; returns handles in list order.
    /// Fails with [`crate::LTreeError::NotEmpty`] if items already exist.
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>>;

    /// Insert a new first item (must work on an empty scheme).
    fn insert_first(&mut self) -> Result<LeafHandle>;

    /// Insert an item immediately after `anchor`.
    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle>;

    /// Insert an item immediately before `anchor`.
    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle>;

    /// Insert `k` consecutive items immediately after `anchor` (paper,
    /// Section 4.1). Schemes without a batch fast-path fall back to `k`
    /// repeated single insertions.
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        let mut out = Vec::with_capacity(k);
        let mut cur = anchor;
        for _ in 0..k {
            cur = self.insert_after(cur)?;
            out.push(cur);
        }
        Ok(out)
    }

    /// Delete an item. Whether this tombstones or physically removes is
    /// scheme-specific; either way it must not disturb the order of the
    /// remaining items.
    fn delete(&mut self, h: LeafHandle) -> Result<()>;

    /// Current label of an item.
    fn label_of(&self, h: LeafHandle) -> Result<u128>;

    /// Total items tracked (tombstones included, where applicable).
    fn len(&self) -> usize;

    /// Items not deleted.
    fn live_len(&self) -> usize;

    /// True when no items are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All handles in list order, tombstones included where the scheme
    /// keeps them. `O(n)` (ordered collection walk).
    fn handles_in_order(&self) -> Vec<LeafHandle>;

    /// Bits needed to encode any label the scheme may currently hand out.
    fn label_space_bits(&self) -> u32;

    /// Cost counters in the common currency.
    fn scheme_stats(&self) -> SchemeStats;

    /// Reset the cost counters.
    fn reset_scheme_stats(&mut self);

    /// Approximate heap usage in bytes.
    fn memory_bytes(&self) -> usize;
}

impl<T: LabelingScheme + ?Sized> LabelingScheme for &mut T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        (**self).bulk_build(n)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        (**self).insert_first()
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        (**self).insert_after(anchor)
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        (**self).insert_before(anchor)
    }

    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        (**self).insert_many_after(anchor, k)
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        (**self).delete(h)
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        (**self).label_of(h)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn live_len(&self) -> usize {
        (**self).live_len()
    }

    fn handles_in_order(&self) -> Vec<LeafHandle> {
        (**self).handles_in_order()
    }

    fn label_space_bits(&self) -> u32 {
        (**self).label_space_bits()
    }

    fn scheme_stats(&self) -> SchemeStats {
        (**self).scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        (**self).reset_scheme_stats()
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

impl<T: LabelingScheme + ?Sized> LabelingScheme for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        (**self).bulk_build(n)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        (**self).insert_first()
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        (**self).insert_after(anchor)
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        (**self).insert_before(anchor)
    }

    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        (**self).insert_many_after(anchor, k)
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        (**self).delete(h)
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        (**self).label_of(h)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn live_len(&self) -> usize {
        (**self).live_len()
    }

    fn handles_in_order(&self) -> Vec<LeafHandle> {
        (**self).handles_in_order()
    }

    fn label_space_bits(&self) -> u32 {
        (**self).label_space_bits()
    }

    fn scheme_stats(&self) -> SchemeStats {
        (**self).scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        (**self).reset_scheme_stats()
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

impl LabelingScheme for crate::LTree {
    fn name(&self) -> &'static str {
        "ltree"
    }

    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if !self.is_empty() {
            return Err(crate::LTreeError::NotEmpty);
        }
        // Rebuild in place via the constructor path.
        let (tree, leaves) = crate::LTree::bulk_load(self.params(), n)?;
        *self = tree;
        Ok(leaves.into_iter().map(|l| LeafHandle(l.to_u64())).collect())
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        Ok(LeafHandle(crate::LTree::insert_first(self)?.to_u64()))
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let leaf = decode(anchor)?;
        Ok(LeafHandle(crate::LTree::insert_after(self, leaf)?.to_u64()))
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let leaf = decode(anchor)?;
        Ok(LeafHandle(crate::LTree::insert_before(self, leaf)?.to_u64()))
    }

    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        let leaf = decode(anchor)?;
        let ids = crate::LTree::insert_many_after(self, leaf, k)?;
        Ok(ids.into_iter().map(|l| LeafHandle(l.to_u64())).collect())
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        crate::LTree::delete(self, decode(h)?)
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        Ok(self.label(decode(h)?)?.get())
    }

    fn len(&self) -> usize {
        crate::LTree::len(self)
    }

    fn live_len(&self) -> usize {
        crate::LTree::live_len(self)
    }

    fn handles_in_order(&self) -> Vec<LeafHandle> {
        self.leaves().map(|l| LeafHandle(l.to_u64())).collect()
    }

    fn label_space_bits(&self) -> u32 {
        crate::LTree::label_space_bits(self)
    }

    fn scheme_stats(&self) -> SchemeStats {
        let s = self.stats();
        SchemeStats {
            inserts: s.leaves_inserted,
            deletes: s.deletes,
            label_writes: s.leaf_label_writes,
            node_touches: s.count_updates + s.nodes_visited + (s.nodes_relabeled - s.leaf_label_writes),
            relabel_events: s.relabel_events,
        }
    }

    fn reset_scheme_stats(&mut self) {
        self.reset_stats();
    }

    fn memory_bytes(&self) -> usize {
        crate::LTree::memory_bytes(self)
    }
}

fn decode(h: LeafHandle) -> Result<crate::LeafId> {
    crate::LeafId::from_u64(h.0).ok_or(crate::LTreeError::UnknownHandle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LTree, Params};

    #[test]
    fn ltree_through_the_trait() {
        let mut scheme: Box<dyn LabelingScheme> = Box::new(LTree::new(Params::example()));
        let handles = scheme.bulk_build(8).unwrap();
        assert_eq!(scheme.len(), 8);
        let mid = scheme.insert_after(handles[3]).unwrap();
        assert!(scheme.label_of(handles[3]).unwrap() < scheme.label_of(mid).unwrap());
        assert!(scheme.label_of(mid).unwrap() < scheme.label_of(handles[4]).unwrap());
        scheme.delete(mid).unwrap();
        assert_eq!(scheme.live_len(), 8);
        assert_eq!(scheme.len(), 9);
        assert!(scheme.scheme_stats().inserts >= 1);
    }

    #[test]
    fn bulk_build_rejects_non_empty() {
        let mut t = LTree::new(Params::example());
        LabelingScheme::bulk_build(&mut t, 4).unwrap();
        assert!(LabelingScheme::bulk_build(&mut t, 4).is_err());
    }

    #[test]
    fn default_batch_falls_back_to_singles() {
        // A scheme that only customizes what it must still gets batches.
        let mut t = LTree::new(Params::example());
        let hs = LabelingScheme::bulk_build(&mut t, 4).unwrap();
        let batch = LabelingScheme::insert_many_after(&mut t, hs[0], 5).unwrap();
        assert_eq!(batch.len(), 5);
        for w in batch.windows(2) {
            assert!(t.label_of(w[0]).unwrap() < t.label_of(w[1]).unwrap());
        }
    }

    #[test]
    fn stats_roundtrip() {
        let mut t = LTree::new(Params::example());
        let hs = LabelingScheme::bulk_build(&mut t, 16).unwrap();
        LabelingScheme::insert_after(&mut t, hs[7]).unwrap();
        let st = t.scheme_stats();
        assert_eq!(st.inserts, 1);
        assert!(st.label_writes >= 1);
        t.reset_scheme_stats();
        assert_eq!(t.scheme_stats().inserts, 0);
    }
}
