//! The materialized L-Tree (paper, Section 2).
//!
//! The tree keeps one leaf per document tag, all leaves at the same depth,
//! and maintains the global labeling invariant
//! `num(child_i) = num(parent) + i · B^{h(child)}` with `B = f + 1`.
//!
//! * [`LTree::bulk_load`] — Section 2.2: a leftmost-complete `f/s`-ary tree.
//! * [`LTree::insert_after`] / [`LTree::insert_before`] — Section 2.3,
//!   Algorithm 1: sibling relabel, or split of the highest overfull
//!   ancestor into `s` half-full subtrees.
//! * [`LTree::insert_many_after`] — Section 4.1: batch insertion; the split
//!   produces `ceil(L / a^h)` pieces and, if a batch transiently overflows
//!   a fanout, cascades upward (never needed for single inserts —
//!   Proposition 3).
//! * [`LTree::delete`] — Section 2.3: tombstone, never relabels.
//! * [`LTree::compact`] — an extension beyond the paper: rebuilds the tree
//!   without tombstones, preserving all live [`LeafId`]s.

use std::cmp::Ordering;

use crate::arena::{Arena, NodeId};
use crate::error::{LTreeError, Result};
use crate::invariants::{self, InvariantError};
use crate::label::Label;
use crate::layout::{ceil_div, even_split, RootRebuild};
use crate::node::{Node, NodeData};
use crate::params::Params;
use crate::stats::Stats;

/// Stable identifier of a leaf (one document tag). Valid for the lifetime
/// of the tree: splits rebuild interior nodes but never touch leaves, and
/// [`LTree::compact`] preserves live leaves as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafId(pub(crate) NodeId);

impl LeafId {
    /// Pack into a `u64` (for the generic [`crate::LeafHandle`]).
    pub fn to_u64(self) -> u64 {
        self.0.to_u64()
    }

    /// Unpack from a `u64`.
    pub fn from_u64(v: u64) -> Option<Self> {
        NodeId::from_u64(v).map(LeafId)
    }
}

/// The materialized L-Tree. See the [module docs](self).
pub struct LTree {
    params: Params,
    arena: Arena,
    root: NodeId,
    height: u8,
    /// Total leaves, tombstones included.
    n_leaves: u64,
    /// Leaves that are not tombstoned.
    n_live: u64,
    stats: Stats,
}

impl LTree {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// An empty L-Tree (a height-1 root with no leaves yet).
    pub fn new(params: Params) -> Self {
        let mut arena = Arena::new();
        let root = arena.alloc(Node::new_internal(None, 1));
        LTree {
            params,
            arena,
            root,
            height: 1,
            n_leaves: 0,
            n_live: 0,
            stats: Stats::default(),
        }
    }

    /// Bulk load `n` leaves (paper, Section 2.2): a leftmost-complete
    /// `f/s`-ary tree of minimal height, so later insertions find maximal
    /// slack. Returns the tree and the leaves in document order.
    pub fn bulk_load(params: Params, n: usize) -> Result<(Self, Vec<LeafId>)> {
        let mut tree = LTree::new(params);
        let leaves = tree.bulk_build_leaves(n)?;
        Ok((tree, leaves))
    }

    fn bulk_build_leaves(&mut self, n: usize) -> Result<Vec<LeafId>> {
        if self.n_leaves > 0 {
            return Err(LTreeError::NotEmpty);
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let n64 = n as u64;
        let height = self.params.height_for(n64);
        if height > self.params.max_height() {
            return Err(LTreeError::LabelOverflow { height });
        }
        let leaves: Vec<NodeId> = (0..n)
            .map(|_| self.arena.alloc(Node::new_leaf(None)))
            .collect();
        // Replace the empty placeholder root.
        self.arena.free(self.root);
        let root = self.build_complete(height, &leaves);
        self.root = root;
        self.height = height;
        self.n_leaves = n64;
        self.n_live = n64;
        self.relabel_subtree(root, 0)?;
        // Bulk loading is not an update: it should not pollute the
        // amortized-cost counters the experiments read.
        self.stats.reset();
        Ok(leaves.into_iter().map(LeafId).collect())
    }

    // ------------------------------------------------------------------
    // Public queries
    // ------------------------------------------------------------------

    /// Shape parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Current height `H` (leaves are at depth `H`).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Total number of leaves, tombstones included.
    pub fn len(&self) -> usize {
        self.n_leaves as usize
    }

    /// True when the tree holds no leaves at all.
    pub fn is_empty(&self) -> bool {
        self.n_leaves == 0
    }

    /// Number of live (non-tombstoned) leaves.
    pub fn live_len(&self) -> usize {
        self.n_live as usize
    }

    /// Cost counters (see [`Stats`]).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reset the cost counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The label of a leaf — `O(1)`, "for free" in the paper's cost model.
    pub fn label(&self, leaf: LeafId) -> Result<Label> {
        let node = self.leaf_node(leaf)?;
        Ok(Label::new(node.num))
    }

    /// Whether the leaf is tombstoned.
    pub fn is_deleted(&self, leaf: LeafId) -> Result<bool> {
        Ok(self.leaf_node(leaf)?.is_deleted())
    }

    /// True if `leaf` refers to a live slot of this tree.
    pub fn contains(&self, leaf: LeafId) -> bool {
        self.arena.get(leaf.0).map(Node::is_leaf).unwrap_or(false)
    }

    /// Compare two leaves in document order via their labels.
    pub fn compare(&self, a: LeafId, b: LeafId) -> Result<Ordering> {
        Ok(self.label(a)?.cmp(&self.label(b)?))
    }

    /// Width of the current label space in bits: labels live in
    /// `[0, (f+1)^H)` (paper, Section 3.1).
    pub fn label_space_bits(&self) -> u32 {
        match self.params.interval(self.height) {
            Ok(space) => Label::new(space - 1).bits(),
            Err(_) => 128,
        }
    }

    /// The largest label currently assigned, if any.
    pub fn max_label(&self) -> Option<Label> {
        self.last_leaf().and_then(|l| self.label(l).ok())
    }

    /// Approximate heap usage in bytes (space side of experiment X9).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.arena.memory_bytes()
    }

    /// First leaf in document order.
    pub fn first_leaf(&self) -> Option<LeafId> {
        if self.is_empty() {
            return None;
        }
        Some(LeafId(self.descend(self.root, false)))
    }

    /// Last leaf in document order.
    pub fn last_leaf(&self) -> Option<LeafId> {
        if self.is_empty() {
            return None;
        }
        Some(LeafId(self.descend(self.root, true)))
    }

    /// Successor leaf in document order (tombstones included).
    pub fn next_leaf(&self, leaf: LeafId) -> Result<Option<LeafId>> {
        self.leaf_node(leaf)?;
        let mut u = leaf.0;
        loop {
            let Some(parent) = self.arena.node(u).parent else {
                return Ok(None);
            };
            let idx = self.index_of_child(parent, u);
            let siblings = self.arena.node(parent).children();
            if idx + 1 < siblings.len() {
                let next = siblings[idx + 1];
                return Ok(Some(LeafId(self.descend(next, false))));
            }
            u = parent;
        }
    }

    /// Predecessor leaf in document order (tombstones included).
    pub fn prev_leaf(&self, leaf: LeafId) -> Result<Option<LeafId>> {
        self.leaf_node(leaf)?;
        let mut u = leaf.0;
        loop {
            let Some(parent) = self.arena.node(u).parent else {
                return Ok(None);
            };
            let idx = self.index_of_child(parent, u);
            if idx > 0 {
                let prev = self.arena.node(parent).children()[idx - 1];
                return Ok(Some(LeafId(self.descend(prev, true))));
            }
            u = parent;
        }
    }

    /// Iterate all leaves in document order (tombstones included).
    pub fn leaves(&self) -> Leaves<'_> {
        let stack = if self.is_empty() {
            Vec::new()
        } else {
            vec![self.root]
        };
        Leaves { tree: self, stack }
    }

    /// Iterate live leaves in document order.
    pub fn live_leaves(&self) -> impl Iterator<Item = LeafId> + '_ {
        self.leaves()
            .filter(|&l| !self.arena.node(l.0).is_deleted())
    }

    /// Run the full structural checker (used pervasively by tests).
    pub fn check_invariants(&self) -> std::result::Result<(), InvariantError> {
        invariants::check(self)
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Insert a new leaf immediately after `anchor`.
    pub fn insert_after(&mut self, anchor: LeafId) -> Result<LeafId> {
        let (parent, idx) = self.locate(anchor)?;
        self.stats.inserts += 1;
        let ids = self.insert_leaves_at(parent, idx + 1, 1)?;
        Ok(ids[0])
    }

    /// Insert a new leaf immediately before `anchor`.
    pub fn insert_before(&mut self, anchor: LeafId) -> Result<LeafId> {
        let (parent, idx) = self.locate(anchor)?;
        self.stats.inserts += 1;
        let ids = self.insert_leaves_at(parent, idx, 1)?;
        Ok(ids[0])
    }

    /// Insert a new first leaf (works on an empty tree).
    pub fn insert_first(&mut self) -> Result<LeafId> {
        self.stats.inserts += 1;
        match self.first_leaf() {
            Some(first) => {
                let (parent, idx) = self.locate(first)?;
                let ids = self.insert_leaves_at(parent, idx, 1)?;
                Ok(ids[0])
            }
            None => {
                let root = self.root;
                let ids = self.insert_leaves_at(root, 0, 1)?;
                Ok(ids[0])
            }
        }
    }

    /// Append a leaf after the current last leaf (works on an empty tree).
    pub fn push_back(&mut self) -> Result<LeafId> {
        match self.last_leaf() {
            Some(last) => self.insert_after(last),
            None => self.insert_first(),
        }
    }

    /// Batch insertion (paper, Section 4.1): insert `k` consecutive leaves
    /// immediately after `anchor`, paying the path/update costs once.
    /// Returns the new leaves in document order.
    pub fn insert_many_after(&mut self, anchor: LeafId, k: usize) -> Result<Vec<LeafId>> {
        let (parent, idx) = self.locate(anchor)?;
        self.stats.batch_inserts += 1;
        self.insert_leaves_at(parent, idx + 1, k)
    }

    /// Batch twin of [`insert_first`](LTree::insert_first).
    pub fn insert_many_first(&mut self, k: usize) -> Result<Vec<LeafId>> {
        self.stats.batch_inserts += 1;
        match self.first_leaf() {
            Some(first) => {
                let (parent, idx) = self.locate(first)?;
                self.insert_leaves_at(parent, idx, k)
            }
            None => {
                let root = self.root;
                self.insert_leaves_at(root, 0, k)
            }
        }
    }

    /// Tombstone a leaf (paper, Section 2.3: "for deletions we can just
    /// mark as deleted the corresponding leaves … without any relabeling").
    pub fn delete(&mut self, leaf: LeafId) -> Result<()> {
        let node = self
            .arena
            .get_mut(leaf.0)
            .ok_or(LTreeError::UnknownHandle)?;
        match &mut node.data {
            NodeData::Leaf { deleted } => {
                if *deleted {
                    return Err(LTreeError::DeletedLeaf);
                }
                *deleted = true;
                self.n_live -= 1;
                self.stats.deletes += 1;
                Ok(())
            }
            NodeData::Internal { .. } => Err(LTreeError::UnknownHandle),
        }
    }

    /// Extension (beyond the paper): rebuild the tree without tombstones,
    /// as if the live leaves had been bulk loaded. All live [`LeafId`]s
    /// remain valid; tombstoned ids become stale.
    pub fn compact(&mut self) -> Result<()> {
        let all: Vec<NodeId> = self.leaves().map(|l| l.0).collect();
        // Free the interior first (it still references every leaf), then
        // drop the tombstones, keeping live leaves untouched.
        self.free_internals(self.root);
        let mut keep = Vec::with_capacity(self.n_live as usize);
        for id in all {
            if self.arena.node(id).is_deleted() {
                self.arena.free(id);
            } else {
                keep.push(id);
            }
        }
        if keep.is_empty() {
            self.root = self.arena.alloc(Node::new_internal(None, 1));
            self.height = 1;
            self.n_leaves = 0;
            return Ok(());
        }
        let n = keep.len() as u64;
        let height = self.params.height_for(n);
        if height > self.params.max_height() {
            return Err(LTreeError::LabelOverflow { height });
        }
        let root = self.build_complete(height, &keep);
        self.root = root;
        self.height = height;
        self.n_leaves = n;
        self.relabel_subtree(root, 0)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn leaf_node(&self, leaf: LeafId) -> Result<&Node> {
        match self.arena.get(leaf.0) {
            Some(node) if node.is_leaf() => Ok(node),
            _ => Err(LTreeError::UnknownHandle),
        }
    }

    /// Parent and child-index of a leaf.
    fn locate(&self, leaf: LeafId) -> Result<(NodeId, usize)> {
        let node = self.leaf_node(leaf)?;
        let parent = node.parent.expect("leaves always have a parent");
        Ok((parent, self.index_of_child(parent, leaf.0)))
    }

    fn index_of_child(&self, parent: NodeId, child: NodeId) -> usize {
        self.arena
            .node(parent)
            .children()
            .iter()
            .position(|&c| c == child)
            .expect("child must be present under its parent")
    }

    /// Descend to the leftmost (`rightmost = false`) or rightmost leaf.
    fn descend(&self, mut u: NodeId, rightmost: bool) -> NodeId {
        loop {
            let node = self.arena.node(u);
            match &node.data {
                NodeData::Leaf { .. } => return u,
                NodeData::Internal { children, .. } => {
                    u = if rightmost {
                        *children.last().expect("non-empty interior")
                    } else {
                        children[0]
                    };
                }
            }
        }
    }

    /// The insertion core shared by every insert flavour (Algorithm 1 of
    /// the paper, generalized to `k ≥ 1`).
    fn insert_leaves_at(&mut self, parent: NodeId, pos: usize, k: usize) -> Result<Vec<LeafId>> {
        if k == 0 {
            return Err(LTreeError::EmptyBatch);
        }
        let k64 = k as u64;
        debug_assert_eq!(
            self.arena.node(parent).height,
            1,
            "leaves are inserted under height-1 nodes"
        );

        // Collect the root path; find the highest node whose leaf count
        // would reach its split threshold (the paper's "highest ancestor t
        // with L(t) = s (f/s)^h"). No mutation yet.
        let mut path = Vec::with_capacity(usize::from(self.height));
        let mut u = Some(parent);
        while let Some(id) = u {
            path.push(id);
            u = self.arena.node(id).parent;
        }
        self.stats.count_updates += path.len() as u64;
        let mut violator: Option<NodeId> = None;
        for &id in path.iter().rev() {
            let node = self.arena.node(id);
            if node.leaf_count() + k64 >= self.params.split_threshold(node.height) {
                violator = Some(id);
                break;
            }
        }

        // Label-space pre-check before mutating anything.
        if violator == Some(self.root) {
            let plan = RootRebuild::plan(&self.params, self.n_leaves + k64, self.height);
            if plan.new_height > self.params.max_height() {
                return Err(LTreeError::LabelOverflow {
                    height: plan.new_height,
                });
            }
        }

        // Mutate: splice the new leaves in, bump counts along the path.
        let new_leaves: Vec<NodeId> = (0..k)
            .map(|_| self.arena.alloc(Node::new_leaf(Some(parent))))
            .collect();
        self.arena
            .node_mut(parent)
            .children_mut()
            .splice(pos..pos, new_leaves.iter().copied());
        for &id in &path {
            if let NodeData::Internal { leaf_count, .. } = &mut self.arena.node_mut(id).data {
                *leaf_count += k64;
            }
        }
        self.n_leaves += k64;
        self.n_live += k64;
        self.stats.leaves_inserted += k64;

        match violator {
            None => {
                // No split: relabel the new leaves and their right
                // siblings by child index (labels `num(parent) + j`).
                self.relabel_suffix(parent, pos);
            }
            Some(first) => {
                let mut t = first;
                let mut cascaded = false;
                loop {
                    if t == self.root {
                        self.rebuild_root()?;
                        break;
                    }
                    let up = self.arena.node(t).parent.expect("non-root has a parent");
                    self.split_node(t)?;
                    let pn = self.arena.node(up);
                    let overflow = pn.children().len() > self.params.f() as usize;
                    debug_assert!(
                        pn.leaf_count() < self.params.split_threshold(pn.height) || up == self.root,
                        "t was the highest leaf-count violator"
                    );
                    if overflow {
                        // Only reachable through batch insertions: the
                        // split emitted more pieces than the parent had
                        // slack for (paper Prop. 3 guarantees this never
                        // happens for k = 1; the tests assert it).
                        self.stats.cascade_splits += 1;
                        cascaded = true;
                        t = up;
                        continue;
                    }
                    let base = self.arena.node(up).num;
                    self.relabel_subtree(up, base)?;
                    break;
                }
                let _ = cascaded;
            }
        }
        Ok(new_leaves.into_iter().map(LeafId).collect())
    }

    /// Relabel `children[pos..]` of a height-1 node by child index.
    fn relabel_suffix(&mut self, parent: NodeId, pos: usize) {
        let base = self.arena.node(parent).num;
        let children: Vec<NodeId> = self.arena.node(parent).children()[pos..].to_vec();
        let mut written = 0u64;
        for (offset, child) in children.into_iter().enumerate() {
            let node = self.arena.node_mut(child);
            node.num = base + (pos + offset) as u128;
            written += 1;
            self.stats.leaf_label_writes += 1;
        }
        self.stats.relabel_events += 1;
        self.stats.nodes_relabeled += written;
        self.stats.max_relabeled_in_one_op = self.stats.max_relabeled_in_one_op.max(written);
    }

    /// Split node `t` into `ceil(L / a^h)` near-equal leftmost-complete
    /// pieces spliced in its place (paper Section 2.3 for the exact
    /// single-insert case where this is `s` complete trees).
    fn split_node(&mut self, t: NodeId) -> Result<()> {
        let h = self.arena.node(t).height;
        let parent = self
            .arena
            .node(t)
            .parent
            .expect("split_node is never called on the root");
        let idx = self.index_of_child(parent, t);
        let leaves = self.dismantle(t);
        let total = leaves.len() as u64;
        let cap = self.params.subtree_capacity(h);
        let m = ceil_div(total, cap);
        let sizes = even_split(total, m);
        let mut pieces = Vec::with_capacity(m as usize);
        let mut off = 0usize;
        for &size in &sizes {
            let piece = self.build_complete(h, &leaves[off..off + size as usize]);
            self.arena.node_mut(piece).parent = Some(parent);
            pieces.push(piece);
            off += size as usize;
        }
        self.arena
            .node_mut(parent)
            .children_mut()
            .splice(idx..=idx, pieces);
        self.stats.splits += 1;
        self.stats.pieces_created += m;
        Ok(())
    }

    /// Rebuild an overfull root (paper, Algorithm 1 lines 18–20,
    /// generalized): split into near-equal height-`H` pieces, group them
    /// `a` at a time while more than `f` remain, then crown a new root.
    fn rebuild_root(&mut self) -> Result<()> {
        let total = self.n_leaves;
        let old_h = self.height;
        let plan = RootRebuild::plan(&self.params, total, old_h);
        if plan.new_height > self.params.max_height() {
            return Err(LTreeError::LabelOverflow {
                height: plan.new_height,
            });
        }
        let leaves = self.dismantle(self.root);
        debug_assert_eq!(leaves.len() as u64, total);
        let sizes = even_split(total, plan.pieces);
        let mut level: Vec<NodeId> = Vec::with_capacity(plan.pieces as usize);
        let mut off = 0usize;
        for &size in &sizes {
            level.push(self.build_complete(old_h, &leaves[off..off + size as usize]));
            off += size as usize;
        }
        let a = self.params.arity() as usize;
        let mut h = old_h;
        for _ in 0..plan.grouping_levels {
            h += 1;
            let mut next = Vec::with_capacity(ceil_div(level.len() as u64, a as u64) as usize);
            for chunk in level.chunks(a) {
                next.push(self.make_internal(h, chunk.to_vec()));
            }
            level = next;
        }
        let root = self.make_internal(plan.new_height, level);
        self.root = root;
        self.height = plan.new_height;
        self.stats.root_rebuilds += 1;
        self.relabel_subtree(root, 0)?;
        Ok(())
    }

    /// Collect the leaf sequence of `t` in document order, freeing every
    /// interior node of the subtree (including `t`).
    fn dismantle(&mut self, t: NodeId) -> Vec<NodeId> {
        let mut leaves = Vec::with_capacity(self.arena.node(t).leaf_count() as usize);
        let mut stack = vec![t];
        let mut visited = 0u64;
        while let Some(id) = stack.pop() {
            visited += 1;
            if self.arena.node(id).is_leaf() {
                leaves.push(id);
            } else {
                let children = self.arena.node(id).children();
                for &c in children.iter().rev() {
                    stack.push(c);
                }
                self.arena.free(id);
            }
        }
        self.stats.nodes_visited += visited;
        leaves
    }

    /// Free all interior nodes below (and including) `u`, leaving leaves
    /// untouched. Used by `compact`.
    fn free_internals(&mut self, u: NodeId) {
        let mut stack = vec![u];
        while let Some(id) = stack.pop() {
            if !self.arena.node(id).is_leaf() {
                let children = self.arena.node(id).children().to_vec();
                stack.extend(children);
                self.arena.free(id);
            }
        }
    }

    /// Build a leftmost-complete `a`-ary subtree of exactly `height` over
    /// the given leaves (chunks of `a^(height-1)` per child). Numbers are
    /// assigned by a later relabel pass.
    fn build_complete(&mut self, height: u8, leaves: &[NodeId]) -> NodeId {
        debug_assert!(height >= 1 && !leaves.is_empty());
        debug_assert!(leaves.len() as u64 <= self.params.subtree_capacity(height));
        if height == 1 {
            return self.make_internal(1, leaves.to_vec());
        }
        let cap = self.params.subtree_capacity(height - 1);
        let cap = usize::try_from(cap).unwrap_or(usize::MAX).max(1);
        let children: Vec<NodeId> = leaves
            .chunks(cap)
            .map(|chunk| self.build_complete(height - 1, chunk))
            .collect();
        self.make_internal(height, children)
    }

    /// Allocate an internal node at `height` adopting `children`.
    fn make_internal(&mut self, height: u8, children: Vec<NodeId>) -> NodeId {
        let mut leaf_count = 0u64;
        for &c in &children {
            leaf_count += self.arena.node(c).leaf_count();
        }
        let id = self.arena.alloc(Node::new_internal(None, height));
        for &c in &children {
            self.arena.node_mut(c).parent = Some(id);
        }
        if let NodeData::Internal {
            children: slot,
            leaf_count: lc,
        } = &mut self.arena.node_mut(id).data
        {
            *slot = children;
            *lc = leaf_count;
        }
        self.stats.nodes_visited += 1;
        id
    }

    /// Assign `num(u) = base` and recursively
    /// `num(child_i) = num(parent) + i · B^{h(child)}` (paper Algorithm 1,
    /// `Relabel`). Counts every node written.
    fn relabel_subtree(&mut self, u: NodeId, base: u128) -> Result<()> {
        let mut stack = vec![(u, base)];
        let mut written = 0u64;
        let mut leaf_writes = 0u64;
        while let Some((id, num)) = stack.pop() {
            written += 1;
            let node = self.arena.node_mut(id);
            node.num = num;
            match &node.data {
                NodeData::Leaf { .. } => leaf_writes += 1,
                NodeData::Internal { children, .. } => {
                    let child_h = node.height - 1;
                    let interval = self.params.interval(child_h)?;
                    for (i, &c) in children.iter().enumerate() {
                        stack.push((c, num + i as u128 * interval));
                    }
                }
            }
        }
        self.stats.relabel_events += 1;
        self.stats.nodes_relabeled += written;
        self.stats.leaf_label_writes += leaf_writes;
        self.stats.max_relabeled_in_one_op = self.stats.max_relabeled_in_one_op.max(written);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshot support (see `crate::snapshot` for the format)
    // ------------------------------------------------------------------

    /// Append the pre-order structural encoding of the tree to `out`.
    /// Labels are not stored: they are implicit in the structure (the
    /// paper's Section 4.2 observation) and recomputed on load.
    pub(crate) fn serialize_structure(&self, out: &mut Vec<u8>) {
        if self.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.arena.node(id);
            match &node.data {
                NodeData::Internal { children, .. } => {
                    out.push(0x01);
                    let fanout =
                        u16::try_from(children.len()).expect("fanout fits u16 (f <= 65536)");
                    out.extend_from_slice(&fanout.to_le_bytes());
                    for &c in children.iter().rev() {
                        stack.push(c);
                    }
                }
                NodeData::Leaf { deleted } => {
                    out.push(0x02);
                    out.push(u8::from(*deleted));
                }
            }
        }
    }

    /// Rebuild a tree from the pre-order events of a snapshot; the
    /// inverse of [`serialize_structure`](Self::serialize_structure).
    pub(crate) fn from_structure(
        params: Params,
        height: u8,
        events: &[crate::snapshot::StructureEvent],
    ) -> Result<(Self, Vec<LeafId>)> {
        use crate::snapshot::StructureEvent as Ev;
        let mut tree = LTree::new(params);
        if events.is_empty() {
            return Ok((tree, Vec::new()));
        }
        if height > params.max_height() {
            return Err(LTreeError::LabelOverflow { height });
        }
        tree.arena.free(tree.root);
        let corrupt = || LTreeError::InvalidParams {
            f: params.f(),
            s: params.s(),
            reason: "snapshot structure is inconsistent",
        };
        // Frame stack of open interior nodes: (id, children still owed).
        let mut frames: Vec<(NodeId, u16)> = Vec::new();
        let mut leaves = Vec::new();
        let mut root: Option<NodeId> = None;
        let mut n_leaves = 0u64;
        let mut n_live = 0u64;
        for (idx, &ev) in events.iter().enumerate() {
            // Allocate.
            let node_id = match ev {
                Ev::Interior(fanout) => {
                    if fanout == 0 {
                        return Err(corrupt()); // empty trees encode as zero events
                    }
                    tree.arena.alloc(Node::new_internal(None, 0))
                }
                Ev::Leaf(deleted) => {
                    let id = tree.arena.alloc(Node::new_leaf(None));
                    if deleted {
                        if let NodeData::Leaf { deleted: d } = &mut tree.arena.node_mut(id).data {
                            *d = true;
                        }
                    } else {
                        n_live += 1;
                    }
                    n_leaves += 1;
                    leaves.push(LeafId(id));
                    id
                }
            };
            // Attach.
            match frames.last_mut() {
                Some((parent_id, remaining)) => {
                    let parent_id = *parent_id;
                    *remaining -= 1;
                    let child_height = tree
                        .arena
                        .node(parent_id)
                        .height
                        .checked_sub(1)
                        .ok_or_else(corrupt)?;
                    if matches!(ev, Ev::Leaf(_)) && child_height != 0 {
                        return Err(corrupt()); // leaf above the leaf level
                    }
                    if matches!(ev, Ev::Interior(_)) && child_height == 0 {
                        return Err(corrupt()); // interior at the leaf level
                    }
                    tree.arena.node_mut(node_id).height = child_height;
                    tree.arena.node_mut(node_id).parent = Some(parent_id);
                    tree.arena.node_mut(parent_id).children_mut().push(node_id);
                }
                None => {
                    if idx != 0 || matches!(ev, Ev::Leaf(_)) {
                        return Err(corrupt()); // exactly one root, interior
                    }
                    tree.arena.node_mut(node_id).height = height;
                    root = Some(node_id);
                }
            }
            // Open this node's own frame, then close completed ones.
            if let Ev::Interior(fanout) = ev {
                frames.push((node_id, fanout));
            }
            while matches!(frames.last(), Some(&(_, 0))) {
                frames.pop();
            }
        }
        if !frames.is_empty() {
            return Err(corrupt()); // children owed at end of stream
        }
        let root = root.ok_or_else(corrupt)?;
        tree.root = root;
        tree.height = height;
        tree.n_leaves = n_leaves;
        tree.n_live = n_live;
        // Recompute leaf counts bottom-up and labels top-down.
        tree.recount_leaves(root);
        tree.relabel_subtree(root, 0)?;
        tree.stats.reset();
        Ok((tree, leaves))
    }

    /// Recompute `leaf_count` for every interior node under `u`.
    fn recount_leaves(&mut self, u: NodeId) -> u64 {
        let node = self.arena.node(u);
        if node.is_leaf() {
            return 1;
        }
        let children = node.children().to_vec();
        let mut total = 0u64;
        for c in children {
            total += self.recount_leaves(c);
        }
        if let NodeData::Internal { leaf_count, .. } = &mut self.arena.node_mut(u).data {
            *leaf_count = total;
        }
        total
    }

    // Crate-internal accessors for the invariant checker.
    pub(crate) fn arena_ref(&self) -> &Arena {
        &self.arena
    }

    pub(crate) fn root_id(&self) -> NodeId {
        self.root
    }

    pub(crate) fn leaf_total(&self) -> u64 {
        self.n_leaves
    }

    pub(crate) fn live_total(&self) -> u64 {
        self.n_live
    }
}

impl std::fmt::Debug for LTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LTree")
            .field("params", &self.params)
            .field("height", &self.height)
            .field("leaves", &self.n_leaves)
            .field("live", &self.n_live)
            .finish_non_exhaustive()
    }
}

/// Document-order leaf iterator (see [`LTree::leaves`]).
pub struct Leaves<'a> {
    tree: &'a LTree,
    stack: Vec<NodeId>,
}

impl Iterator for Leaves<'_> {
    type Item = LeafId;

    fn next(&mut self) -> Option<LeafId> {
        while let Some(id) = self.stack.pop() {
            let node = self.tree.arena.node(id);
            match &node.data {
                NodeData::Leaf { .. } => return Some(LeafId(id)),
                NodeData::Internal { children, .. } => {
                    for &c in children.iter().rev() {
                        self.stack.push(c);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_of(tree: &LTree) -> Vec<u128> {
        tree.leaves()
            .map(|l| tree.label(l).unwrap().get())
            .collect()
    }

    fn assert_sorted(tree: &LTree) {
        let ls = labels_of(tree);
        assert!(
            ls.windows(2).all(|w| w[0] < w[1]),
            "labels must strictly increase: {ls:?}"
        );
    }

    #[test]
    fn empty_tree() {
        let tree = LTree::new(Params::example());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.first_leaf(), None);
        assert_eq!(tree.last_leaf(), None);
        assert_eq!(tree.leaves().count(), 0);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_small() {
        for n in 0..40 {
            let (tree, leaves) = LTree::bulk_load(Params::example(), n).unwrap();
            assert_eq!(tree.len(), n);
            assert_eq!(leaves.len(), n);
            tree.check_invariants().unwrap();
            assert_sorted(&tree);
        }
    }

    #[test]
    fn bulk_load_matches_layout_module() {
        let p = Params::new(8, 2).unwrap();
        let (tree, leaves) = LTree::bulk_load(p, 100).unwrap();
        let (h, expect) = crate::layout::bulk_load_labels(&p, 100).unwrap();
        assert_eq!(tree.height(), h);
        let got: Vec<u128> = leaves
            .iter()
            .map(|&l| tree.label(l).unwrap().get())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn insert_after_keeps_order() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 8).unwrap();
        let l = tree.insert_after(leaves[2]).unwrap();
        assert!(tree.label(leaves[2]).unwrap() < tree.label(l).unwrap());
        assert!(tree.label(l).unwrap() < tree.label(leaves[3]).unwrap());
        tree.check_invariants().unwrap();
        assert_sorted(&tree);
    }

    #[test]
    fn insert_before_keeps_order() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 8).unwrap();
        let l = tree.insert_before(leaves[0]).unwrap();
        assert!(tree.label(l).unwrap() < tree.label(leaves[0]).unwrap());
        let l2 = tree.insert_before(leaves[5]).unwrap();
        assert!(tree.label(leaves[4]).unwrap() < tree.label(l2).unwrap());
        assert!(tree.label(l2).unwrap() < tree.label(leaves[5]).unwrap());
        tree.check_invariants().unwrap();
        assert_sorted(&tree);
    }

    #[test]
    fn insert_first_and_push_back_from_empty() {
        let mut tree = LTree::new(Params::example());
        let a = tree.insert_first().unwrap();
        let b = tree.push_back().unwrap();
        let c = tree.insert_first().unwrap();
        assert!(tree.label(c).unwrap() < tree.label(a).unwrap());
        assert!(tree.label(a).unwrap() < tree.label(b).unwrap());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn repeated_same_point_insertions_trigger_splits() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 8).unwrap();
        let anchor = leaves[3];
        for _ in 0..200 {
            tree.insert_after(anchor).unwrap();
            tree.check_invariants().unwrap();
        }
        assert!(tree.stats().splits > 0, "dense region must split");
        assert_eq!(
            tree.stats().cascade_splits,
            0,
            "Prop 3: no cascades for single inserts"
        );
        assert_sorted(&tree);
    }

    #[test]
    fn append_only_growth() {
        let mut tree = LTree::new(Params::example());
        let mut last = tree.push_back().unwrap();
        for _ in 0..500 {
            last = tree.insert_after(last).unwrap();
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 501);
        assert_eq!(tree.stats().cascade_splits, 0);
        assert_sorted(&tree);
        assert!(tree.height() >= 2, "tree must have grown");
    }

    #[test]
    fn prepend_only_growth() {
        let mut tree = LTree::new(Params::example());
        for _ in 0..300 {
            tree.insert_first().unwrap();
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 300);
        assert_sorted(&tree);
    }

    #[test]
    fn root_rebuild_matches_paper_exact_case() {
        // Fill a height-1 tree to its threshold: root splits into s pieces
        // and the height grows by exactly one.
        let p = Params::example(); // threshold at h=1 is f = 4
        let mut tree = LTree::new(p);
        for _ in 0..3 {
            tree.push_back().unwrap();
        }
        assert_eq!(tree.height(), 1);
        tree.push_back().unwrap(); // 4th leaf == threshold -> root rebuild
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.stats().root_rebuilds, 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn batch_insert_matches_sequential_count() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 16).unwrap();
        let batch = tree.insert_many_after(leaves[7], 50).unwrap();
        assert_eq!(batch.len(), 50);
        assert_eq!(tree.len(), 66);
        tree.check_invariants().unwrap();
        assert_sorted(&tree);
        // The batch sits between anchor and its old successor.
        assert!(tree.label(leaves[7]).unwrap() < tree.label(batch[0]).unwrap());
        assert!(tree.label(*batch.last().unwrap()).unwrap() < tree.label(leaves[8]).unwrap());
        for w in batch.windows(2) {
            assert!(tree.label(w[0]).unwrap() < tree.label(w[1]).unwrap());
        }
    }

    #[test]
    fn huge_batch_into_tiny_tree() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 2).unwrap();
        let batch = tree.insert_many_after(leaves[0], 10_000).unwrap();
        assert_eq!(batch.len(), 10_000);
        tree.check_invariants().unwrap();
        assert_sorted(&tree);
    }

    #[test]
    fn batch_of_zero_is_an_error() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 2).unwrap();
        assert_eq!(
            tree.insert_many_after(leaves[0], 0),
            Err(LTreeError::EmptyBatch)
        );
    }

    #[test]
    fn delete_is_tombstone_only() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 8).unwrap();
        let before = labels_of(&tree);
        let relabels_before = tree.stats().nodes_relabeled;
        tree.delete(leaves[3]).unwrap();
        assert_eq!(labels_of(&tree), before, "deletes never relabel");
        assert_eq!(tree.stats().nodes_relabeled, relabels_before);
        assert_eq!(tree.live_len(), 7);
        assert_eq!(tree.len(), 8);
        assert!(tree.is_deleted(leaves[3]).unwrap());
        assert_eq!(tree.delete(leaves[3]), Err(LTreeError::DeletedLeaf));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn next_prev_walk_matches_iterator() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 20).unwrap();
        tree.insert_after(leaves[10]).unwrap();
        tree.insert_before(leaves[0]).unwrap();
        let iter_order: Vec<LeafId> = tree.leaves().collect();
        // Forward walk.
        let mut walk = vec![tree.first_leaf().unwrap()];
        while let Some(next) = tree.next_leaf(*walk.last().unwrap()).unwrap() {
            walk.push(next);
        }
        assert_eq!(walk, iter_order);
        // Backward walk.
        let mut back = vec![tree.last_leaf().unwrap()];
        while let Some(prev) = tree.prev_leaf(*back.last().unwrap()).unwrap() {
            back.push(prev);
        }
        back.reverse();
        assert_eq!(back, iter_order);
    }

    #[test]
    fn compact_preserves_live_leaves() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 32).unwrap();
        for &l in leaves.iter().step_by(2) {
            tree.delete(l).unwrap();
        }
        let live_before: Vec<LeafId> = tree.live_leaves().collect();
        tree.compact().unwrap();
        assert_eq!(tree.len(), 16);
        assert_eq!(tree.live_len(), 16);
        let live_after: Vec<LeafId> = tree.live_leaves().collect();
        assert_eq!(live_before, live_after, "live LeafIds survive compaction");
        // Tombstoned ids are now stale.
        assert!(!tree.contains(leaves[0]));
        assert!(tree.contains(leaves[1]));
        tree.check_invariants().unwrap();
        assert_sorted(&tree);
    }

    #[test]
    fn compact_empty_tree() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 4).unwrap();
        for l in leaves {
            tree.delete(l).unwrap();
        }
        tree.compact().unwrap();
        assert!(tree.is_empty());
        tree.check_invariants().unwrap();
        tree.push_back().unwrap();
        tree.check_invariants().unwrap();
    }

    #[test]
    fn stale_handles_are_rejected() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 4).unwrap();
        let (other, other_leaves) = LTree::bulk_load(Params::example(), 4).unwrap();
        drop(other);
        // A LeafId from another tree may or may not alias a slot; the
        // arena generation makes the non-aliasing case safe, and the
        // type-level contract documents the rest. At minimum, internal
        // node ids and freed ids must be rejected:
        tree.delete(leaves[0]).unwrap();
        tree.compact().unwrap();
        assert!(matches!(
            tree.label(leaves[0]),
            Err(LTreeError::UnknownHandle)
        ));
        let _ = other_leaves;
    }

    #[test]
    fn labels_fit_label_space() {
        let (mut tree, _) = LTree::bulk_load(Params::new(8, 2).unwrap(), 100).unwrap();
        let mut anchor = tree.first_leaf().unwrap();
        for i in 0..500 {
            anchor = if i % 3 == 0 {
                tree.insert_after(anchor).unwrap()
            } else {
                anchor
            };
            tree.push_back().unwrap();
        }
        let space = tree.params().interval(tree.height()).unwrap();
        for l in tree.leaves() {
            assert!(tree.label(l).unwrap().get() < space);
        }
        assert!(tree.label_space_bits() <= 128);
    }

    #[test]
    fn stats_accumulate_sanely() {
        let (mut tree, leaves) = LTree::bulk_load(Params::example(), 8).unwrap();
        assert_eq!(tree.stats().leaves_inserted, 0, "bulk load resets stats");
        tree.insert_after(leaves[0]).unwrap();
        assert_eq!(tree.stats().inserts, 1);
        assert_eq!(tree.stats().leaves_inserted, 1);
        assert!(tree.stats().count_updates >= u64::from(tree.height()));
        tree.reset_stats();
        assert_eq!(tree.stats().inserts, 0);
    }

    #[test]
    fn many_params_smoke() {
        for p in Params::presets() {
            let (mut tree, leaves) = LTree::bulk_load(p, 64).unwrap();
            let mut anchor = leaves[31];
            for _ in 0..300 {
                anchor = tree.insert_after(anchor).unwrap();
            }
            tree.check_invariants().unwrap();
            assert_sorted(&tree);
            assert_eq!(tree.stats().cascade_splits, 0);
        }
    }
}
