//! A tiny seeded PRNG for workload drivers and randomized tests.
//!
//! The workspace runs in dependency-free environments, so the generators
//! and test harnesses use this [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! implementation instead of an external `rand`. Quality is more than
//! enough for workload shaping; determinism per seed is the property the
//! experiments actually rely on.

/// SplitMix64: 64 bits of state, one multiply-xorshift round per draw.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics when the range is empty, mirroring `rand`'s behaviour.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_and_bools_are_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket badly skewed: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(0).gen_range(5..5);
    }
}
