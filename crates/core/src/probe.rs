//! Call-level probes for the ordered-labeling trait family.
//!
//! [`SchemeStats`] counts *items* and *label/node
//! touches* — the paper's cost currency. What it deliberately does not
//! count is **trait-method traffic**: how many `OrderedLabelingMut` /
//! `BatchLabeling` calls a driver issued to get those items in. That
//! number is the whole point of splice-driven bulk loading (one batch
//! call per sibling run instead of one insert per tag), so tests and
//! benches wrap a scheme in [`CallCounter`] and read
//! [`CallCounts`] to assert the reduction.

use std::cmp::Ordering;

use crate::error::Result;
use crate::scheme::{
    BatchLabeling, Instrumented, LeafHandle, OrderedLabeling, OrderedLabelingMut, SchemeStats,
    Splice, SpliceResult,
};

/// Trait-method call counters recorded by [`CallCounter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallCounts {
    /// `bulk_build` calls.
    pub bulk_builds: u64,
    /// Single-item insert calls (`insert_first` / `insert_after` /
    /// `insert_before`).
    pub single_inserts: u64,
    /// Single-item `delete` calls.
    pub single_deletes: u64,
    /// Native batch calls (`insert_many_after` / `delete_run` /
    /// `splice`), each counted once regardless of batch size.
    pub batch_calls: u64,
}

impl CallCounts {
    /// Every write-side call: the number the splice-driven bulk paths
    /// minimize.
    pub fn mutation_calls(&self) -> u64 {
        self.bulk_builds + self.single_inserts + self.single_deletes + self.batch_calls
    }
}

/// A transparent wrapper implementing the whole trait family by
/// forwarding to the inner scheme while counting every write-side call.
/// Batch methods forward to the inner scheme's *native* batch path (they
/// never decay into counted singles), so the counts reflect exactly what
/// the caller issued.
#[derive(Debug)]
pub struct CallCounter<S> {
    inner: S,
    counts: CallCounts,
}

impl<S> CallCounter<S> {
    /// Wrap `inner` with zeroed counters.
    pub fn new(inner: S) -> Self {
        CallCounter {
            inner,
            counts: CallCounts::default(),
        }
    }

    /// The calls recorded so far.
    pub fn counts(&self) -> CallCounts {
        self.counts
    }

    /// Zero the call counters (the inner scheme is untouched).
    pub fn reset_counts(&mut self) {
        self.counts = CallCounts::default();
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the counters.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: OrderedLabeling> OrderedLabeling for CallCounter<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        self.inner.label_of(h)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn live_len(&self) -> usize {
        self.inner.live_len()
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.inner.first_in_order()
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        self.inner.next_in_order(h)
    }

    fn label_space_bits(&self) -> u32 {
        self.inner.label_space_bits()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn compare(&self, a: LeafHandle, b: LeafHandle) -> Result<Ordering> {
        self.inner.compare(a, b)
    }
}

impl<S: OrderedLabelingMut> OrderedLabelingMut for CallCounter<S> {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        self.counts.bulk_builds += 1;
        self.inner.bulk_build(n)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        self.counts.single_inserts += 1;
        self.inner.insert_first()
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        self.counts.single_inserts += 1;
        self.inner.insert_after(anchor)
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        self.counts.single_inserts += 1;
        self.inner.insert_before(anchor)
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        self.counts.single_deletes += 1;
        self.inner.delete(h)
    }
}

impl<S: BatchLabeling> BatchLabeling for CallCounter<S> {
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        self.counts.batch_calls += 1;
        self.inner.insert_many_after(anchor, k)
    }

    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        self.counts.batch_calls += 1;
        self.inner.delete_run(first, count)
    }

    fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
        self.counts.batch_calls += 1;
        self.inner.splice(op)
    }
}

impl<S: Instrumented> Instrumented for CallCounter<S> {
    fn scheme_stats(&self) -> SchemeStats {
        self.inner.scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        self.inner.reset_scheme_stats()
    }

    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        self.inner.stats_breakdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SpliceBuilder;
    use crate::{LTree, Params};

    #[test]
    fn counts_singles_and_batches_separately() {
        let mut c = CallCounter::new(LTree::new(Params::example()));
        let hs = c.bulk_build(8).unwrap();
        let h = c.insert_after(hs[0]).unwrap();
        c.insert_before(h).unwrap();
        c.delete(h).unwrap();
        c.insert_many_after(hs[3], 10).unwrap();
        c.splice(Splice::DeleteRun {
            first: hs[5],
            count: 2,
        })
        .unwrap();
        let counts = c.counts();
        assert_eq!(counts.bulk_builds, 1);
        assert_eq!(counts.single_inserts, 2);
        assert_eq!(counts.single_deletes, 1);
        assert_eq!(counts.batch_calls, 2, "batches count once each");
        assert_eq!(counts.mutation_calls(), 6);
        // Stats pass straight through to the inner scheme.
        assert!(c.scheme_stats().inserts >= 12);
        c.reset_counts();
        assert_eq!(c.counts(), CallCounts::default());
        assert!(c.scheme_stats().inserts >= 12, "inner stats untouched");
    }

    #[test]
    fn splice_builder_costs_one_call_per_run() {
        let mut c = CallCounter::new(LTree::new(Params::example()));
        let hs = c.bulk_build(4).unwrap();
        c.reset_counts();
        let mut b = SpliceBuilder::new();
        b.push_run(hs[0], 5);
        b.push_run(hs[2], 7);
        b.apply(&mut c).unwrap();
        assert_eq!(c.counts().batch_calls, 2);
        assert_eq!(c.counts().single_inserts, 0);
    }
}
