//! L-Tree node representation.

use crate::arena::NodeId;

/// One node of the materialized L-Tree.
#[derive(Debug)]
pub struct Node {
    /// Parent link (`None` for the root).
    pub parent: Option<NodeId>,
    /// The node's number `num(v)` — for a leaf this is its label.
    /// Maintained so that `num(child_i) = num(parent) + i · B^{h(child)}`
    /// holds globally (see `invariants`).
    pub num: u128,
    /// Height: leaves are 0, parents of leaves are 1, …
    pub height: u8,
    /// Kind-specific payload.
    pub data: NodeData,
}

/// Internal/leaf payload.
#[derive(Debug)]
pub enum NodeData {
    /// An internal node: ordered children plus the leaf-descendant count
    /// `L(v)` that drives the split criterion.
    Internal {
        /// Ordered child list (fanout is bounded by `f`).
        children: Vec<NodeId>,
        /// Number of leaf descendants, tombstones included.
        leaf_count: u64,
    },
    /// A leaf carrying one tag of the document.
    Leaf {
        /// Tombstone flag: deletions never relabel (paper, Section 2.3).
        deleted: bool,
    },
}

impl Node {
    /// Fresh leaf (label assigned by a later relabel pass).
    pub fn new_leaf(parent: Option<NodeId>) -> Node {
        Node {
            parent,
            num: 0,
            height: 0,
            data: NodeData::Leaf { deleted: false },
        }
    }

    /// Fresh internal node at `height` with no children yet.
    pub fn new_internal(parent: Option<NodeId>, height: u8) -> Node {
        Node {
            parent,
            num: 0,
            height,
            data: NodeData::Internal {
                children: Vec::new(),
                leaf_count: 0,
            },
        }
    }

    /// Is this a leaf?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.data, NodeData::Leaf { .. })
    }

    /// Leaf-descendant count: 1 for leaves, `L(v)` for internal nodes.
    #[inline]
    pub fn leaf_count(&self) -> u64 {
        match &self.data {
            NodeData::Internal { leaf_count, .. } => *leaf_count,
            NodeData::Leaf { .. } => 1,
        }
    }

    /// Child list of an internal node; panics on leaves (internal misuse).
    #[inline]
    pub fn children(&self) -> &[NodeId] {
        match &self.data {
            NodeData::Internal { children, .. } => children,
            NodeData::Leaf { .. } => panic!("children() on a leaf"),
        }
    }

    /// Mutable child list; panics on leaves.
    #[inline]
    pub fn children_mut(&mut self) -> &mut Vec<NodeId> {
        match &mut self.data {
            NodeData::Internal { children, .. } => children,
            NodeData::Leaf { .. } => panic!("children_mut() on a leaf"),
        }
    }

    /// Capacity of the child vector (memory accounting).
    pub fn children_capacity(&self) -> usize {
        match &self.data {
            NodeData::Internal { children, .. } => children.capacity(),
            NodeData::Leaf { .. } => 0,
        }
    }

    /// Tombstone status; `false` for internal nodes.
    #[inline]
    pub fn is_deleted(&self) -> bool {
        matches!(self.data, NodeData::Leaf { deleted: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = Node::new_leaf(None);
        assert!(l.is_leaf());
        assert_eq!(l.leaf_count(), 1);
        assert!(!l.is_deleted());

        let i = Node::new_internal(None, 3);
        assert!(!i.is_leaf());
        assert_eq!(i.height, 3);
        assert_eq!(i.leaf_count(), 0);
        assert!(i.children().is_empty());
    }

    #[test]
    #[should_panic(expected = "children() on a leaf")]
    fn children_on_leaf_panics() {
        let l = Node::new_leaf(None);
        let _ = l.children();
    }
}
