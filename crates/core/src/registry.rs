//! Scheme construction by name: [`SchemeRegistry`] and [`SchemeConfig`].
//!
//! Experiments, examples and the XML layer used to hard-code match arms
//! over concrete scheme types; the registry replaces those with named
//! factories producing `Box<dyn DynScheme>`, so a multi-scheme sweep is
//! a list of spec strings:
//!
//! ```
//! use ltree_core::registry::SchemeRegistry;
//! use ltree_core::OrderedLabelingMut;
//!
//! let reg = SchemeRegistry::with_builtin(); // "ltree" is always present
//! let mut scheme = reg.build("ltree(4,2)").unwrap();
//! let handles = scheme.bulk_build(8).unwrap();
//! assert_eq!(handles.len(), 8);
//! ```
//!
//! A *spec* is a scheme name optionally followed by parenthesized
//! numeric arguments — `"ltree"`, `"ltree(8,2)"`, `"gap(64)"`,
//! `"list-label(16,0.8)"`. Argument interpretation belongs to the
//! factory registered for the name; arguments override the corresponding
//! [`SchemeConfig`] fields. Downstream crates register their schemes
//! with [`SchemeRegistry::register`] (the baselines and virtual crates
//! each expose a `register` function; the facade crate composes them
//! into a `default_registry()`).

use crate::error::{LTreeError, Result};
use crate::params::Params;
use crate::scheme::DynScheme;

/// Construction-time knobs shared by every scheme factory. Spec
/// arguments, when present, override the matching field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeConfig {
    /// `(f, s)` shape parameters for the L-Tree variants.
    pub params: Params,
    /// Gap width for the fixed-gap baseline.
    pub gap: u128,
    /// Initial universe width (bits) for the list-labeling baseline.
    pub list_bits: u32,
    /// Density threshold `τ ∈ (0.5, 1)` for the list-labeling baseline.
    pub list_tau: f64,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            params: Params::example(),
            gap: 32,
            list_bits: 16,
            list_tau: 0.75,
        }
    }
}

impl SchemeConfig {
    /// A config with the given L-Tree parameters and default baselines.
    pub fn with_params(params: Params) -> Self {
        SchemeConfig {
            params,
            ..Self::default()
        }
    }

    /// Resolve `(f, s)` from spec arguments: no args keeps
    /// `self.params`, two args build fresh [`Params`]. Shared by every
    /// L-Tree-shaped factory.
    pub fn params_from_args(&self, spec: &str, args: &[f64]) -> Result<Params> {
        match args {
            [] => Ok(self.params),
            [f, s] => {
                let (f, s) = (as_u32(spec, *f)?, as_u32(spec, *s)?);
                Params::new(f, s)
            }
            _ => Err(LTreeError::InvalidSpec {
                spec: spec.to_owned(),
                reason: "expected no arguments or (f,s)",
            }),
        }
    }
}

/// Convert one spec argument to an integer, rejecting fractions.
pub fn as_u32(spec: &str, v: f64) -> Result<u32> {
    if v.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&v) {
        Ok(v as u32)
    } else {
        Err(LTreeError::InvalidSpec {
            spec: spec.to_owned(),
            reason: "argument must be a non-negative integer",
        })
    }
}

/// A factory producing a boxed scheme from the shared config and the
/// spec arguments (empty when the spec had no parentheses).
pub type SchemeFactory =
    Box<dyn Fn(&SchemeConfig, &[f64]) -> Result<Box<dyn DynScheme>> + Send + Sync>;

struct Entry {
    name: &'static str,
    summary: &'static str,
    factory: SchemeFactory,
}

/// Named scheme factories. See the [module docs](self).
#[derive(Default)]
pub struct SchemeRegistry {
    entries: Vec<Entry>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry holding the schemes this crate itself provides
    /// (currently the materialized `"ltree"`).
    pub fn with_builtin() -> Self {
        let mut reg = Self::new();
        reg.register(
            "ltree",
            "materialized L-Tree (paper §2); args: (f,s)",
            |cfg, args| {
                let params = cfg.params_from_args("ltree", args)?;
                Ok(Box::new(crate::LTree::new(params)))
            },
        );
        reg
    }

    /// Register (or replace) a factory under `name`.
    pub fn register<F>(&mut self, name: &'static str, summary: &'static str, factory: F)
    where
        F: Fn(&SchemeConfig, &[f64]) -> Result<Box<dyn DynScheme>> + Send + Sync + 'static,
    {
        self.entries.retain(|e| e.name != name);
        self.entries.push(Entry {
            name,
            summary,
            factory: Box::new(factory),
        });
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// `(name, summary)` pairs, in registration order.
    pub fn summaries(&self) -> Vec<(&'static str, &'static str)> {
        self.entries.iter().map(|e| (e.name, e.summary)).collect()
    }

    /// Whether `name` (the bare name, not a spec) is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Build a scheme from a spec string with the default config.
    pub fn build(&self, spec: &str) -> Result<Box<dyn DynScheme>> {
        self.build_with(spec, &SchemeConfig::default())
    }

    /// Build a scheme from a spec string; spec arguments override the
    /// matching `config` fields.
    pub fn build_with(&self, spec: &str, config: &SchemeConfig) -> Result<Box<dyn DynScheme>> {
        let (name, args) = parse_spec(spec)?;
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| LTreeError::UnknownScheme {
                name: name.to_owned(),
            })?;
        (entry.factory)(config, &args)
    }
}

impl std::fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Split `"name(a,b)"` into the name and its numeric arguments.
fn parse_spec(spec: &str) -> Result<(&str, Vec<f64>)> {
    let spec_trim = spec.trim();
    let bad = |reason: &'static str| LTreeError::InvalidSpec {
        spec: spec.to_owned(),
        reason,
    };
    let Some(open) = spec_trim.find('(') else {
        if spec_trim.is_empty() {
            return Err(bad("empty scheme spec"));
        }
        return Ok((spec_trim, Vec::new()));
    };
    let Some(rest) = spec_trim.strip_suffix(')') else {
        return Err(bad("unbalanced parentheses"));
    };
    let name = spec_trim[..open].trim();
    if name.is_empty() {
        return Err(bad("missing scheme name"));
    }
    let inner = &rest[open + 1..];
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        for part in inner.split(',') {
            let v: f64 = part
                .trim()
                .parse()
                .map_err(|_| bad("arguments must be numbers"))?;
            args.push(v);
        }
    }
    Ok((name, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Instrumented, OrderedLabeling, OrderedLabelingMut};

    #[test]
    fn builtin_ltree_builds_with_and_without_args() {
        let reg = SchemeRegistry::with_builtin();
        let mut plain = reg.build("ltree").unwrap();
        assert_eq!(plain.name(), "ltree");
        plain.bulk_build(4).unwrap();
        let mut wide = reg.build(" ltree(16, 4) ").unwrap();
        wide.bulk_build(4).unwrap();
        assert_eq!(wide.scheme_stats().inserts, 0);
    }

    #[test]
    fn unknown_and_malformed_specs_are_typed_errors() {
        let reg = SchemeRegistry::with_builtin();
        assert!(matches!(
            reg.build("nope"),
            Err(LTreeError::UnknownScheme { .. })
        ));
        assert!(matches!(
            reg.build("ltree(4"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        assert!(matches!(
            reg.build("ltree(4,2,1)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        assert!(matches!(
            reg.build("ltree(4.5,2)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        assert!(matches!(reg.build(""), Err(LTreeError::InvalidSpec { .. })));
        assert!(matches!(
            reg.build("(4,2)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        // Invalid params surface the params error, not a panic.
        assert!(matches!(
            reg.build("ltree(5,2)"),
            Err(LTreeError::InvalidParams { .. })
        ));
    }

    #[test]
    fn registration_replaces_and_lists() {
        let mut reg = SchemeRegistry::with_builtin();
        assert!(reg.contains("ltree"));
        reg.register("ltree", "replacement", |cfg, _| {
            Ok(Box::new(crate::LTree::new(cfg.params)))
        });
        assert_eq!(reg.names(), vec!["ltree"]);
        assert_eq!(reg.summaries()[0].1, "replacement");
    }

    #[test]
    fn config_override_applies_when_spec_has_no_args() {
        let reg = SchemeRegistry::with_builtin();
        let cfg = SchemeConfig::with_params(Params::new(16, 4).unwrap());
        let mut wide = reg.build_with("ltree", &cfg).unwrap();
        wide.bulk_build(1000).unwrap();
        let mut narrow = reg.build("ltree(4,2)").unwrap();
        narrow.bulk_build(1000).unwrap();
        // f = 16 packs 1000 leaves into a shallower tree than f = 4:
        // fewer levels means a smaller label space.
        assert!(
            wide.label_space_bits() < narrow.label_space_bits(),
            "the config override must reach the factory ({} vs {})",
            wide.label_space_bits(),
            narrow.label_space_bits()
        );
    }
}
