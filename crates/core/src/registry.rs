//! Scheme construction by name: [`SchemeRegistry`] and [`SchemeConfig`].
//!
//! Experiments, examples and the XML layer used to hard-code match arms
//! over concrete scheme types; the registry replaces those with named
//! factories producing `Box<dyn DynScheme>`, so a multi-scheme sweep is
//! a list of spec strings:
//!
//! ```
//! use ltree_core::registry::SchemeRegistry;
//! use ltree_core::OrderedLabelingMut;
//!
//! let reg = SchemeRegistry::with_builtin(); // "ltree" is always present
//! let mut scheme = reg.build("ltree(4,2)").unwrap();
//! let handles = scheme.bulk_build(8).unwrap();
//! assert_eq!(handles.len(), 8);
//! ```
//!
//! # Spec-string grammar
//!
//! A *spec* is a scheme name optionally followed by parenthesized
//! arguments. Arguments are split at **top-level** commas (commas inside
//! nested parentheses belong to the nested spec) and each argument is a
//! number, a `key=value` option, a bare flag, or — recursively — another
//! spec:
//!
//! ```text
//! spec  ::= name | name "(" args ")"
//! args  ::= arg ("," arg)*
//! arg   ::= number | option | spec  // nested specs only for composite schemes
//! option ::= key "=" value | flag   // trailing; consumed via SpecOptions
//! name  ::= [^(),=]+                // trimmed; no parens, commas or '='
//! ```
//!
//! Argument interpretation belongs to the factory registered for the
//! name; numeric arguments override the corresponding [`SchemeConfig`]
//! fields, and trailing options are consumed through [`SpecOptions`]
//! (unknown or malformed options are typed
//! [`LTreeError::InvalidOption`] errors naming the offending key — the
//! option table lives next to the grammar table in `ARCHITECTURE.md`).
//! The workspace ships these schemes (crates in parentheses register
//! themselves via their `register` function; the facade crate composes
//! them all into `default_registry()`):
//!
//! | spec | scheme | arguments |
//! |------|--------|-----------|
//! | `ltree` | materialized L-Tree, paper §2 (`ltree-core`) | `(f,s)` |
//! | `ltree-virtual`, `virtual` | virtual L-Tree, paper §4.2 (`ltree-virtual`) | `(f,s)` |
//! | `naive` | consecutive integers, paper Fig. 1 (`labeling-baselines`) | — |
//! | `gap` | fixed-gap midpoint labels (`labeling-baselines`) | `(gap)` |
//! | `list-label` | even-redistribution list labeling (`labeling-baselines`) | `(bits)` or `(bits,tau)` |
//! | `sharded` | segment-partitioned composite (`ltree-sharded`) | `(inner)`, `(n,inner)`, or `(n,split,merge,inner)` |
//!
//! Composite schemes take another spec as an argument and are built
//! recursively against the same registry: `sharded(4,ltree(4,2))` is a
//! sharded store over four materialized L-Trees, and
//! `sharded(2,sharded(2,gap))` nests. Plain (numeric-only) factories
//! registered with [`SchemeRegistry::register`] reject nested-spec
//! arguments; composite factories are registered with
//! [`SchemeRegistry::register_composite`] and receive the registry
//! itself, plus the raw [`SpecArg`] list, to build their inners.
//!
//! Unknown names and malformed specs fail with
//! [`LTreeError::UnknownScheme`] / [`LTreeError::InvalidSpec`], whose
//! messages point back at this grammar.

use std::sync::Arc;

use crate::error::{LTreeError, Result};
use crate::params::Params;
use crate::scheme::DynScheme;

/// Construction-time knobs shared by every scheme factory. Spec
/// arguments, when present, override the matching field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeConfig {
    /// `(f, s)` shape parameters for the L-Tree variants.
    pub params: Params,
    /// Gap width for the fixed-gap baseline.
    pub gap: u128,
    /// Initial universe width (bits) for the list-labeling baseline.
    pub list_bits: u32,
    /// Density threshold `τ ∈ (0.5, 1)` for the list-labeling baseline.
    pub list_tau: f64,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            params: Params::example(),
            gap: 32,
            list_bits: 16,
            list_tau: 0.75,
        }
    }
}

impl SchemeConfig {
    /// A config with the given L-Tree parameters and default baselines.
    pub fn with_params(params: Params) -> Self {
        SchemeConfig {
            params,
            ..Self::default()
        }
    }

    /// Resolve `(f, s)` from spec arguments: no args keeps
    /// `self.params`, two args build fresh [`Params`]. Shared by every
    /// L-Tree-shaped factory.
    pub fn params_from_args(&self, spec: &str, args: &[f64]) -> Result<Params> {
        match args {
            [] => Ok(self.params),
            [f, s] => {
                let (f, s) = (as_u32(spec, *f)?, as_u32(spec, *s)?);
                Params::new(f, s)
            }
            _ => Err(LTreeError::InvalidSpec {
                spec: spec.to_owned(),
                reason: "expected no arguments or (f,s)",
            }),
        }
    }
}

/// Convert one spec argument to an integer, rejecting fractions.
pub fn as_u32(spec: &str, v: f64) -> Result<u32> {
    if v.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&v) {
        Ok(v as u32)
    } else {
        Err(LTreeError::InvalidSpec {
            spec: spec.to_owned(),
            reason: "argument must be a non-negative integer",
        })
    }
}

/// One parsed spec argument: a number, a `key=value` option, or — for
/// composite schemes like `sharded(4,ltree(4,2))` — a nested spec
/// string. See the [grammar](self#spec-string-grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecArg {
    /// A numeric argument (`4`, `0.8`).
    Num(f64),
    /// A nested scheme spec (`ltree(4,2)`, `gap`), built recursively by
    /// composite factories — or a bare word a factory may interpret as a
    /// flag option (`coalesce`).
    Spec(String),
    /// A `key=value` option (`conns=4`). Interpretation belongs to the
    /// factory; [`SpecOptions`] is the standard way to consume these.
    Opt {
        /// The option key (left of `=`), trimmed.
        key: String,
        /// The raw value (right of `=`), trimmed.
        value: String,
    },
}

impl SpecArg {
    /// The numeric value, if this argument is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            SpecArg::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The nested spec, if this argument is one.
    pub fn as_spec(&self) -> Option<&str> {
        match self {
            SpecArg::Spec(s) => Some(s),
            _ => None,
        }
    }
}

/// A typed view over the trailing `key=value` / bare-flag arguments of a
/// spec, for composite factories that accept options
/// (`remote(host:port,conns=4,retries=2,coalesce)`).
///
/// Factories `take_*` the keys they know, then call
/// [`finish`](Self::finish), which rejects anything left over — so an
/// unknown or misspelled option is a typed
/// [`LTreeError::InvalidOption`] naming the offending key, never a
/// silent no-op. Every error points back at the spec-grammar table in
/// `ARCHITECTURE.md`.
///
/// ```
/// use ltree_core::registry::{SpecArg, SpecOptions};
///
/// let args = [
///     SpecArg::Opt { key: "conns".into(), value: "4".into() },
///     SpecArg::Spec("coalesce".into()), // a bare flag
/// ];
/// let mut opts = SpecOptions::parse("remote", &args).unwrap();
/// assert_eq!(opts.take_u32("conns").unwrap(), Some(4));
/// assert!(opts.take_flag("coalesce").unwrap());
/// assert!(!opts.take_flag("reconnect").unwrap()); // absent flag
/// opts.finish().unwrap(); // nothing unknown left behind
/// ```
#[derive(Debug)]
pub struct SpecOptions {
    spec: String,
    /// `(key, value)`; `None` value marks a bare flag.
    entries: Vec<(String, Option<String>)>,
}

impl SpecOptions {
    /// Interpret `args` as an option list: [`SpecArg::Opt`] entries and
    /// bare words (flags). Numbers, nested specs and duplicate keys are
    /// rejected here — positional arguments must come *before* the
    /// options and be consumed by the factory first.
    pub fn parse(spec: &str, args: &[SpecArg]) -> Result<SpecOptions> {
        let mut entries: Vec<(String, Option<String>)> = Vec::with_capacity(args.len());
        for arg in args {
            let (key, value) = match arg {
                SpecArg::Opt { key, value } => (key.clone(), Some(value.clone())),
                SpecArg::Spec(word) if !word.contains('(') => (word.clone(), None),
                other => {
                    return Err(LTreeError::InvalidOption {
                        spec: spec.to_owned(),
                        key: match other {
                            SpecArg::Num(v) => v.to_string(),
                            SpecArg::Spec(s) => s.clone(),
                            SpecArg::Opt { key, .. } => key.clone(),
                        },
                        reason: "expected key=value options or bare flags here \
                                 (positional arguments come first)",
                    })
                }
            };
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(LTreeError::InvalidOption {
                    spec: spec.to_owned(),
                    key,
                    reason: "duplicate option",
                });
            }
            entries.push((key, value));
        }
        Ok(SpecOptions {
            spec: spec.to_owned(),
            entries,
        })
    }

    /// The spec (or scheme name) these options were parsed for — useful
    /// when a consumer mints its own [`LTreeError::InvalidOption`].
    pub fn spec(&self) -> &str {
        &self.spec
    }

    fn take(&mut self, key: &str) -> Option<Option<String>> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    fn bad(&self, key: &str, reason: &'static str) -> LTreeError {
        LTreeError::InvalidOption {
            spec: self.spec.clone(),
            key: key.to_owned(),
            reason,
        }
    }

    /// Consume a bare flag (`coalesce`). Present → `true`; absent →
    /// `false`; present *with* a value (`coalesce=1`) → error.
    pub fn take_flag(&mut self, key: &str) -> Result<bool> {
        match self.take(key) {
            None => Ok(false),
            Some(None) => Ok(true),
            Some(Some(_)) => Err(self.bad(key, "is a bare flag and takes no value")),
        }
    }

    /// Consume a `key=N` option as a `u32`. Absent → `Ok(None)`.
    pub fn take_u32(&mut self, key: &str) -> Result<Option<u32>> {
        match self.take_u64(key)? {
            None => Ok(None),
            Some(v) if v <= u32::MAX as u64 => Ok(Some(v as u32)),
            Some(_) => Err(self.bad(key, "value out of range")),
        }
    }

    /// Consume a `key=N` option as a `u64`. Absent → `Ok(None)`.
    pub fn take_u64(&mut self, key: &str) -> Result<Option<u64>> {
        match self.take(key) {
            None => Ok(None),
            Some(None) => Err(self.bad(key, "needs a value (key=N)")),
            Some(Some(v)) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| self.bad(key, "expected a non-negative integer value")),
        }
    }

    /// Consume a `key=word` option as a raw string. Absent → `Ok(None)`.
    pub fn take_str(&mut self, key: &str) -> Result<Option<String>> {
        match self.take(key) {
            None => Ok(None),
            Some(None) => Err(self.bad(key, "needs a value (key=word)")),
            Some(Some(v)) => Ok(Some(v)),
        }
    }

    /// Reject anything the factory did not consume: the first leftover
    /// key becomes an "unknown option" error naming it.
    pub fn finish(self) -> Result<()> {
        match self.entries.into_iter().next() {
            None => Ok(()),
            Some((key, _)) => Err(LTreeError::InvalidOption {
                spec: self.spec,
                key,
                reason: "unknown option for this scheme",
            }),
        }
    }
}

/// A factory producing a boxed scheme from the shared config and the
/// numeric spec arguments (empty when the spec had no parentheses).
pub type SchemeFactory =
    Box<dyn Fn(&SchemeConfig, &[f64]) -> Result<Box<dyn DynScheme>> + Send + Sync>;

/// A composite factory: receives the registry itself (to build nested
/// specs recursively) and the raw argument list, numbers and nested
/// specs alike.
pub type CompositeFactory = Box<
    dyn Fn(&SchemeRegistry, &SchemeConfig, &[SpecArg]) -> Result<Box<dyn DynScheme>> + Send + Sync,
>;

enum Factory {
    Plain(SchemeFactory),
    Composite(CompositeFactory),
}

struct Entry {
    name: &'static str,
    summary: &'static str,
    factory: Factory,
}

/// Named scheme factories. See the [module docs](self) for the
/// spec-string grammar and the table of shipped schemes.
///
/// Cloning is cheap (entries are shared behind [`Arc`]): composite
/// schemes clone the registry into their own factories so they can
/// build fresh inner schemes later (e.g. when a shard splits).
#[derive(Default, Clone)]
pub struct SchemeRegistry {
    entries: Vec<Arc<Entry>>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry holding the schemes this crate itself provides
    /// (currently the materialized `"ltree"`).
    pub fn with_builtin() -> Self {
        let mut reg = Self::new();
        reg.register(
            "ltree",
            "materialized L-Tree (paper §2); args: (f,s)",
            |cfg, args| {
                let params = cfg.params_from_args("ltree", args)?;
                Ok(Box::new(crate::LTree::new(params)))
            },
        );
        reg
    }

    /// Register (or replace) a plain factory under `name`. Plain
    /// factories take numeric arguments only; a nested-spec argument is
    /// rejected before the factory runs.
    pub fn register<F>(&mut self, name: &'static str, summary: &'static str, factory: F)
    where
        F: Fn(&SchemeConfig, &[f64]) -> Result<Box<dyn DynScheme>> + Send + Sync + 'static,
    {
        self.insert(name, summary, Factory::Plain(Box::new(factory)));
    }

    /// Register (or replace) a composite factory under `name`. Composite
    /// factories receive the registry itself and the raw [`SpecArg`]
    /// list, so they can recursively build nested specs
    /// (`sharded(4,ltree(4,2))`).
    pub fn register_composite<F>(&mut self, name: &'static str, summary: &'static str, factory: F)
    where
        F: Fn(&SchemeRegistry, &SchemeConfig, &[SpecArg]) -> Result<Box<dyn DynScheme>>
            + Send
            + Sync
            + 'static,
    {
        self.insert(name, summary, Factory::Composite(Box::new(factory)));
    }

    fn insert(&mut self, name: &'static str, summary: &'static str, factory: Factory) {
        self.entries.retain(|e| e.name != name);
        self.entries.push(Arc::new(Entry {
            name,
            summary,
            factory,
        }));
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// `(name, summary)` pairs, in registration order.
    pub fn summaries(&self) -> Vec<(&'static str, &'static str)> {
        self.entries.iter().map(|e| (e.name, e.summary)).collect()
    }

    /// Whether `name` (the bare name, not a spec) is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Build a scheme from a spec string with the default config.
    pub fn build(&self, spec: &str) -> Result<Box<dyn DynScheme>> {
        self.build_with(spec, &SchemeConfig::default())
    }

    /// Build a scheme from a spec string; numeric spec arguments
    /// override the matching `config` fields, nested-spec arguments are
    /// resolved recursively against this registry.
    pub fn build_with(&self, spec: &str, config: &SchemeConfig) -> Result<Box<dyn DynScheme>> {
        let (name, args) = parse_spec(spec)?;
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| LTreeError::UnknownScheme {
                name: name.to_owned(),
            })?;
        match &entry.factory {
            Factory::Plain(f) => {
                let mut nums = Vec::with_capacity(args.len());
                for a in &args {
                    match a {
                        SpecArg::Num(v) => nums.push(*v),
                        SpecArg::Spec(_) | SpecArg::Opt { .. } => {
                            return Err(LTreeError::InvalidSpec {
                                spec: spec.to_owned(),
                                reason: "arguments must be numbers (nested specs and \
                                         key=value options need a composite scheme)",
                            })
                        }
                    }
                }
                f(config, &nums)
            }
            Factory::Composite(f) => f(self, config, &args),
        }
    }

    /// Validate a spec string against this registry **without building
    /// anything**: parse it through the live grammar, check that the
    /// top-level name is registered, and recurse into every argument
    /// that is itself a parenthesized spec (`sharded(2,ltree(4,2))`
    /// validates `ltree(4,2)` too). Bare-word arguments (`inner`,
    /// flag names, `host:port` addresses) are factory-specific and
    /// accepted here; numeric ranges are likewise only checked at
    /// build time.
    ///
    /// `cargo xtask lint` runs this over every spec string quoted in
    /// rustdoc and ARCHITECTURE.md, so documented examples cannot rot
    /// away from the grammar the registry actually parses.
    pub fn validate_spec(&self, spec: &str) -> Result<()> {
        let (name, args) = parse_spec(spec)?;
        if !self.contains(name) {
            return Err(LTreeError::UnknownScheme {
                name: name.to_owned(),
            });
        }
        for arg in &args {
            if let SpecArg::Spec(s) = arg {
                if s.contains('(') {
                    self.validate_spec(s)?;
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Split `"name(a,b)"` into the name and its arguments, honoring nested
/// parentheses: commas inside a nested spec belong to that spec. See the
/// [grammar](self#spec-string-grammar).
fn parse_spec(spec: &str) -> Result<(&str, Vec<SpecArg>)> {
    let spec_trim = spec.trim();
    let bad = |reason: &'static str| LTreeError::InvalidSpec {
        spec: spec.to_owned(),
        reason,
    };
    let Some(open) = spec_trim.find('(') else {
        if spec_trim.is_empty() {
            return Err(bad("empty scheme spec"));
        }
        if spec_trim.contains(')') || spec_trim.contains(',') {
            return Err(bad("unbalanced parentheses"));
        }
        return Ok((spec_trim, Vec::new()));
    };
    let Some(rest) = spec_trim.strip_suffix(')') else {
        return Err(bad("unbalanced parentheses"));
    };
    let name = spec_trim[..open].trim();
    if name.is_empty() {
        return Err(bad("missing scheme name"));
    }
    let inner = &rest[open + 1..];
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        // Split at top-level commas only: a comma at depth > 0 belongs
        // to a nested spec like `ltree(4,2)`.
        let mut depth = 0i32;
        let mut start = 0usize;
        let mut parts: Vec<&str> = Vec::new();
        for (i, c) in inner.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return Err(bad("unbalanced parentheses"));
                    }
                }
                ',' if depth == 0 => {
                    parts.push(&inner[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(bad("unbalanced parentheses"));
        }
        parts.push(&inner[start..]);
        for part in parts {
            let part = part.trim();
            if part.is_empty() {
                return Err(bad("empty argument"));
            }
            if let Ok(v) = part.parse::<f64>() {
                args.push(SpecArg::Num(v));
                continue;
            }
            // `key=value` (with the `=` before any nested parenthesis)
            // is an option; `remote(a,conns=4)` nested *inside* another
            // spec keeps its `=` because the `(` comes first.
            let eq = part.find('=');
            let is_opt = match (eq, part.find('(')) {
                (Some(e), Some(p)) => e < p,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if is_opt {
                let (key, value) = part.split_at(eq.unwrap());
                let (key, value) = (key.trim(), value[1..].trim());
                if key.is_empty() {
                    return Err(LTreeError::InvalidOption {
                        spec: spec.to_owned(),
                        key: part.to_owned(),
                        reason: "missing option key before '='",
                    });
                }
                if value.is_empty() {
                    return Err(LTreeError::InvalidOption {
                        spec: spec.to_owned(),
                        key: key.to_owned(),
                        reason: "missing option value after '='",
                    });
                }
                args.push(SpecArg::Opt {
                    key: key.to_owned(),
                    value: value.to_owned(),
                });
            } else {
                // Anything else is a nested spec (or a bare flag a
                // composite factory may accept); its own validity is
                // checked when the factory consumes it.
                args.push(SpecArg::Spec(part.to_owned()));
            }
        }
    }
    Ok((name, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Instrumented, OrderedLabeling, OrderedLabelingMut};

    #[test]
    fn builtin_ltree_builds_with_and_without_args() {
        let reg = SchemeRegistry::with_builtin();
        let mut plain = reg.build("ltree").unwrap();
        assert_eq!(plain.name(), "ltree");
        plain.bulk_build(4).unwrap();
        let mut wide = reg.build(" ltree(16, 4) ").unwrap();
        wide.bulk_build(4).unwrap();
        assert_eq!(wide.scheme_stats().inserts, 0);
    }

    #[test]
    fn unknown_and_malformed_specs_are_typed_errors() {
        let reg = SchemeRegistry::with_builtin();
        assert!(matches!(
            reg.build("nope"),
            Err(LTreeError::UnknownScheme { .. })
        ));
        assert!(matches!(
            reg.build("ltree(4"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        assert!(matches!(
            reg.build("ltree(4,2,1)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        assert!(matches!(
            reg.build("ltree(4.5,2)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        assert!(matches!(reg.build(""), Err(LTreeError::InvalidSpec { .. })));
        assert!(matches!(
            reg.build("(4,2)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        // Invalid params surface the params error, not a panic.
        assert!(matches!(
            reg.build("ltree(5,2)"),
            Err(LTreeError::InvalidParams { .. })
        ));
        // A nested spec handed to a plain (numeric-only) factory.
        assert!(matches!(
            reg.build("ltree(gap,2)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        // Nested parens must balance even inside arguments.
        assert!(matches!(
            reg.build("ltree(4))"),
            Err(LTreeError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn error_messages_point_at_the_grammar() {
        let reg = SchemeRegistry::with_builtin();
        let unknown = reg.build("nope").err().unwrap().to_string();
        assert!(unknown.contains("spec grammar"), "{unknown}");
        let invalid = reg.build("ltree(4").err().unwrap().to_string();
        assert!(invalid.contains("spec grammar"), "{invalid}");
    }

    #[test]
    fn registration_replaces_and_lists() {
        let mut reg = SchemeRegistry::with_builtin();
        assert!(reg.contains("ltree"));
        reg.register("ltree", "replacement", |cfg, _| {
            Ok(Box::new(crate::LTree::new(cfg.params)))
        });
        assert_eq!(reg.names(), vec!["ltree"]);
        assert_eq!(reg.summaries()[0].1, "replacement");
    }

    #[test]
    fn config_override_applies_when_spec_has_no_args() {
        let reg = SchemeRegistry::with_builtin();
        let cfg = SchemeConfig::with_params(Params::new(16, 4).unwrap());
        let mut wide = reg.build_with("ltree", &cfg).unwrap();
        wide.bulk_build(1000).unwrap();
        let mut narrow = reg.build("ltree(4,2)").unwrap();
        narrow.bulk_build(1000).unwrap();
        // f = 16 packs 1000 leaves into a shallower tree than f = 4:
        // fewer levels means a smaller label space.
        assert!(
            wide.label_space_bits() < narrow.label_space_bits(),
            "the config override must reach the factory ({} vs {})",
            wide.label_space_bits(),
            narrow.label_space_bits()
        );
    }

    #[test]
    fn composite_factories_see_nested_specs_and_the_registry() {
        let mut reg = SchemeRegistry::with_builtin();
        // A toy composite that unwraps to its inner spec.
        reg.register_composite("wrap", "identity wrapper", |reg, cfg, args| match args {
            [SpecArg::Spec(inner)] => reg.build_with(inner, cfg),
            _ => Err(LTreeError::InvalidSpec {
                spec: "wrap".into(),
                reason: "expected (inner-spec)",
            }),
        });
        let mut s = reg.build("wrap(ltree(4,2))").unwrap();
        assert_eq!(s.name(), "ltree");
        s.bulk_build(4).unwrap();
        // Nesting composes.
        assert_eq!(reg.build("wrap(wrap(ltree))").unwrap().name(), "ltree");
        assert!(reg.build("wrap(nope)").is_err());
        assert!(reg.build("wrap(ltree(4,2)").is_err(), "unbalanced");
    }

    #[test]
    fn option_arguments_parse_and_misuse_is_typed() {
        // key=value and bare flags reach composite factories as SpecArgs.
        let (name, args) = parse_spec("remote(127.0.0.1:9, conns=4, coalesce)").unwrap();
        assert_eq!(name, "remote");
        assert_eq!(
            args,
            vec![
                SpecArg::Spec("127.0.0.1:9".into()),
                SpecArg::Opt {
                    key: "conns".into(),
                    value: "4".into()
                },
                SpecArg::Spec("coalesce".into()),
            ]
        );
        // A nested spec keeps its own options intact (the '(' wins).
        let (_, args) = parse_spec("sharded(2,remote(h:1,conns=4))").unwrap();
        assert_eq!(args[1], SpecArg::Spec("remote(h:1,conns=4)".into()));
        // Malformed options name the key.
        for (spec, key) in [("remote(a:1,=4)", "=4"), ("remote(a:1,conns=)", "conns")] {
            match parse_spec(spec) {
                Err(LTreeError::InvalidOption { key: k, .. }) => assert_eq!(k, key, "{spec}"),
                other => panic!("{spec}: expected InvalidOption, got {other:?}"),
            }
        }
        // Plain factories reject options outright.
        let reg = SchemeRegistry::with_builtin();
        assert!(matches!(
            reg.build("ltree(4,s=2)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn spec_options_accessors_and_unknown_keys() {
        let args = [
            SpecArg::Opt {
                key: "retries".into(),
                value: "2".into(),
            },
            SpecArg::Spec("reconnect".into()),
            SpecArg::Opt {
                key: "bogus".into(),
                value: "1".into(),
            },
        ];
        let mut opts = SpecOptions::parse("remote", &args).unwrap();
        assert_eq!(opts.take_u32("retries").unwrap(), Some(2));
        assert!(opts.take_flag("reconnect").unwrap());
        assert_eq!(opts.take_u64("absent").unwrap(), None);
        match opts.finish() {
            Err(LTreeError::InvalidOption { key, .. }) => assert_eq!(key, "bogus"),
            other => panic!("expected unknown-option error, got {other:?}"),
        }
        // A flag given a value, and a valued key used bare, both fail.
        let mut opts = SpecOptions::parse(
            "remote",
            &[SpecArg::Opt {
                key: "coalesce".into(),
                value: "1".into(),
            }],
        )
        .unwrap();
        assert!(matches!(
            opts.take_flag("coalesce"),
            Err(LTreeError::InvalidOption { .. })
        ));
        let mut opts = SpecOptions::parse("remote", &[SpecArg::Spec("conns".into())]).unwrap();
        assert!(matches!(
            opts.take_u32("conns"),
            Err(LTreeError::InvalidOption { .. })
        ));
        // Duplicates are rejected at parse time.
        assert!(matches!(
            SpecOptions::parse(
                "remote",
                &[
                    SpecArg::Spec("coalesce".into()),
                    SpecArg::Spec("coalesce".into())
                ]
            ),
            Err(LTreeError::InvalidOption { .. })
        ));
    }

    #[test]
    fn cloned_registries_share_entries() {
        let reg = SchemeRegistry::with_builtin();
        let clone = reg.clone();
        drop(reg);
        assert!(clone.build("ltree(4,2)").is_ok());
    }
}
