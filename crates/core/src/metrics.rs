//! Passive metric snapshots: the data types a scheme hands back from
//! [`crate::Instrumented::metrics`].
//!
//! The paper's headline claim is *amortized* relabel cost — an average
//! that by construction hides the spikes a rebalance causes. Counters
//! ([`crate::SchemeStats`]) measure totals; making the amortization
//! itself visible needs *distributions*: latency histograms with tail
//! quantiles. This module holds only the **passive snapshot** side —
//! plain data with merge and quantile math — so that every crate
//! (wire codec, sharded aggregation, bench tables) can consume metrics
//! without depending on the live recording machinery, which lives in
//! `ltree-obs` (`MetricsRegistry`, atomically-updated histograms, the
//! `traced(...)` wrapper).
//!
//! ## Bucket layout
//!
//! Histograms are log-bucketed with 32 sub-buckets per octave
//! ([`SUB_BITS`] = 5): values below 32 get exact unit buckets, and a
//! value `v ≥ 32` lands in the bucket keyed by its 5 bits below the
//! most significant bit. Bucket width is `2^(msb-5)`, at most `1/32` of
//! the bucket's lower bound, and snapshots report the bucket midpoint —
//! so any reported quantile is within a relative error of `1/64` of the
//! true sample (the property suite asserts `1/32` with slack). The
//! index space is fixed ([`BUCKET_COUNT`] = 1920 covers all of `u64`),
//! which makes merging two histograms a plain per-index sum — and
//! therefore associative and commutative, the property per-shard and
//! per-connection aggregation relies on.

use std::fmt;

/// Sub-bucket resolution: `2^SUB_BITS` buckets per octave.
pub const SUB_BITS: u32 = 5;

/// Number of distinct bucket indices ([`bucket_index`] is always below
/// this). 32 exact unit buckets + 59 octaves × 32 sub-buckets.
pub const BUCKET_COUNT: u32 = (64 - SUB_BITS + 1) * (1 << SUB_BITS);

/// The log-bucket index of a value. Monotone in `v`, exact below 32.
pub fn bucket_index(v: u64) -> u32 {
    if v < (1 << SUB_BITS) {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as u32;
    (msb - SUB_BITS + 1) * (1 << SUB_BITS) + sub
}

/// The representative value (bucket midpoint) for a bucket index.
/// Inverse of [`bucket_index`] up to the bucket's relative error.
pub fn value_for_index(idx: u32) -> u64 {
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let block = idx >> SUB_BITS;
    let msb = block + SUB_BITS - 1;
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    let width = 1u64 << (msb - SUB_BITS);
    let lo = (1u64 << msb) + sub * width;
    lo + width / 2
}

/// A frozen histogram: total count, total sum, and the sparse non-empty
/// `(bucket index, count)` pairs in increasing index order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Non-empty buckets as `(index, count)`, sorted by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample into the snapshot (test/aggregation helper;
    /// live recording happens lock-free in `ltree-obs`).
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Merge another snapshot into this one: per-index sum, so the
    /// operation is associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the representative value of
    /// the bucket holding the rank-`floor((count-1)·q)` sample. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).floor() as u64;
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return value_for_index(idx);
            }
        }
        // Unreachable when counts are consistent; fall back to the top.
        self.buckets
            .last()
            .map_or(0, |&(idx, _)| value_for_index(idx))
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// The value of one named metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// A point-in-time level (may go down).
    Gauge(i64),
    /// A latency/size distribution.
    Histogram(HistogramSnapshot),
}

/// One named metric in a snapshot. Names are `/`-separated paths under
/// a component prefix (`net/…`, `wal/…`, `audit/…`, `obs/…`); the full
/// naming table lives in ARCHITECTURE.md's Observability section and is
/// enforced by xtask lint rule 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// The metric's name (e.g. `obs/op/insert_after`).
    pub name: String,
    /// Its current value.
    pub value: MetricValue,
}

impl Metric {
    /// A named counter metric.
    pub fn counter(name: impl Into<String>, value: u64) -> Self {
        Metric {
            name: name.into(),
            value: MetricValue::Counter(value),
        }
    }

    /// A named gauge metric.
    pub fn gauge(name: impl Into<String>, value: i64) -> Self {
        Metric {
            name: name.into(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A named histogram metric.
    pub fn histogram(name: impl Into<String>, snap: HistogramSnapshot) -> Self {
        Metric {
            name: name.into(),
            value: MetricValue::Histogram(snap),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            MetricValue::Counter(v) => write!(f, "{} = {v}", self.name),
            MetricValue::Gauge(v) => write!(f, "{} = {v}", self.name),
            MetricValue::Histogram(h) => write!(
                f,
                "{}: count={} mean={} p50={} p99={}",
                self.name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            ),
        }
    }
}

/// Sort a metric snapshot by name (stable output for scrapes and tests).
pub fn sort_metrics(metrics: &mut [Metric]) {
    metrics.sort_by(|a, b| a.name.cmp(&b.name));
}

/// Merge several metric snapshots into one, name-sorted: same-named
/// counters and gauges sum, same-named histograms merge bucket-wise.
/// This is how a partitioned store (one instrument set per segment)
/// reports a single coherent view. A kind clash on a name keeps the
/// later value — snapshots from one process never clash.
pub fn merge_metrics<I>(lists: I) -> Vec<Metric>
where
    I: IntoIterator<Item = Vec<Metric>>,
{
    let mut merged: std::collections::BTreeMap<String, MetricValue> =
        std::collections::BTreeMap::new();
    for m in lists.into_iter().flatten() {
        match merged.entry(m.name) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(m.value);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), m.value) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(&b),
                (slot, v) => *slot = v,
            },
        }
    }
    merged
        .into_iter()
        .map(|(name, value)| Metric { name, value })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exact below 32, continuous across the first octave boundary.
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as u32);
        }
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        let mut prev = 0;
        for shift in 0..58 {
            for off in [0u64, 1, 3] {
                let v = (97u64 << shift) + off;
                let idx = bucket_index(v);
                assert!(idx >= prev, "monotone at {v}");
                assert!(idx < BUCKET_COUNT);
                prev = idx;
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKET_COUNT);
    }

    #[test]
    fn representative_value_is_within_bucket_error() {
        for shift in 0..60 {
            for off in [0u64, 5, 11] {
                let v = (41u64 << shift) + off;
                let rep = value_for_index(bucket_index(v));
                let err = rep.abs_diff(v);
                assert!(err <= (v / 32).max(1), "v={v} rep={rep} err={err}");
            }
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = HistogramSnapshot::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count, 100);
        let p50 = h.quantile(0.5);
        assert!(p50.abs_diff(50) <= 2, "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!(p99.abs_diff(99) <= 4, "p99={p99}");
        assert_eq!(h.quantile(0.0), 1);
        assert!(h.quantile(1.0).abs_diff(100) <= 4);
    }

    #[test]
    fn merge_sums_counts_and_buckets() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        for v in [3u64, 3, 70, 1000] {
            a.record(v);
        }
        for v in [3u64, 500, 1000] {
            b.record(v);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count, 7);
        assert_eq!(m.sum, a.sum + b.sum);
        let at = |idx: u32| m.buckets.iter().find(|&&(i, _)| i == idx).map(|&(_, n)| n);
        assert_eq!(at(bucket_index(3)), Some(3));
        assert_eq!(at(bucket_index(1000)), Some(2));
        // Buckets stay sorted.
        assert!(m.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn merge_metrics_sums_by_name_and_sorts() {
        let mut h1 = HistogramSnapshot::new();
        h1.record(10);
        let mut h2 = HistogramSnapshot::new();
        h2.record(20);
        let a = vec![
            Metric::counter("z/ops", 2),
            Metric::gauge("a/level", 3),
            Metric::histogram("m/lat", h1.clone()),
        ];
        let b = vec![
            Metric::counter("z/ops", 5),
            Metric::gauge("a/level", -1),
            Metric::histogram("m/lat", h2),
        ];
        let merged = merge_metrics([a, b]);
        let names: Vec<_> = merged.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a/level", "m/lat", "z/ops"]);
        assert_eq!(merged[2].value, MetricValue::Counter(7));
        assert_eq!(merged[0].value, MetricValue::Gauge(2));
        match &merged[1].value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 30);
            }
            other => panic!("expected a histogram, got {other:?}"),
        }
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = HistogramSnapshot::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        let mut m = h.clone();
        m.merge(&h);
        assert_eq!(m, h);
    }
}
