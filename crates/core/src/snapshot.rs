//! Snapshot persistence for the materialized L-Tree.
//!
//! A production XML store checkpoints its labeling structure. The format
//! exploits the paper's own observation (Section 4.2): **labels are
//! implicit in the structure**, so a snapshot stores only the tree shape
//! (pre-order, one tag byte per node plus fanout) and the parameters —
//! every `num` is recomputed on load by one relabel pass, and the loaded
//! tree is bit-for-bit the one that was saved.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "LTRS" | version u16 | f u32 | s u32 | height u8 | n_leaves u64
//! | pre-order nodes | checksum u64 (FNV-1a of everything before it)
//! node := 0x01 fanout:u16   (interior)
//!       | 0x02 flags:u8     (leaf; bit 0 = tombstone)
//! ```

use crate::tree::{LTree, LeafId};
use crate::Params;

const MAGIC: &[u8; 4] = b"LTRS";
const VERSION: u16 = 1;
const TAG_INTERIOR: u8 = 0x01;
const TAG_LEAF: u8 = 0x02;

/// Errors while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Not an L-Tree snapshot.
    BadMagic,
    /// Produced by an incompatible version of this library.
    BadVersion(u16),
    /// The byte stream ended early.
    Truncated,
    /// Structurally inconsistent content.
    Corrupt(String),
    /// The checksum did not match (bit rot / torn write).
    ChecksumMismatch,
    /// Parameters stored in the snapshot fail validation.
    InvalidParams(crate::LTreeError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an L-Tree snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot ends unexpectedly"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::InvalidParams(e) => {
                write!(f, "snapshot carries invalid parameters: {e}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serialize a tree. The paired loader is [`load`].
pub fn save(tree: &LTree) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + tree.len() * 2);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&tree.params().f().to_le_bytes());
    out.extend_from_slice(&tree.params().s().to_le_bytes());
    out.push(tree.height());
    out.extend_from_slice(&(tree.len() as u64).to_le_bytes());
    tree.serialize_structure(&mut out);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Decoded structural events handed to the tree rebuilder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StructureEvent {
    /// Interior node with this many children (children follow pre-order).
    Interior(u16),
    /// Leaf; `true` = tombstoned.
    Leaf(bool),
}

/// Deserialize a snapshot produced by [`save`]. Returns the tree plus its
/// leaves in document order (handles are *not* stable across
/// save/load — the caller re-binds its references via this vector).
pub fn load(bytes: &[u8]) -> Result<(LTree, Vec<LeafId>), SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let f = r.u32()?;
    let s = r.u32()?;
    let params = Params::new(f, s).map_err(SnapshotError::InvalidParams)?;
    let height = r.u8()?;
    let n_leaves = r.u64()?;

    let mut events = Vec::new();
    while r.pos < body.len() {
        match r.u8()? {
            TAG_INTERIOR => events.push(StructureEvent::Interior(r.u16()?)),
            TAG_LEAF => events.push(StructureEvent::Leaf(r.u8()? & 1 == 1)),
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown node tag {other:#x}"
                )))
            }
        }
    }
    let (tree, leaves) = LTree::from_structure(params, height, &events)
        .map_err(|e: crate::LTreeError| SnapshotError::Corrupt(e.to_string()))?;
    if tree.len() as u64 != n_leaves {
        return Err(SnapshotError::Corrupt(format!(
            "header says {n_leaves} leaves, structure has {}",
            tree.len()
        )));
    }
    tree.check_invariants()
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    Ok((tree, leaves))
}

/// Convenience: write a snapshot to a file.
pub fn save_to_file(tree: &LTree, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, save(tree))
}

/// Convenience: load a snapshot from a file. The outer error is I/O, the
/// inner one decoding.
#[allow(clippy::type_complexity)]
pub fn load_from_file(
    path: &std::path::Path,
) -> std::io::Result<Result<(LTree, Vec<LeafId>), SnapshotError>> {
    let bytes = std::fs::read(path)?;
    Ok(load(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> LTree {
        let (mut tree, leaves) = LTree::bulk_load(Params::new(4, 2).unwrap(), 50).unwrap();
        let mut anchor = leaves[20];
        for i in 0..200 {
            anchor = tree.insert_after(anchor).unwrap();
            if i % 9 == 0 {
                tree.delete(leaves[i % 50]).ok();
            }
        }
        tree
    }

    fn labels(tree: &LTree) -> Vec<(u128, bool)> {
        tree.leaves()
            .map(|l| (tree.label(l).unwrap().get(), tree.is_deleted(l).unwrap()))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tree = sample_tree();
        let bytes = save(&tree);
        let (loaded, leaves) = load(&bytes).unwrap();
        assert_eq!(loaded.params(), tree.params());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.len(), tree.len());
        assert_eq!(loaded.live_len(), tree.live_len());
        assert_eq!(
            labels(&loaded),
            labels(&tree),
            "labels recomputed identically"
        );
        assert_eq!(leaves.len(), tree.len());
        loaded.check_invariants().unwrap();
    }

    #[test]
    fn loaded_tree_keeps_working() {
        let tree = sample_tree();
        let (mut loaded, leaves) = load(&save(&tree)).unwrap();
        let mid = leaves[leaves.len() / 2];
        let mut anchor = mid;
        for _ in 0..100 {
            anchor = loaded.insert_after(anchor).unwrap();
        }
        loaded.check_invariants().unwrap();
    }

    #[test]
    fn empty_tree_roundtrips() {
        let tree = LTree::new(Params::new(8, 2).unwrap());
        let (loaded, leaves) = load(&save(&tree)).unwrap();
        assert!(loaded.is_empty());
        assert!(leaves.is_empty());
        loaded.check_invariants().unwrap();
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let tree = sample_tree();
        let good = save(&tree);

        assert_eq!(load(&[]).unwrap_err(), SnapshotError::Truncated);
        assert_eq!(
            load(&good[..10]).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        // Checksum catches it first unless we re-seal; re-seal to test
        // the magic path.
        let body_len = bad_magic.len() - 8;
        let sum = super::fnv1a(&bad_magic[..body_len]).to_le_bytes();
        bad_magic[body_len..].copy_from_slice(&sum);
        assert_eq!(load(&bad_magic).unwrap_err(), SnapshotError::BadMagic);

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        assert!(load(&flipped).is_err(), "bit flip must not load");

        let mut bad_version = good.clone();
        bad_version[4] = 0xff;
        let sum = super::fnv1a(&bad_version[..body_len]).to_le_bytes();
        bad_version[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            load(&bad_version).unwrap_err(),
            SnapshotError::BadVersion(_)
        ));
    }

    #[test]
    fn file_helpers_roundtrip() {
        let tree = sample_tree();
        let dir = std::env::temp_dir().join("ltree-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.snap");
        save_to_file(&tree, &path).unwrap();
        let loaded = load_from_file(&path).unwrap().unwrap();
        assert_eq!(loaded.0.len(), tree.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_is_compact() {
        // Structure-only encoding: ~2 bytes per leaf + interior overhead,
        // far below the 16-byte labels it regenerates.
        let (tree, _) = LTree::bulk_load(Params::new(4, 2).unwrap(), 10_000).unwrap();
        let bytes = save(&tree);
        assert!(
            bytes.len() < 10_000 * 6,
            "snapshot too large: {} bytes",
            bytes.len()
        );
    }
}
