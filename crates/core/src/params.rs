//! The `(f, s)` shape parameters of an L-Tree (paper, Section 2.1).
//!
//! An L-Tree is shaped by two integers:
//!
//! * `f` — the target maximum fanout of an internal node;
//! * `s` — the number of subtrees an overfull node is split into.
//!
//! From these the paper derives:
//!
//! * the **rebuild arity** `a = f / s`: freshly (re)built subtrees are
//!   complete `a`-ary trees;
//! * the **split threshold** for a node `t` at height `h`:
//!   `L(t) ≥ s · a^h` (where `L` counts leaf descendants);
//! * the **label base** `B = f + 1`: the `i`-th child of a node numbered
//!   `num(u)` is numbered `num(u) + i · B^{h(child)}`, so the maximum label
//!   in a tree of height `H` is below `B^H` — this is the source of the
//!   `bits = log(f+1) · log n / log(f/s)` bound of Section 3.1.
//!
//! Validity requires `s ≥ 2` (a split must create slack), `a ≥ 2` (subtrees
//! must branch) and `f = s · a` exactly.

use crate::error::{LTreeError, Result};

/// Shape parameters of an L-Tree. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    f: u32,
    s: u32,
}

/// The largest `f` accepted. Labels are `u128`; enormous fanouts are never
/// useful (the cost formula grows linearly in `f`) and this cap keeps all
/// derived arithmetic trivially overflow-free.
pub const MAX_F: u32 = 1 << 16;

impl Params {
    /// Create a parameter set, validating the paper's requirements:
    /// `s ≥ 2`, `f % s == 0`, `f / s ≥ 2` and `f ≤ MAX_F`.
    ///
    /// ```
    /// use ltree_core::Params;
    /// let p = Params::new(8, 2).unwrap();
    /// assert_eq!(p.arity(), 4);
    /// assert_eq!(p.base(), 9);
    /// assert!(Params::new(5, 2).is_err()); // f not divisible by s
    /// assert!(Params::new(4, 1).is_err()); // s must be >= 2
    /// ```
    pub fn new(f: u32, s: u32) -> Result<Self> {
        if s < 2 {
            return Err(LTreeError::InvalidParams {
                f,
                s,
                reason: "s must be at least 2 (a split must create slack)",
            });
        }
        if f > MAX_F {
            return Err(LTreeError::InvalidParams {
                f,
                s,
                reason: "f exceeds the supported maximum (65536)",
            });
        }
        if !f.is_multiple_of(s) {
            return Err(LTreeError::InvalidParams {
                f,
                s,
                reason: "f must be a multiple of s (split produces s complete f/s-ary trees)",
            });
        }
        if f / s < 2 {
            return Err(LTreeError::InvalidParams {
                f,
                s,
                reason: "f/s must be at least 2 (rebuilt subtrees must branch)",
            });
        }
        Ok(Params { f, s })
    }

    /// The paper's running-example parameters (`f = 4, s = 2`, Figure 2).
    pub fn example() -> Self {
        Params { f: 4, s: 2 }
    }

    /// A selection of sensible presets used throughout the benchmark
    /// harness: `(4,2)`, `(8,2)`, `(9,3)`, `(16,4)`, `(32,4)`.
    pub fn presets() -> Vec<Self> {
        [(4, 2), (8, 2), (9, 3), (16, 4), (32, 4)]
            .into_iter()
            .map(|(f, s)| Params::new(f, s).expect("preset params are valid"))
            .collect()
    }

    /// Target maximum fanout `f`.
    #[inline]
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Split width `s` (an overfull node becomes `s` subtrees).
    #[inline]
    pub fn s(&self) -> u32 {
        self.s
    }

    /// Rebuild arity `a = f / s`.
    #[inline]
    pub fn arity(&self) -> u32 {
        self.f / self.s
    }

    /// Label base `B = f + 1`.
    #[inline]
    pub fn base(&self) -> u128 {
        u128::from(self.f) + 1
    }

    /// `a^h` — the leaf capacity of one freshly rebuilt subtree of height
    /// `h`, saturating at `u64::MAX` (which compares larger than any real
    /// leaf count, so saturation is benign).
    pub fn subtree_capacity(&self, height: u8) -> u64 {
        let a = u64::from(self.arity());
        let mut cap: u64 = 1;
        for _ in 0..height {
            cap = cap.saturating_mul(a);
        }
        cap
    }

    /// The split threshold `s · a^h` for a node at height `h` (paper,
    /// Section 2.3: a node whose leaf count reaches this value is split).
    pub fn split_threshold(&self, height: u8) -> u64 {
        self.subtree_capacity(height)
            .saturating_mul(u64::from(self.s))
    }

    /// `B^h` as a `u128`, or an overflow error. This is the width of the
    /// label interval owned by a node at height `h`.
    pub fn interval(&self, height: u8) -> Result<u128> {
        self.base()
            .checked_pow(u32::from(height))
            .ok_or(LTreeError::LabelOverflow { height })
    }

    /// The largest tree height whose label space `B^H` fits in a `u128`.
    pub fn max_height(&self) -> u8 {
        let mut h: u8 = 0;
        let mut v: u128 = 1;
        loop {
            match v.checked_mul(self.base()) {
                Some(next) => {
                    v = next;
                    h += 1;
                    if h == u8::MAX {
                        return h;
                    }
                }
                None => return h,
            }
        }
    }

    /// Minimal height `H` such that a complete `a`-ary tree of height `H`
    /// has at least `n` leaves; at least 1 (the tree always keeps an
    /// internal root so that leaves sit strictly below it).
    pub fn height_for(&self, n: u64) -> u8 {
        let a = u64::from(self.arity());
        let mut h: u8 = 1;
        let mut cap = a;
        while cap < n {
            cap = cap.saturating_mul(a);
            h += 1;
        }
        h
    }
}

impl std::fmt::Display for Params {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(f={}, s={})", self.f, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Params::new(4, 2).is_ok());
        assert!(Params::new(6, 2).is_ok());
        assert!(Params::new(9, 3).is_ok());
        assert!(Params::new(4, 1).is_err());
        assert!(Params::new(0, 0).is_err());
        assert!(Params::new(7, 2).is_err());
        assert!(Params::new(4, 4).is_err()); // arity 1
        assert!(Params::new(2, 2).is_err()); // arity 1
        assert!(Params::new(MAX_F + 2, 2).is_err());
    }

    #[test]
    fn derived_quantities() {
        let p = Params::new(4, 2).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.base(), 5);
        assert_eq!(p.subtree_capacity(0), 1);
        assert_eq!(p.subtree_capacity(3), 8);
        assert_eq!(p.split_threshold(1), 4);
        assert_eq!(p.split_threshold(2), 8);
        assert_eq!(p.interval(2).unwrap(), 25);
    }

    #[test]
    fn height_for_counts() {
        let p = Params::new(4, 2).unwrap();
        assert_eq!(p.height_for(0), 1);
        assert_eq!(p.height_for(1), 1);
        assert_eq!(p.height_for(2), 1);
        assert_eq!(p.height_for(3), 2);
        assert_eq!(p.height_for(8), 3);
        assert_eq!(p.height_for(9), 4);
    }

    #[test]
    fn max_height_fits_u128() {
        let p = Params::new(4, 2).unwrap();
        let h = p.max_height();
        assert!(p.interval(h).is_ok());
        assert!(p.interval(h + 1).is_err());
    }

    #[test]
    fn saturating_capacity() {
        let p = Params::new(4, 2).unwrap();
        // 2^200 saturates but must not panic.
        assert_eq!(p.subtree_capacity(200), u64::MAX);
        assert_eq!(p.split_threshold(200), u64::MAX);
    }

    #[test]
    fn presets_are_valid() {
        assert!(!Params::presets().is_empty());
    }
}
