//! Order-preserving labels.
//!
//! A label is a `u128` drawn from `[0, B^H)` where `B = f+1` and `H` is the
//! current height of the L-Tree. Its base-`B` digit expansion spells out the
//! child indices on the root-to-leaf path (paper, Section 4.2) — the key
//! observation behind the *virtual* L-Tree.

use crate::params::Params;

/// An order-preserving label. Compare labels to compare document positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(u128);

impl Label {
    /// Wrap a raw value.
    #[inline]
    pub const fn new(v: u128) -> Self {
        Label(v)
    }

    /// The raw integer value.
    #[inline]
    pub const fn get(self) -> u128 {
        self.0
    }

    /// Number of bits needed to store this label (`0` needs 0 bits).
    #[inline]
    pub fn bits(self) -> u32 {
        128 - self.0.leading_zeros()
    }

    /// The label of this leaf's ancestor at `height` — obtained by zeroing
    /// the `height` least-significant base-`B` digits (paper, Section 4.2:
    /// "the base (f+1) digits of num(v) provide an encoding of all the
    /// ancestors of v").
    ///
    /// ```
    /// use ltree_core::{Label, Params};
    /// let p = Params::new(4, 2).unwrap(); // base 5
    /// let l = Label::new(31); // digits (1,1,1) in base 5
    /// assert_eq!(l.ancestor(&p, 1).get(), 30);
    /// assert_eq!(l.ancestor(&p, 2).get(), 25);
    /// assert_eq!(l.ancestor(&p, 3).get(), 0);
    /// ```
    pub fn ancestor(self, params: &Params, height: u8) -> Label {
        let interval = params
            .interval(height)
            .expect("ancestor height must fit the label space");
        Label(self.0 / interval * interval)
    }

    /// Base-`B` digits of the label, least significant first, up to
    /// `height` digits. Digit `j` is the child index of the leaf's
    /// ancestor at height `j` within its parent.
    pub fn digits(self, params: &Params, height: u8) -> Vec<u32> {
        let base = params.base();
        let mut v = self.0;
        let mut out = Vec::with_capacity(usize::from(height));
        for _ in 0..height {
            out.push((v % base) as u32);
            v /= base;
        }
        out
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl From<u128> for Label {
    fn from(v: u128) -> Self {
        Label(v)
    }
}

impl From<Label> for u128 {
    fn from(l: Label) -> Self {
        l.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(Label::new(3) < Label::new(10));
        assert_eq!(Label::new(7), Label::new(7));
    }

    #[test]
    fn bits_width() {
        assert_eq!(Label::new(0).bits(), 0);
        assert_eq!(Label::new(1).bits(), 1);
        assert_eq!(Label::new(255).bits(), 8);
        assert_eq!(Label::new(256).bits(), 9);
        assert_eq!(Label::new(u128::MAX).bits(), 128);
    }

    #[test]
    fn digit_decomposition_roundtrip() {
        let p = Params::new(4, 2).unwrap(); // base 5
        let l = Label::new(2 * 25 + 3 * 5 + 4);
        assert_eq!(l.digits(&p, 3), vec![4, 3, 2]);
        assert_eq!(l.ancestor(&p, 0), l);
        assert_eq!(l.ancestor(&p, 1).get(), 2 * 25 + 3 * 5);
        assert_eq!(l.ancestor(&p, 2).get(), 2 * 25);
    }
}
