//! Property-based tests on the materialized L-Tree: every structural and
//! labeling invariant of the paper holds after arbitrary op streams, for
//! arbitrary valid parameters.

use ltree_core::{LTree, LeafId, Params};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    After(usize),
    Before(usize),
    Many(usize, usize),
    Delete(usize),
    Compact,
}

fn params_strategy() -> impl Strategy<Value = Params> {
    // s in 2..=6, arity in 2..=6 — small params stress splits hardest.
    (2u32..=6, 2u32..=6).prop_map(|(s, a)| Params::new(s * a, s).expect("constructed valid"))
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            5 => (0usize..1 << 20).prop_map(Op::After),
            2 => (0usize..1 << 20).prop_map(Op::Before),
            2 => ((0usize..1 << 20), 1usize..25).prop_map(|(i, k)| Op::Many(i, k)),
            2 => (0usize..1 << 20).prop_map(Op::Delete),
            1 => Just(Op::Compact),
        ],
        1..70,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn invariants_hold_under_any_stream(
        params in params_strategy(),
        initial in 0usize..60,
        ops in ops_strategy(),
    ) {
        let (mut tree, leaves) = LTree::bulk_load(params, initial).unwrap();
        let mut live: Vec<LeafId> = leaves;
        for op in &ops {
            match *op {
                Op::After(i) => {
                    let leaf = if live.is_empty() {
                        tree.insert_first().unwrap()
                    } else {
                        let i = i % live.len();
                        tree.insert_after(live[i]).unwrap()
                    };
                    live.push(leaf);
                }
                Op::Before(i) => {
                    let leaf = if live.is_empty() {
                        tree.insert_first().unwrap()
                    } else {
                        let i = i % live.len();
                        tree.insert_before(live[i]).unwrap()
                    };
                    live.push(leaf);
                }
                Op::Many(i, k) => {
                    if live.is_empty() {
                        live.extend(tree.insert_many_first(k).unwrap());
                    } else {
                        let i = i % live.len();
                        live.extend(tree.insert_many_after(live[i], k).unwrap());
                    }
                }
                Op::Delete(i) => {
                    if !live.is_empty() {
                        let i = i % live.len();
                        let _ = tree.delete(live[i]); // double delete is a typed error
                    }
                }
                Op::Compact => {
                    tree.compact().unwrap();
                    // Tombstoned ids died; keep only survivors.
                    live.retain(|&l| tree.contains(l));
                }
            }
            tree.check_invariants().unwrap();
        }
        // Order contract across the final tree.
        let labels: Vec<u128> = tree.leaves().map(|l| tree.label(l).unwrap().get()).collect();
        prop_assert!(labels.windows(2).all(|w| w[0] < w[1]));
        // Label space is as declared.
        let space = params.interval(tree.height()).unwrap();
        prop_assert!(labels.iter().all(|&l| l < space));
    }

    #[test]
    fn no_cascades_for_single_insert_streams(
        params in params_strategy(),
        anchors in prop::collection::vec(0usize..1 << 20, 1..300),
    ) {
        // Proposition 3, property-tested: single-leaf insertions never
        // cascade, for any parameters and any anchor sequence.
        let (mut tree, leaves) = LTree::bulk_load(params, 8).unwrap();
        let mut live = leaves;
        for &a in &anchors {
            let i = a % live.len();
            live.push(tree.insert_after(live[i]).unwrap());
        }
        prop_assert_eq!(tree.stats().cascade_splits, 0);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn next_prev_walks_agree_with_iteration(
        params in params_strategy(),
        initial in 1usize..50,
        anchors in prop::collection::vec(0usize..1 << 20, 0..40),
    ) {
        let (mut tree, leaves) = LTree::bulk_load(params, initial).unwrap();
        let mut live = leaves;
        for &a in &anchors {
            let i = a % live.len();
            live.push(tree.insert_after(live[i]).unwrap());
        }
        let iter_order: Vec<LeafId> = tree.leaves().collect();
        let mut walk = vec![tree.first_leaf().unwrap()];
        while let Some(next) = tree.next_leaf(*walk.last().unwrap()).unwrap() {
            walk.push(next);
        }
        prop_assert_eq!(&walk, &iter_order);
        let mut back = vec![tree.last_leaf().unwrap()];
        while let Some(prev) = tree.prev_leaf(*back.last().unwrap()).unwrap() {
            back.push(prev);
        }
        back.reverse();
        prop_assert_eq!(&back, &iter_order);
    }

    #[test]
    fn batch_equals_leaf_count_semantics(
        params in params_strategy(),
        k in 1usize..200,
    ) {
        // A batch of k leaves lands contiguously between anchor and its
        // old successor, in order.
        let (mut tree, leaves) = LTree::bulk_load(params, 10).unwrap();
        let batch = tree.insert_many_after(leaves[4], k).unwrap();
        prop_assert_eq!(batch.len(), k);
        let la = tree.label(leaves[4]).unwrap();
        let lb = tree.label(leaves[5]).unwrap();
        let mut prev = la;
        for &b in &batch {
            let l = tree.label(b).unwrap();
            prop_assert!(prev < l);
            prev = l;
        }
        prop_assert!(prev < lb);
        tree.check_invariants().unwrap();
    }
}
