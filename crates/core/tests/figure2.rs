//! Experiment X2 — structure-exact replay of Figure 2 of the paper
//! (f = 4, s = 2).
//!
//! Figure 2 shows: (a) bulk loading the document
//! `<A><B><C/></B><D/></A>` (8 tags), then inserting a node `D` before
//! `C` — (b)/(c) a plain sibling relabel — then inserting `/D` right
//! after — (d) which trips the split criterion of the height-1 node
//! holding the dense region: it splits into `s = 2` complete binary
//! subtrees and its parent's subtree is relabeled.
//!
//! Note on the numbers: the figure's printed art uses label
//! base 3 while the paper's own formulas (`N ≤ (f+1)^H`) mandate base
//! `f+1 = 5`; we assert the base-5 numbers for the identical structural
//! trace: the same split happens at the same moment on the same node.

use ltree_core::{LTree, Params};

fn all_labels(tree: &LTree) -> Vec<u128> {
    tree.leaves()
        .map(|l| tree.label(l).unwrap().get())
        .collect()
}

#[test]
fn figure2_walkthrough() {
    let params = Params::new(4, 2).unwrap();
    assert_eq!(params.arity(), 2, "f/s = 2: bulk load builds a binary tree");
    assert_eq!(params.base(), 5, "label base f+1 = 5");

    // ---- Figure 2(a): bulk load the 8 tags A B C /C /B D /D /A -------
    let (mut tree, leaves) = LTree::bulk_load(params, 8).unwrap();
    assert_eq!(tree.height(), 3, "complete binary tree over 8 leaves");
    assert_eq!(
        all_labels(&tree),
        vec![0, 1, 5, 6, 25, 26, 30, 31],
        "base-5 analogue of the figure's bulk-load labels"
    );
    // Element regions: A=(0,31), B=(1,25), C=(5,6), D=(26,30).
    let (a_b, a_e) = (leaves[0], leaves[7]);
    let (b_b, b_e) = (leaves[1], leaves[4]);
    let (c_b, c_e) = (leaves[2], leaves[3]);
    let (d_b, d_e) = (leaves[5], leaves[6]);
    fn region_of(tree: &LTree, b: ltree_core::LeafId, e: ltree_core::LeafId) -> (u128, u128) {
        (tree.label(b).unwrap().get(), tree.label(e).unwrap().get())
    }
    macro_rules! region {
        ($b:expr, $e:expr) => {
            region_of(&tree, $b, $e)
        };
    }
    assert_eq!(region!(a_b, a_e), (0, 31));
    assert_eq!(region!(b_b, b_e), (1, 25));
    assert_eq!(region!(c_b, c_e), (5, 6));
    assert_eq!(region!(d_b, d_e), (26, 30));

    // ---- Figure 2(b)/(c): insert begin tag "D" before "C" ------------
    // No ancestor reaches its threshold: only the new leaf and its right
    // siblings inside one height-1 node are relabeled.
    let new_d_begin = tree.insert_before(c_b).unwrap();
    assert_eq!(tree.stats().splits, 0, "first insertion must not split");
    assert_eq!(
        all_labels(&tree),
        vec![0, 1, 5, 6, 7, 25, 26, 30, 31],
        "D takes C's slot; C and /C shift by one within their parent"
    );
    assert_eq!(tree.label(new_d_begin).unwrap().get(), 5);
    assert_eq!(region!(c_b, c_e), (6, 7), "analogue of the figure's C(4,5)");
    tree.check_invariants().unwrap();

    // ---- Figure 2(d): insert end tag "/D" after the new "D" ----------
    // The height-1 node now holds 4 = s·(f/s) leaves: it splits into two
    // complete binary subtrees and the parent's subtree is relabeled.
    let new_d_end = tree.insert_after(new_d_begin).unwrap();
    assert_eq!(
        tree.stats().splits,
        1,
        "the second insertion splits a height-1 node"
    );
    assert_eq!(
        tree.stats().pieces_created,
        2,
        "split produces s = 2 pieces"
    );
    assert_eq!(
        tree.stats().cascade_splits,
        0,
        "Proposition 3: no cascading"
    );
    assert_eq!(tree.height(), 3, "no root rebuild");
    assert_eq!(
        all_labels(&tree),
        vec![0, 1, 5, 6, 10, 11, 25, 26, 30, 31],
        "base-5 analogue of figure 2(d): the dense region got its own subtree"
    );
    assert_eq!(
        region!(new_d_begin, new_d_end),
        (5, 6),
        "new element D'(5,6)"
    );
    assert_eq!(
        region!(c_b, c_e),
        (10, 11),
        "C moved into the second piece, figure's C(6,7)"
    );
    // The outer regions were untouched by the localized relabeling.
    assert_eq!(region!(a_b, a_e), (0, 31));
    assert_eq!(region!(b_b, b_e), (1, 25));
    assert_eq!(region!(d_b, d_e), (26, 30));
    tree.check_invariants().unwrap();

    // Interval containment still answers ancestor-descendant queries
    // (Figure 1 semantics): C is inside B, B inside A, D' inside B.
    let contains =
        |outer: (u128, u128), inner: (u128, u128)| outer.0 < inner.0 && inner.1 < outer.1;
    assert!(contains(region!(a_b, a_e), region!(b_b, b_e)));
    assert!(contains(region!(b_b, b_e), region!(c_b, c_e)));
    assert!(contains(region!(b_b, b_e), region!(new_d_begin, new_d_end)));
    assert!(!contains(
        region!(c_b, c_e),
        region!(new_d_begin, new_d_end)
    ));
}
