//! B+-tree node machinery: routing, splits, merges, rank/kth arithmetic.
//!
//! Structure: a classic B+-tree. Interior nodes hold `children.len() - 1`
//! separators; `seps[i]` routes keys `>= seps[i]` to `children[i+1]`.
//! Separators are lower bounds of their right subtree but need not remain
//! actual keys after removals ("ghost" separators) — routing stays valid.
//! Every interior node caches its subtree entry `count` for order
//! statistics.

use crate::{MAX_LEN, MIN_LEN};

pub(crate) enum Node<V> {
    Leaf {
        keys: Vec<u128>,
        vals: Vec<V>,
    },
    Internal {
        seps: Vec<u128>,
        children: Vec<Node<V>>,
        count: usize,
    },
}

pub(crate) enum InsertResult<V> {
    Done,
    Duplicate(V),
    Split(u128, Node<V>),
}

/// Route `key` to a child slot: first child whose separator exceeds `key`.
#[inline]
fn route(seps: &[u128], key: u128) -> usize {
    seps.partition_point(|s| *s <= key)
}

impl<V> Node<V> {
    pub(crate) fn empty_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    pub(crate) fn new_root(left: Node<V>, sep: u128, right: Node<V>) -> Self {
        let count = left.len() + right.len();
        Node::Internal {
            seps: vec![sep],
            children: vec![left, right],
            count,
        }
    }

    /// Entries in this subtree.
    pub(crate) fn len(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { count, .. } => *count,
        }
    }

    fn is_underfull(&self) -> bool {
        match self {
            Node::Leaf { keys, .. } => keys.len() < MIN_LEN,
            Node::Internal { children, .. } => children.len() < MIN_LEN,
        }
    }

    pub(crate) fn insert(&mut self, key: u128, value: V, touched: &mut u64) -> InsertResult<V> {
        *touched += 1;
        match self {
            Node::Leaf { keys, vals } => {
                let idx = keys.partition_point(|k| *k < key);
                if idx < keys.len() && keys[idx] == key {
                    return InsertResult::Duplicate(value);
                }
                keys.insert(idx, key);
                vals.insert(idx, value);
                if keys.len() > MAX_LEN {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_vals = vals.split_off(mid);
                    let sep = right_keys[0];
                    InsertResult::Split(
                        sep,
                        Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                        },
                    )
                } else {
                    InsertResult::Done
                }
            }
            Node::Internal {
                seps,
                children,
                count,
            } => {
                let i = route(seps, key);
                match children[i].insert(key, value, touched) {
                    InsertResult::Done => {
                        *count += 1;
                        InsertResult::Done
                    }
                    InsertResult::Duplicate(v) => InsertResult::Duplicate(v),
                    InsertResult::Split(sep, right) => {
                        *count += 1;
                        seps.insert(i, sep);
                        children.insert(i + 1, right);
                        if children.len() > MAX_LEN {
                            let mid = children.len() / 2;
                            let right_children: Vec<Node<V>> = children.split_off(mid);
                            let mut right_seps = seps.split_off(mid - 1);
                            let promoted = right_seps.remove(0);
                            let right_count: usize = right_children.iter().map(Node::len).sum();
                            *count -= right_count;
                            InsertResult::Split(
                                promoted,
                                Node::Internal {
                                    seps: right_seps,
                                    children: right_children,
                                    count: right_count,
                                },
                            )
                        } else {
                            InsertResult::Done
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn remove(&mut self, key: u128, touched: &mut u64) -> Option<V> {
        *touched += 1;
        match self {
            Node::Leaf { keys, vals } => {
                let idx = keys.partition_point(|k| *k < key);
                if idx < keys.len() && keys[idx] == key {
                    keys.remove(idx);
                    Some(vals.remove(idx))
                } else {
                    None
                }
            }
            Node::Internal {
                seps,
                children,
                count,
            } => {
                let i = route(seps, key);
                let out = children[i].remove(key, touched)?;
                *count -= 1;
                if children[i].is_underfull() {
                    rebalance(seps, children, i, touched);
                }
                Some(out)
            }
        }
    }

    /// If the root is an interior node with a single child, hoist the
    /// child (called only on the root after removals).
    pub(crate) fn collapse_root(&mut self) {
        loop {
            match self {
                Node::Internal { children, .. } if children.len() == 1 => {
                    let child = children.pop().expect("one child present");
                    *self = child;
                }
                _ => return,
            }
        }
    }

    pub(crate) fn get(&self, key: u128, touched: &mut u64) -> Option<&V> {
        *touched += 1;
        match self {
            Node::Leaf { keys, vals } => {
                let idx = keys.partition_point(|k| *k < key);
                if idx < keys.len() && keys[idx] == key {
                    Some(&vals[idx])
                } else {
                    None
                }
            }
            Node::Internal { seps, children, .. } => children[route(seps, key)].get(key, touched),
        }
    }

    pub(crate) fn get_mut(&mut self, key: u128, touched: &mut u64) -> Option<&mut V> {
        *touched += 1;
        match self {
            Node::Leaf { keys, vals } => {
                let idx = keys.partition_point(|k| *k < key);
                if idx < keys.len() && keys[idx] == key {
                    Some(&mut vals[idx])
                } else {
                    None
                }
            }
            Node::Internal { seps, children, .. } => {
                let i = route(seps, key);
                children[i].get_mut(key, touched)
            }
        }
    }

    pub(crate) fn rank(&self, key: u128, touched: &mut u64) -> usize {
        *touched += 1;
        match self {
            Node::Leaf { keys, .. } => keys.partition_point(|k| *k < key),
            Node::Internal { seps, children, .. } => {
                let i = route(seps, key);
                let below: usize = children[..i].iter().map(Node::len).sum();
                below + children[i].rank(key, touched)
            }
        }
    }

    pub(crate) fn kth(&self, mut i: usize, touched: &mut u64) -> Option<(u128, &V)> {
        *touched += 1;
        match self {
            Node::Leaf { keys, vals } => keys.get(i).map(|k| (*k, &vals[i])),
            Node::Internal { children, .. } => {
                for child in children {
                    let l = child.len();
                    if i < l {
                        return child.kth(i, touched);
                    }
                    i -= l;
                }
                None
            }
        }
    }

    pub(crate) fn for_each_range<F: FnMut(u128, &V)>(
        &self,
        lo: u128,
        hi: u128,
        f: &mut F,
        touched: &mut u64,
    ) {
        *touched += 1;
        match self {
            Node::Leaf { keys, vals } => {
                let start = keys.partition_point(|k| *k < lo);
                let end = keys.partition_point(|k| *k < hi);
                for idx in start..end {
                    f(keys[idx], &vals[idx]);
                }
            }
            Node::Internal { seps, children, .. } => {
                let start = route(seps, lo);
                // Last child that may contain a key < hi.
                let end = seps.partition_point(|s| *s < hi);
                for child in &children[start..=end] {
                    child.for_each_range(lo, hi, f, touched);
                }
            }
        }
    }

    /// O(n) bottom-up construction from sorted entries.
    pub(crate) fn build_from_sorted(items: Vec<(u128, V)>) -> Node<V> {
        if items.len() <= MAX_LEN {
            let mut keys = Vec::with_capacity(items.len());
            let mut vals = Vec::with_capacity(items.len());
            for (k, v) in items {
                keys.push(k);
                vals.push(v);
            }
            return Node::Leaf { keys, vals };
        }
        // Leaf level: near-equal chunks with every chunk in [MIN, MAX].
        let target = (MAX_LEN * 3) / 4;
        let n = items.len();
        let chunks = n.div_ceil(target);
        let base = n / chunks;
        let extra = n % chunks;
        let mut level: Vec<(u128, Node<V>)> = Vec::with_capacity(chunks);
        let mut it = items.into_iter();
        for c in 0..chunks {
            let size = base + usize::from(c < extra);
            let mut keys = Vec::with_capacity(size);
            let mut vals = Vec::with_capacity(size);
            for _ in 0..size {
                let (k, v) = it.next().expect("chunk sizes sum to n");
                keys.push(k);
                vals.push(v);
            }
            level.push((keys[0], Node::Leaf { keys, vals }));
        }
        // Interior levels.
        while level.len() > 1 {
            if level.len() <= MAX_LEN {
                return make_internal(level);
            }
            let n = level.len();
            let chunks = n.div_ceil(target);
            let base = n / chunks;
            let extra = n % chunks;
            let mut next: Vec<(u128, Node<V>)> = Vec::with_capacity(chunks);
            let mut it = level.into_iter();
            for c in 0..chunks {
                let size = base + usize::from(c < extra);
                let group: Vec<(u128, Node<V>)> = (&mut it).take(size).collect();
                let min = group[0].0;
                next.push((min, make_internal(group)));
            }
            level = next;
        }
        level.pop().expect("non-empty level").1
    }

    pub(crate) fn memory_bytes(&self) -> usize {
        match self {
            Node::Leaf { keys, vals } => {
                keys.capacity() * std::mem::size_of::<u128>()
                    + vals.capacity() * std::mem::size_of::<V>()
            }
            Node::Internal { seps, children, .. } => {
                seps.capacity() * std::mem::size_of::<u128>()
                    + children.capacity() * std::mem::size_of::<Node<V>>()
                    + children.iter().map(Node::memory_bytes).sum::<usize>()
            }
        }
    }

    /// Recursive invariant check; returns (entry count, depth).
    pub(crate) fn check(
        &self,
        lower: Option<u128>,
        upper: Option<u128>,
        is_root: bool,
    ) -> Result<(usize, usize), String> {
        let in_bounds =
            |k: u128| lower.map(|l| k >= l).unwrap_or(true) && upper.map(|u| k < u).unwrap_or(true);
        match self {
            Node::Leaf { keys, vals } => {
                if keys.len() != vals.len() {
                    return Err("keys/vals length mismatch".into());
                }
                if !is_root && keys.len() < MIN_LEN {
                    return Err(format!("underfull leaf: {}", keys.len()));
                }
                if keys.len() > MAX_LEN {
                    return Err(format!("overfull leaf: {}", keys.len()));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err("leaf keys not strictly increasing".into());
                }
                if !keys.iter().all(|&k| in_bounds(k)) {
                    return Err("leaf key outside separator bounds".into());
                }
                Ok((keys.len(), 0))
            }
            Node::Internal {
                seps,
                children,
                count,
            } => {
                if children.len() != seps.len() + 1 {
                    return Err("children/seps arity mismatch".into());
                }
                if !is_root && children.len() < MIN_LEN {
                    return Err(format!("underfull interior: {}", children.len()));
                }
                if children.len() > MAX_LEN {
                    return Err(format!("overfull interior: {}", children.len()));
                }
                if is_root && children.len() < 2 {
                    return Err("interior root with fewer than 2 children".into());
                }
                if !seps.windows(2).all(|w| w[0] < w[1]) {
                    return Err("separators not strictly increasing".into());
                }
                if !seps.iter().all(|&s| in_bounds(s)) {
                    return Err("separator outside parent bounds".into());
                }
                let mut total = 0usize;
                let mut depth = None;
                for (i, child) in children.iter().enumerate() {
                    let lo = if i == 0 { lower } else { Some(seps[i - 1]) };
                    let hi = if i == seps.len() {
                        upper
                    } else {
                        Some(seps[i])
                    };
                    let (c, d) = child.check(lo, hi, false)?;
                    total += c;
                    match depth {
                        None => depth = Some(d),
                        Some(prev) if prev != d => return Err("leaves at different depths".into()),
                        _ => {}
                    }
                }
                if total != *count {
                    return Err(format!("cached count {count} != sum {total}"));
                }
                Ok((total, depth.unwrap_or(0) + 1))
            }
        }
    }
}

fn make_internal<V>(group: Vec<(u128, Node<V>)>) -> Node<V> {
    debug_assert!(group.len() >= 2);
    let mut seps = Vec::with_capacity(group.len() - 1);
    let mut children = Vec::with_capacity(group.len());
    let mut count = 0usize;
    for (i, (min, node)) in group.into_iter().enumerate() {
        if i > 0 {
            seps.push(min);
        }
        count += node.len();
        children.push(node);
    }
    Node::Internal {
        seps,
        children,
        count,
    }
}

/// Fix an underfull `children[i]` by borrowing from a sibling or merging.
fn rebalance<V>(seps: &mut Vec<u128>, children: &mut Vec<Node<V>>, i: usize, touched: &mut u64) {
    *touched += 2;
    // Try borrowing from the left sibling.
    if i > 0 && can_lend(&children[i - 1]) {
        let (left_part, right_part) = children.split_at_mut(i);
        let left = &mut left_part[i - 1];
        let cur = &mut right_part[0];
        match (left, cur) {
            (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: ck, vals: cv }) => {
                let k = lk.pop().expect("left can lend");
                let v = lv.pop().expect("left can lend");
                ck.insert(0, k);
                cv.insert(0, v);
                seps[i - 1] = k;
            }
            (
                Node::Internal {
                    seps: ls,
                    children: lc,
                    count: lcount,
                },
                Node::Internal {
                    seps: cs,
                    children: cc,
                    count: ccount,
                },
            ) => {
                let moved = lc.pop().expect("left can lend");
                let moved_len = moved.len();
                *lcount -= moved_len;
                *ccount += moved_len;
                cs.insert(0, seps[i - 1]);
                seps[i - 1] = ls.pop().expect("left interior has seps");
                cc.insert(0, moved);
            }
            _ => unreachable!("siblings are at the same level"),
        }
        return;
    }
    // Try borrowing from the right sibling.
    if i + 1 < children.len() && can_lend(&children[i + 1]) {
        let (left_part, right_part) = children.split_at_mut(i + 1);
        let cur = &mut left_part[i];
        let right = &mut right_part[0];
        match (cur, right) {
            (Node::Leaf { keys: ck, vals: cv }, Node::Leaf { keys: rk, vals: rv }) => {
                let k = rk.remove(0);
                let v = rv.remove(0);
                ck.push(k);
                cv.push(v);
                seps[i] = rk[0];
            }
            (
                Node::Internal {
                    seps: cs,
                    children: cc,
                    count: ccount,
                },
                Node::Internal {
                    seps: rs,
                    children: rc,
                    count: rcount,
                },
            ) => {
                let moved = rc.remove(0);
                let moved_len = moved.len();
                *rcount -= moved_len;
                *ccount += moved_len;
                cs.push(seps[i]);
                seps[i] = rs.remove(0);
                cc.push(moved);
            }
            _ => unreachable!("siblings are at the same level"),
        }
        return;
    }
    // Merge with a sibling (prefer left).
    let (l, r) = if i > 0 { (i - 1, i) } else { (i, i + 1) };
    debug_assert!(
        r < children.len(),
        "a non-root interior node has >= 2 children"
    );
    let right = children.remove(r);
    let sep = seps.remove(l);
    match (&mut children[l], right) {
        (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
            lk.extend(rk);
            lv.extend(rv);
        }
        (
            Node::Internal {
                seps: ls,
                children: lc,
                count: lcount,
            },
            Node::Internal {
                seps: rs,
                children: rc,
                count: rcount,
            },
        ) => {
            ls.push(sep);
            ls.extend(rs);
            *lcount += rcount;
            lc.extend(rc);
        }
        _ => unreachable!("siblings are at the same level"),
    }
}

fn can_lend<V>(node: &Node<V>) -> bool {
    match node {
        Node::Leaf { keys, .. } => keys.len() > MIN_LEN,
        Node::Internal { children, .. } => children.len() > MIN_LEN,
    }
}
