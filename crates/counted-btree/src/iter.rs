//! In-order iteration over a [`crate::CountedBTree`].

use crate::node::Node;

/// Borrowing iterator over `(key, &value)` pairs in key order.
pub struct Iter<'a, V> {
    /// Stack of (interior node, next child index) frames.
    stack: Vec<(&'a Node<V>, usize)>,
    /// Current leaf and position within it.
    leaf: Option<(&'a Node<V>, usize)>,
    remaining: usize,
}

impl<'a, V> Iter<'a, V> {
    pub(crate) fn new(root: &'a Node<V>, len: usize) -> Self {
        let mut it = Iter {
            stack: Vec::new(),
            leaf: None,
            remaining: len,
        };
        it.descend(root);
        it
    }

    fn descend(&mut self, mut node: &'a Node<V>) {
        loop {
            match node {
                Node::Leaf { .. } => {
                    self.leaf = Some((node, 0));
                    return;
                }
                Node::Internal { children, .. } => {
                    self.stack.push((node, 1));
                    node = &children[0];
                }
            }
        }
    }
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u128, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((leaf, idx)) = &mut self.leaf {
                if let Node::Leaf { keys, vals } = leaf {
                    if *idx < keys.len() {
                        let out = (keys[*idx], &vals[*idx]);
                        *idx += 1;
                        self.remaining -= 1;
                        return Some(out);
                    }
                }
                self.leaf = None;
            }
            // Advance to the next leaf via the frame stack.
            loop {
                let (node, next_child) = self.stack.pop()?;
                if let Node::Internal { children, .. } = node {
                    if next_child < children.len() {
                        self.stack.push((node, next_child + 1));
                        self.descend(&children[next_child]);
                        break;
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<V> ExactSizeIterator for Iter<'_, V> {}
