//! # `counted-btree` — an order-statistic B+-tree
//!
//! Section 4.2 of the L-Tree paper ("Virtual L-Tree") requires the leaf
//! labels to be "maintained in a B-tree whose internal nodes also maintain
//! counts", so that *range counting* — "how many leaf labels are in the
//! range `[num(v), num(v) + (f+1)^h)`" — runs in logarithmic time.
//!
//! This crate is that substrate, built from scratch:
//!
//! * a B+-tree over `u128` keys with values of any type `V`;
//! * every interior node caches its subtree entry count, giving
//!   `O(log n)` [`rank`](CountedBTree::rank), [`kth`](CountedBTree::kth)
//!   and [`count_range`](CountedBTree::count_range);
//! * ordered iteration, range iteration, successor/predecessor queries;
//! * [`drain_range`](CountedBTree::drain_range) +
//!   [`extend_sorted`](CountedBTree::extend_sorted) — the primitive pair
//!   the virtual L-Tree uses to relabel a dense region in place;
//! * an instrumentation counter ([`touches`](CountedBTree::touches)) so
//!   the experiment harness can report maintenance cost in the paper's
//!   "nodes accessed" unit.
//!
//! ```
//! use counted_btree::CountedBTree;
//!
//! let mut t = CountedBTree::new();
//! for k in [10u128, 20, 30, 40] {
//!     t.insert(k, format!("v{k}")).unwrap();
//! }
//! assert_eq!(t.len(), 4);
//! assert_eq!(t.rank(25), 2);             // keys < 25
//! assert_eq!(t.count_range(15, 45), 3);  // 20, 30, 40
//! assert_eq!(t.kth(1).map(|(k, _)| k), Some(20));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod iter;
mod node;

pub use iter::Iter;
use node::{InsertResult, Node};

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum entries in a leaf / children in an interior node.
pub(crate) const MAX_LEN: usize = 16;
/// Minimum fill for non-root nodes.
pub(crate) const MIN_LEN: usize = MAX_LEN / 2;

/// Error returned by [`CountedBTree::insert`] when the key already exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateKey(
    /// The offending key.
    pub u128,
);

impl std::fmt::Display for DuplicateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key {} already present", self.0)
    }
}

impl std::error::Error for DuplicateKey {}

/// An order-statistic B+-tree over `u128` keys. See the
/// [crate docs](crate).
pub struct CountedBTree<V> {
    root: Node<V>,
    len: usize,
    // Atomic (not `Cell`) so read-side instrumentation keeps the tree
    // `Sync`: schemes built on this substrate are shared across server
    // connection threads by `ltree-remote`. Relaxed ordering suffices —
    // the counter is a statistic, not a synchronization point.
    touches: AtomicU64,
}

impl<V> Default for CountedBTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> CountedBTree<V> {
    /// An empty tree.
    pub fn new() -> Self {
        CountedBTree {
            root: Node::empty_leaf(),
            len: 0,
            touches: AtomicU64::new(0),
        }
    }

    /// Build from strictly-increasing `(key, value)` pairs in `O(n)`.
    ///
    /// # Panics
    /// Panics if the keys are not strictly increasing.
    pub fn from_sorted(items: Vec<(u128, V)>) -> Self {
        assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly increasing keys"
        );
        let len = items.len();
        let root = Node::build_from_sorted(items);
        CountedBTree {
            root,
            len,
            touches: AtomicU64::new(0),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.root = Node::empty_leaf();
        self.len = 0;
    }

    /// Node accesses since the last [`reset_touches`](Self::reset_touches)
    /// — the paper's cost unit for the virtual L-Tree's "extra
    /// computation".
    ///
    /// Ordering: `Relaxed` at every `touches` site (here, the reset,
    /// and the `touch` adds). The counter is atomic only so read paths
    /// like [`get`](Self::get) can count through `&self`; the tree
    /// itself is not concurrently mutable (`&mut self` everywhere else)
    /// and no memory is published under the counter, so no site needs
    /// an ordering stronger than the RMW's built-in atomicity.
    pub fn touches(&self) -> u64 {
        // relaxed: the tree is not concurrently mutated; the counter carries no ordering.
        self.touches.load(Ordering::Relaxed)
    }

    /// Reset the access counter.
    pub fn reset_touches(&self) {
        // relaxed: reset carries no ordering (see the field docs above).
        self.touches.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn touch(&self, n: u64) {
        // relaxed: counting only; the RMW's atomicity is all that is needed.
        self.touches.fetch_add(n, Ordering::Relaxed);
    }

    /// Insert an entry; errors on duplicate keys.
    pub fn insert(&mut self, key: u128, value: V) -> Result<(), DuplicateKey> {
        let mut touched = 0u64;
        match self.root.insert(key, value, &mut touched) {
            InsertResult::Done => {}
            InsertResult::Duplicate(v) => {
                self.touch(touched);
                let _ = v;
                return Err(DuplicateKey(key));
            }
            InsertResult::Split(sep, right) => {
                let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
                self.root = Node::new_root(old_root, sep, right);
                touched += 1;
            }
        }
        self.touch(touched);
        self.len += 1;
        Ok(())
    }

    /// Remove an entry by key, returning its value.
    pub fn remove(&mut self, key: u128) -> Option<V> {
        let mut touched = 0u64;
        let out = self.root.remove(key, &mut touched);
        if out.is_some() {
            self.len -= 1;
            self.root.collapse_root();
        }
        self.touch(touched);
        out
    }

    /// Borrow the value stored under `key`.
    pub fn get(&self, key: u128) -> Option<&V> {
        let mut touched = 0u64;
        let out = self.root.get(key, &mut touched);
        self.touch(touched);
        out
    }

    /// Mutably borrow the value stored under `key`.
    pub fn get_mut(&mut self, key: u128) -> Option<&mut V> {
        let mut touched = 0u64;
        let out = self.root.get_mut(key, &mut touched);
        // Direct field access: `out` still borrows `self.root`, so the
        // `touch` method (which borrows all of `self`) is unavailable.
        self.touches.fetch_add(touched, Ordering::Relaxed);
        out
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u128) -> bool {
        self.get(key).is_some()
    }

    /// Number of keys strictly below `key` — `O(log n)` thanks to the
    /// per-node counts.
    pub fn rank(&self, key: u128) -> usize {
        let mut touched = 0u64;
        let out = self.root.rank(key, &mut touched);
        self.touch(touched);
        out
    }

    /// Number of keys in the half-open range `[lo, hi)`.
    pub fn count_range(&self, lo: u128, hi: u128) -> usize {
        if hi <= lo {
            return 0;
        }
        self.rank(hi) - self.rank(lo)
    }

    /// The `i`-th smallest entry (0-based), `O(log n)`.
    pub fn kth(&self, i: usize) -> Option<(u128, &V)> {
        if i >= self.len {
            return None;
        }
        let mut touched = 0u64;
        let out = self.root.kth(i, &mut touched);
        self.touch(touched);
        out
    }

    /// Smallest entry with key `≥ key`.
    pub fn successor(&self, key: u128) -> Option<(u128, &V)> {
        self.kth(self.rank(key))
    }

    /// Largest entry with key `< key`.
    pub fn predecessor(&self, key: u128) -> Option<(u128, &V)> {
        let r = self.rank(key);
        if r == 0 {
            None
        } else {
            self.kth(r - 1)
        }
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<u128> {
        self.kth(0).map(|(k, _)| k)
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<u128> {
        if self.len == 0 {
            None
        } else {
            self.kth(self.len - 1).map(|(k, _)| k)
        }
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter::new(&self.root, self.len)
    }

    /// Call `f` on every entry with key in `[lo, hi)`, in key order.
    pub fn for_each_range<F: FnMut(u128, &V)>(&self, lo: u128, hi: u128, mut f: F) {
        if hi <= lo {
            return;
        }
        let mut touched = 0u64;
        self.root.for_each_range(lo, hi, &mut f, &mut touched);
        self.touch(touched);
    }

    /// Remove and return all entries with key in `[lo, hi)`, in key order.
    /// This plus [`extend_sorted`](Self::extend_sorted) is how the virtual
    /// L-Tree relabels a region.
    pub fn drain_range(&mut self, lo: u128, hi: u128) -> Vec<(u128, V)> {
        let mut out = Vec::new();
        if hi <= lo {
            return out;
        }
        // Collect the keys first (cheap), then remove them one by one.
        let mut keys = Vec::new();
        self.for_each_range(lo, hi, |k, _| keys.push(k));
        out.reserve(keys.len());
        for k in keys {
            let v = self.remove(k).expect("key listed by range scan");
            out.push((k, v));
        }
        out
    }

    /// Insert strictly-increasing entries (typically the relabeled output
    /// of a [`drain_range`](Self::drain_range)).
    pub fn extend_sorted(&mut self, items: Vec<(u128, V)>) -> Result<(), DuplicateKey> {
        debug_assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
        for (k, v) in items {
            self.insert(k, v)?;
        }
        Ok(())
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.root.memory_bytes()
    }

    /// Validate every structural invariant (tests; `O(n)`).
    pub fn check_invariants(&self) -> Result<(), String> {
        let (count, depth) = self.root.check(None, None, true)?;
        if count != self.len {
            return Err(format!("cached len {} != counted {}", self.len, count));
        }
        let _ = depth;
        Ok(())
    }
}

impl<V: Clone> Clone for CountedBTree<V> {
    fn clone(&self) -> Self {
        CountedBTree::from_sorted(self.iter().map(|(k, v)| (k, v.clone())).collect())
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for CountedBTree<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: CountedBTree<i32> = CountedBTree::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.rank(100), 0);
        assert_eq!(t.kth(0), None);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = CountedBTree::new();
        for k in 0..200u128 {
            t.insert(k * 3, k).unwrap();
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 200);
        assert_eq!(t.get(30), Some(&10));
        assert_eq!(t.get(31), None);
        assert_eq!(t.remove(30), Some(10));
        assert_eq!(t.remove(30), None);
        assert_eq!(t.len(), 199);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut t = CountedBTree::new();
        t.insert(5, "a").unwrap();
        assert_eq!(t.insert(5, "b"), Err(DuplicateKey(5)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some(&"a"));
    }

    #[test]
    fn rank_and_kth() {
        let mut t = CountedBTree::new();
        for k in (0..500u128).rev() {
            t.insert(k * 2, ()).unwrap();
        }
        for k in 0..500u128 {
            assert_eq!(t.rank(k * 2), k as usize, "rank of existing key");
            assert_eq!(t.rank(k * 2 + 1), k as usize + 1, "rank between keys");
            assert_eq!(t.kth(k as usize).map(|(kk, _)| kk), Some(k * 2));
        }
        assert_eq!(t.rank(0), 0);
        assert_eq!(t.rank(u128::MAX), 500);
    }

    #[test]
    fn count_range_matches_filter() {
        let mut t = CountedBTree::new();
        for k in 0..100u128 {
            let key = k * 7 % 1000;
            if !t.contains(key) {
                t.insert(key, k).unwrap();
            }
        }
        let keys: Vec<u128> = t.iter().map(|(k, _)| k).collect();
        for (lo, hi) in [(0, 1000), (50, 300), (299, 300), (300, 50), (0, 0)] {
            let expect = keys.iter().filter(|&&k| k >= lo && k < hi).count();
            assert_eq!(t.count_range(lo, hi), expect, "range [{lo},{hi})");
        }
    }

    #[test]
    fn successor_predecessor() {
        let t = CountedBTree::from_sorted(vec![(10, 'a'), (20, 'b'), (30, 'c')]);
        assert_eq!(t.successor(10).map(|(k, _)| k), Some(10));
        assert_eq!(t.successor(11).map(|(k, _)| k), Some(20));
        assert_eq!(t.successor(31), None);
        assert_eq!(t.predecessor(10), None);
        assert_eq!(t.predecessor(11).map(|(k, _)| k), Some(10));
        assert_eq!(t.predecessor(u128::MAX).map(|(k, _)| k), Some(30));
    }

    #[test]
    fn from_sorted_matches_incremental() {
        let items: Vec<(u128, u64)> = (0..1000).map(|k| (k as u128 * 5, k)).collect();
        let bulk = CountedBTree::from_sorted(items.clone());
        bulk.check_invariants().unwrap();
        let mut inc = CountedBTree::new();
        for (k, v) in items {
            inc.insert(k, v).unwrap();
        }
        assert_eq!(bulk.len(), inc.len());
        assert!(bulk.iter().eq(inc.iter()));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_unsorted() {
        let _ = CountedBTree::from_sorted(vec![(2, ()), (1, ())]);
    }

    #[test]
    fn drain_range_and_extend() {
        let mut t = CountedBTree::from_sorted((0..50u128).map(|k| (k, k as i32)).collect());
        let drained = t.drain_range(10, 20);
        assert_eq!(drained.len(), 10);
        assert_eq!(t.len(), 40);
        t.check_invariants().unwrap();
        // Re-insert shifted by 100 (still clear of existing keys).
        t.extend_sorted(drained.into_iter().map(|(k, v)| (k + 100, v)).collect())
            .unwrap();
        assert_eq!(t.len(), 50);
        t.check_invariants().unwrap();
        assert_eq!(t.count_range(10, 20), 0);
        assert_eq!(t.count_range(110, 120), 10);
    }

    #[test]
    fn removal_heavy_shrinks_back() {
        let mut t = CountedBTree::new();
        for k in 0..2000u128 {
            t.insert(k, ()).unwrap();
        }
        for k in 0..2000u128 {
            assert!(t.remove(k).is_some());
            if k % 97 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        // Reusable after emptying.
        t.insert(7, ()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interleaved_against_std_btreemap() {
        use std::collections::BTreeMap;
        let mut model = BTreeMap::new();
        let mut t = CountedBTree::new();
        let mut x: u64 = 0x12345678;
        let mut next = || {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..5000 {
            let k = u128::from(next() % 800);
            match next() % 3 {
                0 => {
                    let r1 = t.insert(k, k).is_ok();
                    let r2 = !model.contains_key(&k);
                    assert_eq!(r1, r2);
                    if r2 {
                        model.insert(k, k);
                    }
                }
                1 => {
                    assert_eq!(t.remove(k), model.remove(&k));
                }
                _ => {
                    assert_eq!(t.get(k), model.get(&k));
                    let rank = model.range(..k).count();
                    assert_eq!(t.rank(k), rank);
                }
            }
        }
        assert_eq!(t.len(), model.len());
        assert!(t.iter().map(|(k, _)| k).eq(model.keys().copied()));
        t.check_invariants().unwrap();
    }

    #[test]
    fn touch_counter_moves() {
        let mut t = CountedBTree::new();
        for k in 0..100u128 {
            t.insert(k, ()).unwrap();
        }
        t.reset_touches();
        assert_eq!(t.touches(), 0);
        let _ = t.rank(50);
        assert!(t.touches() > 0);
    }

    #[test]
    fn clone_and_debug() {
        let t = CountedBTree::from_sorted(vec![(1, 'x'), (2, 'y')]);
        let c = t.clone();
        assert!(t.iter().eq(c.iter()));
        let dbg = format!("{t:?}");
        assert!(dbg.contains('x'));
    }

    #[test]
    fn for_each_range_boundaries() {
        let t = CountedBTree::from_sorted((0..100u128).map(|k| (k * 2, k)).collect());
        let mut seen = Vec::new();
        t.for_each_range(10, 20, |k, _| seen.push(k));
        assert_eq!(seen, vec![10, 12, 14, 16, 18]);
        seen.clear();
        t.for_each_range(20, 10, |k, _| seen.push(k));
        assert!(seen.is_empty());
    }
}
