//! Model-checking tests: the counted B-tree agrees with `std::BTreeMap`
//! on every operation, including the order statistics the standard map
//! cannot answer directly. Op streams come from a tiny seeded SplitMix64
//! (this crate is dependency-free, so no external proptest); failures
//! reproduce from the printed seed.

use counted_btree::CountedBTree;
use std::collections::BTreeMap;

/// Local SplitMix64 (counted-btree has no dependencies, by design).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn key(&mut self) -> u16 {
        self.next_u64() as u16
    }
}

#[derive(Debug)]
enum Op {
    Insert(u16),
    Remove(u16),
    Rank(u16),
    Kth(u16),
    CountRange(u16, u16),
    Successor(u16),
    Predecessor(u16),
    DrainRange(u16, u16),
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.pick(17) {
        0..=4 => Op::Insert(rng.key()),
        5..=7 => Op::Remove(rng.key()),
        8..=9 => Op::Rank(rng.key()),
        10..=11 => Op::Kth(rng.key()),
        12..=13 => Op::CountRange(rng.key(), rng.key()),
        14 => Op::Successor(rng.key()),
        15 => Op::Predecessor(rng.key()),
        _ => Op::DrainRange(rng.key(), rng.key()),
    }
}

fn check_one(tree: &mut CountedBTree<u16>, model: &mut BTreeMap<u128, u16>, op: &Op, seed: u64) {
    match *op {
        Op::Insert(k) => {
            let k128 = u128::from(k);
            let ours = tree.insert(k128, k).is_ok();
            let theirs = !model.contains_key(&k128);
            assert_eq!(ours, theirs, "seed {seed}: insert {k}");
            if theirs {
                model.insert(k128, k);
            }
        }
        Op::Remove(k) => {
            assert_eq!(
                tree.remove(u128::from(k)),
                model.remove(&u128::from(k)),
                "seed {seed}"
            );
        }
        Op::Rank(k) => {
            let expect = model.range(..u128::from(k)).count();
            assert_eq!(tree.rank(u128::from(k)), expect, "seed {seed}: rank {k}");
        }
        Op::Kth(i) => {
            let i = usize::from(i);
            let expect = model.iter().nth(i).map(|(&k, v)| (k, v));
            assert_eq!(tree.kth(i), expect, "seed {seed}: kth {i}");
        }
        Op::CountRange(a, b) => {
            let (lo, hi) = (u128::from(a), u128::from(b));
            let expect = if hi <= lo {
                0
            } else {
                model.range(lo..hi).count()
            };
            assert_eq!(
                tree.count_range(lo, hi),
                expect,
                "seed {seed}: count [{lo},{hi})"
            );
        }
        Op::Successor(k) => {
            let expect = model.range(u128::from(k)..).next().map(|(&kk, v)| (kk, v));
            assert_eq!(
                tree.successor(u128::from(k)),
                expect,
                "seed {seed}: successor {k}"
            );
        }
        Op::Predecessor(k) => {
            let expect = model
                .range(..u128::from(k))
                .next_back()
                .map(|(&kk, v)| (kk, v));
            assert_eq!(
                tree.predecessor(u128::from(k)),
                expect,
                "seed {seed}: predecessor {k}"
            );
        }
        Op::DrainRange(a, b) => {
            let (lo, hi) = (u128::from(a), u128::from(b));
            let drained = tree.drain_range(lo, hi);
            let expect: Vec<(u128, u16)> = if hi <= lo {
                Vec::new()
            } else {
                let keys: Vec<u128> = model.range(lo..hi).map(|(&k, _)| k).collect();
                keys.into_iter()
                    .map(|k| (k, model.remove(&k).unwrap()))
                    .collect()
            };
            assert_eq!(drained, expect, "seed {seed}: drain [{lo},{hi})");
        }
    }
}

#[test]
fn agrees_with_btreemap() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed);
        let mut tree: CountedBTree<u16> = CountedBTree::new();
        let mut model: BTreeMap<u128, u16> = BTreeMap::new();
        let stream_len = 1 + rng.pick(200);
        for _ in 0..stream_len {
            let op = random_op(&mut rng);
            check_one(&mut tree, &mut model, &op, seed);
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(tree.len(), model.len(), "seed {seed}");
        }
        // Full iteration agreement at the end.
        assert!(
            tree.iter()
                .map(|(k, v)| (k, *v))
                .eq(model.iter().map(|(&k, &v)| (k, v))),
            "seed {seed}: final iteration diverged"
        );
    }
}

#[test]
fn from_sorted_equals_incremental() {
    for seed in 100..132u64 {
        let mut rng = Rng(seed);
        let keys: std::collections::BTreeSet<u16> = (0..rng.pick(500)).map(|_| rng.key()).collect();
        let items: Vec<(u128, u16)> = keys.iter().map(|&k| (u128::from(k), k)).collect();
        let bulk = CountedBTree::from_sorted(items.clone());
        bulk.check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut inc = CountedBTree::new();
        for (k, v) in items {
            inc.insert(k, v).unwrap();
        }
        assert!(bulk.iter().eq(inc.iter()), "seed {seed}");
    }
}
