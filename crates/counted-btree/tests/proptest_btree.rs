//! Property tests: the counted B-tree agrees with `std::BTreeMap` on
//! every operation, including the order statistics the standard map
//! cannot answer directly.

use counted_btree::CountedBTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16),
    Remove(u16),
    Rank(u16),
    Kth(u16),
    CountRange(u16, u16),
    Successor(u16),
    Predecessor(u16),
    DrainRange(u16, u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            5 => any::<u16>().prop_map(Op::Insert),
            3 => any::<u16>().prop_map(Op::Remove),
            2 => any::<u16>().prop_map(Op::Rank),
            2 => any::<u16>().prop_map(Op::Kth),
            2 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::CountRange(a, b)),
            1 => any::<u16>().prop_map(Op::Successor),
            1 => any::<u16>().prop_map(Op::Predecessor),
            1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::DrainRange(a, b)),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn agrees_with_btreemap(stream in ops()) {
        let mut tree: CountedBTree<u16> = CountedBTree::new();
        let mut model: BTreeMap<u128, u16> = BTreeMap::new();
        for op in &stream {
            match *op {
                Op::Insert(k) => {
                    let k128 = u128::from(k);
                    let ours = tree.insert(k128, k).is_ok();
                    let theirs = !model.contains_key(&k128);
                    prop_assert_eq!(ours, theirs);
                    if theirs {
                        model.insert(k128, k);
                    }
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(u128::from(k)), model.remove(&u128::from(k)));
                }
                Op::Rank(k) => {
                    let expect = model.range(..u128::from(k)).count();
                    prop_assert_eq!(tree.rank(u128::from(k)), expect);
                }
                Op::Kth(i) => {
                    let i = usize::from(i);
                    let expect = model.iter().nth(i).map(|(&k, v)| (k, v));
                    prop_assert_eq!(tree.kth(i), expect);
                }
                Op::CountRange(a, b) => {
                    let (lo, hi) = (u128::from(a), u128::from(b));
                    let expect = model.range(lo..hi.max(lo)).count();
                    let expect = if hi <= lo { 0 } else { expect };
                    prop_assert_eq!(tree.count_range(lo, hi), expect);
                }
                Op::Successor(k) => {
                    let expect = model.range(u128::from(k)..).next().map(|(&kk, v)| (kk, v));
                    prop_assert_eq!(tree.successor(u128::from(k)), expect);
                }
                Op::Predecessor(k) => {
                    let expect = model.range(..u128::from(k)).next_back().map(|(&kk, v)| (kk, v));
                    prop_assert_eq!(tree.predecessor(u128::from(k)), expect);
                }
                Op::DrainRange(a, b) => {
                    let (lo, hi) = (u128::from(a), u128::from(b));
                    let drained = tree.drain_range(lo, hi);
                    let expect: Vec<(u128, u16)> = if hi <= lo {
                        Vec::new()
                    } else {
                        let keys: Vec<u128> = model.range(lo..hi).map(|(&k, _)| k).collect();
                        keys.into_iter().map(|k| (k, model.remove(&k).unwrap())).collect()
                    };
                    prop_assert_eq!(drained, expect);
                }
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(tree.len(), model.len());
        }
        // Full iteration agreement at the end.
        prop_assert!(tree.iter().map(|(k, v)| (k, *v)).eq(model.iter().map(|(&k, &v)| (k, v))));
    }

    #[test]
    fn from_sorted_equals_incremental(keys in prop::collection::btree_set(any::<u16>(), 0..500)) {
        let items: Vec<(u128, u16)> = keys.iter().map(|&k| (u128::from(k), k)).collect();
        let bulk = CountedBTree::from_sorted(items.clone());
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        let mut inc = CountedBTree::new();
        for (k, v) in items {
            inc.insert(k, v).unwrap();
        }
        prop_assert!(bulk.iter().eq(inc.iter()));
    }
}
