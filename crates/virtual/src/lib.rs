//! # `ltree-virtual` — the virtual L-Tree (paper, Section 4.2)
//!
//! > "As an alternative to storing the L-Tree on disk, we can store only
//! > the leaf labels (with the XML nodes) because all the structural
//! > information of the L-Tree is implicit in the labels themselves. …
//! > the base (f+1) digits of num(v) provide an encoding of all the
//! > ancestors of v."
//!
//! This crate implements that alternative:
//!
//! * the only persistent state is the multiset of leaf labels, kept in a
//!   [`counted_btree::CountedBTree`] ("a B-tree whose internal nodes also
//!   maintain counts"), plus an `O(1)` handle → label map;
//! * the split criterion for a *virtual* node at height `h` above an
//!   anchor with label `x` is evaluated by one range count over
//!   `[align(x,h), align(x,h) + (f+1)^h)`;
//! * when a virtual node must split, the replacement labels of "the `s`
//!   complete `f/s`-ary (virtual) trees can be computed easily and
//!   updated in place, on the labels identified by the range query";
//! * the labels produced are **bit-for-bit identical** to the
//!   materialized [`ltree_core::LTree`] under the same operation stream —
//!   both sides derive them from the shared [`ltree_core::layout`]
//!   helpers, and the integration test-suite verifies the equivalence on
//!   randomized workloads.
//!
//! The trade-off, as the paper notes, is "extra computation required by
//! the range queries" versus "the storage space necessary for
//! materializing the L-Tree" — experiment X9 measures exactly that.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use counted_btree::CountedBTree;
use ltree_core::layout::{ceil_div, complete_offset, even_split, RootRebuild};
use ltree_core::registry::SchemeRegistry;
use ltree_core::{
    BatchLabeling, Instrumented, LTreeError, LeafHandle, OrderedLabeling, OrderedLabelingMut,
    Params, Result, SchemeStats,
};

#[derive(Debug, Clone)]
struct VItem {
    label: u128,
    deleted: bool,
    alive: bool,
}

/// The virtual L-Tree. See the [crate docs](crate).
pub struct VirtualLTree {
    params: Params,
    height: u8,
    /// label → item index. Tombstoned items stay present (they still
    /// occupy label slots, exactly like the materialized tombstones).
    tree: CountedBTree<u32>,
    items: Vec<VItem>,
    n_live: u64,
    stats: SchemeStats,
    /// Range-count probes issued (the virtual scheme's "extra
    /// computation"; exposed for experiment X9).
    range_probes: u64,
}

impl VirtualLTree {
    /// An empty virtual L-Tree.
    pub fn new(params: Params) -> Self {
        VirtualLTree {
            params,
            height: 1,
            tree: CountedBTree::new(),
            items: Vec::new(),
            n_live: 0,
            stats: SchemeStats::default(),
            range_probes: 0,
        }
    }

    /// Shape parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Height of the virtual tree (grows on virtual root rebuilds).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Range-count probes issued since the last stats reset.
    pub fn range_probes(&self) -> u64 {
        self.range_probes
    }

    /// All current labels in order (tombstones included) — test helper
    /// mirroring `LTree::leaves()` + `label()`.
    pub fn labels_in_order(&self) -> Vec<u128> {
        self.tree.iter().map(|(k, _)| k).collect()
    }

    /// Validate the label set against the structural rules the labels
    /// encode (every label below `B^H`; strictly increasing; the B-tree's
    /// own invariants).
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        self.tree.check_invariants()?;
        let space = self
            .params
            .interval(self.height)
            .map_err(|e| e.to_string())?;
        let mut prev: Option<u128> = None;
        for (k, &idx) in self.tree.iter() {
            if k >= space {
                return Err(format!("label {k} outside space {space}"));
            }
            if let Some(p) = prev {
                if p >= k {
                    return Err("labels not strictly increasing".into());
                }
            }
            prev = Some(k);
            let item = self.items.get(idx as usize).ok_or("dangling item index")?;
            if !item.alive || item.label != k {
                return Err(format!(
                    "item {idx} out of sync: stored {} vs key {k}",
                    item.label
                ));
            }
        }
        Ok(())
    }

    fn item(&self, h: LeafHandle) -> Result<&VItem> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get(idx) {
            Some(item) if item.alive => Ok(item),
            _ => Err(LTreeError::UnknownHandle),
        }
    }

    fn count_range(&mut self, lo: u128, hi: u128) -> u64 {
        self.range_probes += 1;
        self.tree.count_range(lo, hi) as u64
    }

    /// The insertion core — the virtual mirror of the materialized
    /// `insert_leaves_at`. `parent_base` is the label of the height-1
    /// virtual ancestor and `pos` the child slot where `k` fresh leaves
    /// land.
    fn insert_at(&mut self, parent_base: u128, pos: u64, k: usize) -> Result<Vec<LeafHandle>> {
        if k == 0 {
            return Err(LTreeError::EmptyBatch);
        }
        let params = self.params;
        let base = params.base();
        let k64 = k as u64;

        // --- Violator search (Algorithm 1, lines 4–10, via range counts)
        let mut violator: Option<u8> = None;
        for h in 1..=self.height {
            let interval = params.interval(h)?;
            let anc = parent_base / interval * interval;
            let count = self.count_range(anc, anc + interval);
            if count + k64 >= params.split_threshold(h) {
                violator = Some(h);
            }
        }

        // Allocate the new items (labels filled in below).
        let first_idx = self.items.len() as u32;
        for _ in 0..k {
            self.items.push(VItem {
                label: 0,
                deleted: false,
                alive: true,
            });
        }
        let new_handles: Vec<LeafHandle> = (0..k as u64)
            .map(|j| LeafHandle(u64::from(first_idx) + j))
            .collect();
        let new_indices: Vec<u32> = (0..k as u32).map(|j| first_idx + j).collect();
        self.stats.inserts += k64;
        self.n_live += k64;

        match violator {
            None => {
                // Suffix shift within the height-1 parent: entries at
                // slots >= pos move up by k; the new leaves take
                // parent_base + pos .. + pos + k.
                let lo = parent_base + pos as u128;
                let hi = parent_base + base;
                let shifted = self.tree.drain_range(lo, hi);
                let mut batch: Vec<(u128, u32)> = Vec::with_capacity(shifted.len() + k);
                for (j, &idx) in new_indices.iter().enumerate() {
                    batch.push((lo + j as u128, idx));
                }
                for (j, (_, idx)) in shifted.into_iter().enumerate() {
                    batch.push((lo + (k + j) as u128, idx));
                }
                self.write_labels(batch)?;
                self.stats.relabel_events += 1;
            }
            Some(mut hs) => {
                // Mirror of the materialized split/cascade loop. The final
                // level is found first (intermediate splits are subsumed
                // by a later dismantle, so only the last one matters).
                loop {
                    if hs == self.height {
                        return self.rebuild_root(parent_base, pos, new_indices, new_handles);
                    }
                    let t_interval = params.interval(hs)?;
                    let p_interval = params.interval(hs + 1)?;
                    let t_base = parent_base / t_interval * t_interval;
                    let p_base = parent_base / p_interval * p_interval;
                    let t_count = self.count_range(t_base, t_base + t_interval) + k64;
                    let pieces = ceil_div(t_count, params.subtree_capacity(hs));
                    // Children of the virtual parent = occupied child
                    // slots (consecutive by the labeling invariant).
                    let p_count = self.count_range(p_base, p_base + p_interval);
                    let groups = self.occupied_child_slots(p_base, hs);
                    let after = groups - 1 + pieces;
                    let _ = p_count;
                    if after <= u64::from(params.f()) {
                        return self.split_and_relabel(
                            hs,
                            t_base,
                            p_base,
                            parent_base + pos as u128,
                            pieces,
                            new_indices,
                            new_handles,
                        );
                    }
                    // Fanout overflow: cascade to the parent level.
                    self.stats.node_touches += 1;
                    hs += 1;
                }
            }
        }
        Ok(new_handles)
    }

    /// Number of occupied child slots (groups) of the virtual node with
    /// base label `p_base` whose children sit at height `child_h`. Child
    /// slots are consecutive from 0, so this is one successor probe of
    /// the last occupied slot — but we count conservatively by probing
    /// slots left to right (bounded by `f`).
    fn occupied_child_slots(&mut self, p_base: u128, child_h: u8) -> u64 {
        let interval = self.params.interval(child_h).expect("validated height");
        let mut slots = 0u64;
        for i in 0..u128::from(self.params.f()) {
            let lo = p_base + i * interval;
            if self.count_range(lo, lo + interval) == 0 {
                break;
            }
            slots += 1;
        }
        slots
    }

    /// Split the virtual node at height `hs` (base `t_base`) into
    /// `pieces` near-equal complete subtrees; relabel the whole parent
    /// range (paper: "call Relabel(parent(t), num(parent(t)))").
    #[allow(clippy::too_many_arguments)]
    fn split_and_relabel(
        &mut self,
        hs: u8,
        t_base: u128,
        p_base: u128,
        insert_before_label: u128,
        pieces: u64,
        new_indices: Vec<u32>,
        new_handles: Vec<LeafHandle>,
    ) -> Result<Vec<LeafHandle>> {
        let params = self.params;
        let t_interval = params.interval(hs)?;
        let p_interval = params.interval(hs + 1)?;
        let entries = self.tree.drain_range(p_base, p_base + p_interval);

        // Rebuild the ordered item sequence with the new leaves spliced
        // into the t-group right before `insert_before_label`.
        let mut seq: Vec<(Option<u128>, u32)> =
            Vec::with_capacity(entries.len() + new_indices.len());
        let mut spliced = false;
        for (old, idx) in entries {
            if !spliced && old >= insert_before_label {
                for &ni in &new_indices {
                    seq.push((None, ni));
                }
                spliced = true;
            }
            seq.push((Some(old), idx));
        }
        if !spliced {
            for &ni in &new_indices {
                seq.push((None, ni));
            }
        }

        // Walk the sequence group by group, assigning new labels.
        let mut batch: Vec<(u128, u32)> = Vec::with_capacity(seq.len());
        let mut child_slot: u128 = 0;
        let mut i = 0usize;
        while i < seq.len() {
            // Determine the group of the leaf at `i`: new leaves belong
            // to the t-group by construction.
            let group_base = match seq[i].0 {
                Some(old) => old / t_interval * t_interval,
                None => t_base,
            };
            // Gather the whole group (consecutive in the ordered seq).
            let mut j = i;
            while j < seq.len() {
                let gb = match seq[j].0 {
                    Some(old) => old / t_interval * t_interval,
                    None => t_base,
                };
                if gb != group_base {
                    break;
                }
                j += 1;
            }
            let group = &seq[i..j];
            if group_base == t_base {
                // The split: near-equal complete pieces.
                let total = group.len() as u64;
                debug_assert_eq!(ceil_div(total, params.subtree_capacity(hs)), pieces);
                let sizes = even_split(total, pieces);
                let mut off = 0usize;
                for &size in &sizes {
                    let piece_base = p_base + child_slot * t_interval;
                    child_slot += 1;
                    for r in 0..size {
                        let (_, idx) = group[off + r as usize];
                        batch.push((piece_base + complete_offset(r, hs, &params)?, idx));
                    }
                    off += size as usize;
                }
            } else {
                // Untouched sibling subtree: rigid shift to its new slot.
                let new_base = p_base + child_slot * t_interval;
                child_slot += 1;
                for &(old, idx) in group {
                    let old = old.expect("only the t-group receives new leaves");
                    batch.push((new_base + (old - group_base), idx));
                }
            }
            i = j;
        }
        debug_assert!(child_slot <= params.base(), "fanout was pre-checked");
        self.write_labels(batch)?;
        self.stats.relabel_events += 1;
        Ok(new_handles)
    }

    /// Virtual root rebuild: all labels are reassigned according to the
    /// shared [`RootRebuild`] plan; the virtual height grows.
    fn rebuild_root(
        &mut self,
        parent_base: u128,
        pos: u64,
        new_indices: Vec<u32>,
        new_handles: Vec<LeafHandle>,
    ) -> Result<Vec<LeafHandle>> {
        let params = self.params;
        let total = self.tree.len() as u64 + new_indices.len() as u64;
        let plan = RootRebuild::plan(&params, total, self.height);
        if plan.new_height > params.max_height() {
            // Roll back the optimistic item allocation.
            for _ in 0..new_indices.len() {
                self.items.pop();
            }
            self.n_live -= new_indices.len() as u64;
            self.stats.inserts -= new_indices.len() as u64;
            return Err(LTreeError::LabelOverflow {
                height: plan.new_height,
            });
        }
        let insert_before_label = parent_base + pos as u128;
        let space = params.interval(self.height)?;
        let entries = self.tree.drain_range(0, space);
        let mut seq: Vec<u32> = Vec::with_capacity(entries.len() + new_indices.len());
        let mut spliced = false;
        for (old, idx) in entries {
            if !spliced && old >= insert_before_label {
                seq.extend(&new_indices);
                spliced = true;
            }
            seq.push(idx);
        }
        if !spliced {
            seq.extend(&new_indices);
        }
        let labels = plan.leaf_labels(&params, total, self.height)?;
        debug_assert_eq!(labels.len(), seq.len());
        let batch: Vec<(u128, u32)> = labels.into_iter().zip(seq).collect();
        self.write_labels(batch)?;
        self.stats.relabel_events += 1;
        self.height = plan.new_height;
        Ok(new_handles)
    }

    /// Write a strictly-increasing `(label, item)` batch back into the
    /// B-tree and the item table.
    fn write_labels(&mut self, batch: Vec<(u128, u32)>) -> Result<()> {
        self.stats.label_writes += batch.len() as u64;
        for &(label, idx) in &batch {
            self.items[idx as usize].label = label;
        }
        self.tree
            .extend_sorted(batch)
            .map_err(|_| LTreeError::UnknownHandle)?;
        Ok(())
    }

    fn sync_touches(&mut self) {
        self.stats.node_touches += self.tree.touches();
        self.tree.reset_touches();
    }
}

/// Register the virtual L-Tree with a scheme registry, under both
/// `"ltree-virtual"` and the shorthand `"virtual"`. Spec arguments are
/// the `(f, s)` pair, e.g. `"virtual(4,2)"`.
pub fn register(reg: &mut SchemeRegistry) {
    for name in ["ltree-virtual", "virtual"] {
        reg.register(
            name,
            "virtual L-Tree (paper §4.2, labels only); args: (f,s)",
            move |cfg, args| {
                let params = cfg.params_from_args(name, args)?;
                Ok(Box::new(VirtualLTree::new(params)))
            },
        );
    }
}

impl OrderedLabeling for VirtualLTree {
    fn name(&self) -> &'static str {
        "ltree-virtual"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        Ok(self.item(h)?.label)
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn live_len(&self) -> usize {
        self.n_live as usize
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.tree.kth(0).map(|(_, &idx)| LeafHandle(u64::from(idx)))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        let label = self.item(h).ok()?.label;
        self.tree
            .successor(label + 1)
            .map(|(_, &idx)| LeafHandle(u64::from(idx)))
    }

    fn label_space_bits(&self) -> u32 {
        match self.params.interval(self.height) {
            Ok(space) => 128 - (space - 1).leading_zeros(),
            Err(_) => 128,
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.items.capacity() * std::mem::size_of::<VItem>()
            + self.tree.memory_bytes()
    }
}

impl OrderedLabelingMut for VirtualLTree {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if !self.items.is_empty() || !self.tree.is_empty() {
            return Err(LTreeError::NotEmpty);
        }
        let (height, labels) = ltree_core::layout::bulk_load_labels(&self.params, n as u64)?;
        self.height = height;
        let mut batch = Vec::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        for (j, label) in labels.into_iter().enumerate() {
            self.items.push(VItem {
                label,
                deleted: false,
                alive: true,
            });
            batch.push((label, j as u32));
            out.push(LeafHandle(j as u64));
        }
        self.tree = CountedBTree::from_sorted(batch);
        self.n_live = n as u64;
        self.stats = SchemeStats::default();
        self.range_probes = 0;
        Ok(out)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        let out = match self.tree.kth(0) {
            Some((label, _)) => {
                let base = self.params.base();
                let parent_base = label / base * base;
                debug_assert_eq!(parent_base, 0);
                self.insert_at(parent_base, (label - parent_base) as u64, 1)
            }
            None => self.insert_at(0, 0, 1),
        }?;
        self.sync_touches();
        Ok(out[0])
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let x = self.item(anchor)?.label;
        let base = self.params.base();
        let parent_base = x / base * base;
        let out = self.insert_at(parent_base, (x - parent_base) as u64 + 1, 1)?;
        self.sync_touches();
        Ok(out[0])
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let x = self.item(anchor)?.label;
        let base = self.params.base();
        let parent_base = x / base * base;
        let out = self.insert_at(parent_base, (x - parent_base) as u64, 1)?;
        self.sync_touches();
        Ok(out[0])
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        let idx = usize::try_from(h.0).map_err(|_| LTreeError::UnknownHandle)?;
        match self.items.get_mut(idx) {
            Some(item) if item.alive => {
                if item.deleted {
                    return Err(LTreeError::DeletedLeaf);
                }
                item.deleted = true;
                self.n_live -= 1;
                self.stats.deletes += 1;
                Ok(())
            }
            _ => Err(LTreeError::UnknownHandle),
        }
    }
}

impl BatchLabeling for VirtualLTree {
    /// Native Section 4.1 batch over the virtual structure: one violator
    /// search and one relabel pass for the whole batch.
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        let x = self.item(anchor)?.label;
        let base = self.params.base();
        let parent_base = x / base * base;
        let out = self.insert_at(parent_base, (x - parent_base) as u64 + 1, k)?;
        self.sync_touches();
        Ok(out)
    }
}

impl Instrumented for VirtualLTree {
    fn scheme_stats(&self) -> SchemeStats {
        let mut s = self.stats;
        s.node_touches += self.tree.touches();
        s
    }

    fn reset_scheme_stats(&mut self) {
        self.stats = SchemeStats::default();
        self.tree.reset_touches();
        self.range_probes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::LTree;

    fn mat_labels(t: &LTree) -> Vec<u128> {
        t.leaves().map(|l| t.label(l).unwrap().get()).collect()
    }

    #[test]
    fn bulk_build_matches_materialized() {
        for n in [0usize, 1, 2, 7, 8, 9, 31, 100] {
            let params = Params::new(4, 2).unwrap();
            let mut v = VirtualLTree::new(params);
            v.bulk_build(n).unwrap();
            let (m, _) = LTree::bulk_load(params, n).unwrap();
            assert_eq!(v.labels_in_order(), mat_labels(&m), "n = {n}");
            assert_eq!(v.height(), m.height());
            v.check_invariants().unwrap();
        }
    }

    #[test]
    fn single_insert_matches_materialized_walkthrough() {
        // The Figure 2 trace, virtually.
        let params = Params::new(4, 2).unwrap();
        let mut v = VirtualLTree::new(params);
        let hs = v.bulk_build(8).unwrap();
        let d = v.insert_before(hs[2]).unwrap();
        assert_eq!(v.labels_in_order(), vec![0, 1, 5, 6, 7, 25, 26, 30, 31]);
        assert_eq!(v.label_of(d).unwrap(), 5);
        let _d_end = v.insert_after(d).unwrap();
        assert_eq!(
            v.labels_in_order(),
            vec![0, 1, 5, 6, 10, 11, 25, 26, 30, 31]
        );
        v.check_invariants().unwrap();
    }

    #[test]
    fn hotspot_stream_equivalence() {
        let params = Params::new(4, 2).unwrap();
        let mut v = VirtualLTree::new(params);
        let vh = v.bulk_build(8).unwrap();
        let (mut m, ml) = LTree::bulk_load(params, 8).unwrap();
        let mut va = vh[3];
        let mut ma = ml[3];
        for i in 0..300 {
            va = v.insert_after(va).unwrap();
            ma = m.insert_after(ma).unwrap();
            assert_eq!(v.labels_in_order(), mat_labels(&m), "diverged at step {i}");
        }
        assert_eq!(v.height(), m.height());
        v.check_invariants().unwrap();
        m.check_invariants().unwrap();
    }

    #[test]
    fn append_stream_equivalence() {
        let params = Params::new(8, 2).unwrap();
        let mut v = VirtualLTree::new(params);
        let mut m = LTree::new(params);
        let mut va = OrderedLabelingMut::insert_first(&mut v).unwrap();
        let mut ma = m.insert_first().unwrap();
        for i in 0..500 {
            va = v.insert_after(va).unwrap();
            ma = m.insert_after(ma).unwrap();
            if i % 50 == 0 {
                assert_eq!(v.labels_in_order(), mat_labels(&m), "step {i}");
            }
        }
        assert_eq!(v.labels_in_order(), mat_labels(&m));
        assert_eq!(v.height(), m.height());
    }

    #[test]
    fn batch_insert_equivalence() {
        let params = Params::new(4, 2).unwrap();
        let mut v = VirtualLTree::new(params);
        let vh = v.bulk_build(16).unwrap();
        let (mut m, ml) = LTree::bulk_load(params, 16).unwrap();
        for k in [1usize, 2, 5, 17, 64] {
            BatchLabeling::insert_many_after(&mut v, vh[7], k).unwrap();
            m.insert_many_after(ml[7], k).unwrap();
            assert_eq!(v.labels_in_order(), mat_labels(&m), "batch k = {k}");
            m.check_invariants().unwrap();
            v.check_invariants().unwrap();
        }
    }

    #[test]
    fn deletes_are_tombstones() {
        let params = Params::new(4, 2).unwrap();
        let mut v = VirtualLTree::new(params);
        let hs = v.bulk_build(8).unwrap();
        let before = v.labels_in_order();
        v.delete(hs[3]).unwrap();
        assert_eq!(v.labels_in_order(), before, "deletes never touch labels");
        assert_eq!(v.live_len(), 7);
        assert_eq!(v.len(), 8);
        assert!(v.delete(hs[3]).is_err());
        // Tombstones still count for the split criterion, same as the
        // materialized tree — inserting near them behaves identically.
        let (mut m, ml) = LTree::bulk_load(params, 8).unwrap();
        m.delete(ml[3]).unwrap();
        let a = v.insert_after(hs[3]).unwrap();
        let b = m.insert_after(ml[3]).unwrap();
        assert_eq!(v.labels_in_order(), mat_labels(&m));
        assert_eq!(v.label_of(a).unwrap(), m.label(b).unwrap().get());
    }

    #[test]
    fn empty_then_first_insert() {
        let params = Params::new(4, 2).unwrap();
        let mut v = VirtualLTree::new(params);
        let h = OrderedLabelingMut::insert_first(&mut v).unwrap();
        assert_eq!(v.label_of(h).unwrap(), 0);
        let h2 = OrderedLabelingMut::insert_first(&mut v).unwrap();
        assert!(v.label_of(h2).unwrap() < v.label_of(h).unwrap());
        v.check_invariants().unwrap();
    }

    #[test]
    fn probes_are_counted() {
        let params = Params::new(4, 2).unwrap();
        let mut v = VirtualLTree::new(params);
        let hs = v.bulk_build(32).unwrap();
        v.reset_scheme_stats();
        v.insert_after(hs[10]).unwrap();
        assert!(
            v.range_probes() >= u64::from(v.height()),
            "one probe per level minimum"
        );
        assert!(v.scheme_stats().node_touches > 0);
    }
}
