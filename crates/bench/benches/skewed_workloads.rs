//! Experiment X10 (wall-clock side): adaptivity to uneven insertion
//! rates — hotspot and append streams vs uniform, L-Tree vs fixed-gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labeling_baselines::GapLabeling;
use ltree_core::{LTree, Params};
use xmlgen::{run_workload, Workload};

fn bench_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("skewed_workloads");
    group.sample_size(10);
    let n = 20_000usize;
    let ops = 5_000usize;
    let workloads = [
        ("uniform", Workload::Uniform),
        ("hotspot", Workload::Hotspot { hot_fraction: 0.05, hot_weight: 0.9 }),
        ("append", Workload::Append),
    ];
    for (name, w) in workloads {
        group.bench_with_input(BenchmarkId::new("ltree_4_2", name), &w, |b, &w| {
            b.iter(|| {
                let mut s = LTree::new(Params::new(4, 2).unwrap());
                run_workload(&mut s, w, n, ops, 29).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("gap", name), &w, |b, &w| {
            b.iter(|| {
                let mut s = GapLabeling::new();
                run_workload(&mut s, w, n, ops, 29).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
