//! Experiment X13 (wall-clock side): label-join query evaluation vs
//! navigational evaluation on generated auction documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltree_core::{LTree, Params};
use xmldb::{Document, Path};
use xmlgen::{auction_profile, generate};

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_query");
    group.sample_size(20);
    for &n in &[2_000usize, 20_000] {
        let tree = generate(&auction_profile(n), 99);
        let doc = Document::from_tree(tree, LTree::new(Params::new(8, 2).unwrap())).unwrap();
        for q in ["//item", "/site/regions//item", "/site//description"] {
            let path = Path::parse(q).unwrap();
            group.bench_with_input(BenchmarkId::new(format!("nav {q}"), n), &n, |b, _| {
                b.iter(|| path.eval_navigational(&doc).unwrap())
            });
            group.bench_with_input(BenchmarkId::new(format!("join {q}"), n), &n, |b, _| {
                b.iter(|| path.eval_labeled(&doc).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_ancestor_test(c: &mut Criterion) {
    // The headline query primitive: one ancestor test = two label
    // comparisons (paper, Figure 1).
    let tree = generate(&auction_profile(20_000), 7);
    let doc = Document::from_tree(tree, LTree::new(Params::new(8, 2).unwrap())).unwrap();
    let all = doc.tree().all_elements();
    let root = doc.tree().root().unwrap();
    c.bench_function("is_ancestor_label_test", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 101) % all.len();
            std::hint::black_box(doc.is_ancestor(root, all[i]).unwrap())
        })
    });
}

criterion_group!(benches, bench_queries, bench_ancestor_test);
criterion_main!(benches);
