//! Experiment X3 (wall-clock side): single-insert throughput of every
//! labeling scheme at several document sizes.
//!
//! The shape to look for (paper §1/§3.1): the naive scheme degrades
//! linearly with n; the L-Tree stays logarithmic; gap labeling is fast
//! until relabels hit; list labeling sits between.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labeling_baselines::{GapLabeling, ListLabeling, NaiveLabeling};
use ltree_core::{LTree, LabelingScheme, Params};
use ltree_virtual::VirtualLTree;
use xmlgen::{run_workload, Workload};

fn bench_uniform_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniform_insert");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 50_000] {
        let ops = (n / 5).max(500);
        group.bench_with_input(BenchmarkId::new("ltree_4_2", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = LTree::new(Params::new(4, 2).unwrap());
                run_workload(&mut s, Workload::Uniform, n, ops, 1).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("ltree_16_4", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = LTree::new(Params::new(16, 4).unwrap());
                run_workload(&mut s, Workload::Uniform, n, ops, 1).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("virtual_4_2", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = VirtualLTree::new(Params::new(4, 2).unwrap());
                run_workload(&mut s, Workload::Uniform, n, ops, 1).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("gap", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = GapLabeling::new();
                run_workload(&mut s, Workload::Uniform, n, ops, 1).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("list_label", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = ListLabeling::new();
                run_workload(&mut s, Workload::Uniform, n, ops, 1).unwrap()
            })
        });
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
                b.iter(|| {
                    let mut s = NaiveLabeling::new();
                    run_workload(&mut s, Workload::Uniform, n, ops, 1).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_label_reads(c: &mut Criterion) {
    // Label lookup is O(1) for the materialized tree and the virtual
    // handle map alike — "we can retrieve the label of a given node for
    // free" (paper §3.1).
    let mut group = c.benchmark_group("label_read");
    let (tree, leaves) = LTree::bulk_load(Params::new(4, 2).unwrap(), 100_000).unwrap();
    group.bench_function("ltree_label", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % leaves.len();
            std::hint::black_box(tree.label(leaves[i]).unwrap())
        })
    });
    let mut vt = VirtualLTree::new(Params::new(4, 2).unwrap());
    let handles = vt.bulk_build(100_000).unwrap();
    group.bench_function("virtual_label", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % handles.len();
            std::hint::black_box(vt.label_of(handles[i]).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_uniform_inserts, bench_label_reads);
criterion_main!(benches);
