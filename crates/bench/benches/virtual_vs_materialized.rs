//! Experiment X9 (wall-clock side): the §4.2 trade-off — materialized
//! pointer structure vs label-only counted B-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltree_core::{LTree, Params};
use ltree_virtual::VirtualLTree;
use xmlgen::{run_workload, Workload};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_vs_materialized");
    group.sample_size(10);
    for &n in &[5_000usize, 50_000] {
        let ops = n / 5;
        group.bench_with_input(BenchmarkId::new("materialized", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = LTree::new(Params::new(4, 2).unwrap());
                run_workload(&mut s, Workload::Uniform, n, ops, 23).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("virtual", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = VirtualLTree::new(Params::new(4, 2).unwrap());
                run_workload(&mut s, Workload::Uniform, n, ops, 23).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
