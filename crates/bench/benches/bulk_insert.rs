//! Experiment X8 (wall-clock side): batch insertion throughput vs batch
//! size (paper §4.1 — larger subtrees amortize better).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ltree_core::{LTree, Params};
use xmlgen::{run_workload, Workload};

fn bench_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_insert");
    group.sample_size(10);
    let n = 20_000usize;
    let total = 8_192usize;
    group.throughput(Throughput::Elements(total as u64));
    for &k in &[1usize, 8, 64, 512, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut s = LTree::new(Params::new(4, 2).unwrap());
                run_workload(&mut s, Workload::Batches { batch: k }, n, total, 17).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batches);
criterion_main!(benches);
