//! Substrate microbenchmarks: the counted B-tree behind the virtual
//! L-Tree (insert / rank / range-count / drain+extend).

use counted_btree::CountedBTree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build(n: u64) -> CountedBTree<u64> {
    CountedBTree::from_sorted((0..n).map(|k| (u128::from(k) * 3, k)).collect())
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("counted_btree");
    for &n in &[10_000u64, 100_000] {
        let tree = build(n);
        group.bench_with_input(BenchmarkId::new("rank", n), &n, |b, &n| {
            let mut k = 0u128;
            b.iter(|| {
                k = (k + 9973) % (u128::from(n) * 3);
                std::hint::black_box(tree.rank(k))
            })
        });
        group.bench_with_input(BenchmarkId::new("count_range", n), &n, |b, &n| {
            let mut k = 0u128;
            b.iter(|| {
                k = (k + 9973) % (u128::from(n) * 2);
                std::hint::black_box(tree.count_range(k, k + 1000))
            })
        });
        group.bench_with_input(BenchmarkId::new("insert_remove", n), &n, |b, &n| {
            let mut tree = build(n);
            let mut k = 1u128;
            b.iter(|| {
                k = (k + 9973) % (u128::from(n) * 3);
                let key = k | 1; // odd keys are free (build uses multiples of 3... mostly)
                if tree.insert(key, 0).is_ok() {
                    tree.remove(key);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("drain_extend_1k", n), &n, |b, &n| {
            b.iter_batched(
                || build(n),
                |mut tree| {
                    let lo = u128::from(n);
                    let drained = tree.drain_range(lo, lo + 3000);
                    let shifted = drained.into_iter().map(|(k, v)| (k + 1, v)).collect();
                    tree.extend_sorted(shifted).unwrap();
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
