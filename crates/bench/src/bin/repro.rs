//! `repro` — regenerate the reproduction experiment tables (X1–X14).
//!
//! ```text
//! repro [--full] [x1 x2 … | all]
//! ```
//!
//! Runs at quick scale by default (seconds); `--full` uses the sizes
//! the reference runs use. Counter columns are deterministic; only
//! wall-clock columns vary between machines.

use ltree_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.to_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = experiments::all_ids()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let scale = if full { Scale::Full } else { Scale::Quick };
    println!(
        "# L-Tree reproduction — experiment tables ({} scale)\n",
        if full { "full" } else { "quick" }
    );
    for id in &ids {
        match experiments::run(id, scale) {
            Some(tables) => {
                for t in tables {
                    println!("{}", t.to_markdown());
                }
            }
            None => {
                eprintln!(
                    "unknown experiment id: {id} (known: {:?})",
                    experiments::all_ids()
                );
                std::process::exit(2);
            }
        }
    }
}
