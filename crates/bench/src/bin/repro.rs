//! `repro` — regenerate the reproduction experiment tables (X1–X14) and
//! run the scheme × workload sweep.
//!
//! ```text
//! repro [--full | --quick] [x1 x2 … | all]
//! repro sweep [--full | --quick] [--out PATH] [--baseline PATH] [--max-regress R]
//!             [--summary PATH]
//! repro metrics <host:port | --smoke> [--out PATH]
//! ```
//!
//! Experiments run at quick scale by default (seconds); `--full` uses
//! the sizes the reference runs use. Counter columns are deterministic;
//! only wall-clock columns vary between machines.
//!
//! `sweep` cross-products every registered scheme spec with the five
//! standard workload shapes, prints the comparison table and writes the
//! machine-readable `BENCH_sweep.json` (schema in `crates/bench/README.md`).
//! With `--baseline`, the run exits non-zero when any cell errors or
//! when an L-Tree-family cell's label-write count exceeds
//! `--max-regress` (default 2.0) times the baseline's. `--summary PATH`
//! additionally writes just the markdown table to `PATH` — CI appends it
//! to `$GITHUB_STEP_SUMMARY` so the comparison shows on the PR itself,
//! not only in the artifact.
//!
//! `metrics` scrapes a running [`LabelServer`](ltree::prelude::LabelServer)
//! over the wire `Metrics` request and prints the snapshot as
//! Prometheus exposition text (to `--out PATH` instead, when given).
//! `--smoke` skips the address: it spins up an in-process
//! `served(traced(ltree(4,2)))` stack on a loopback port, drives a
//! small seeded workload through a real TCP client, and scrapes that —
//! CI uploads the result as a sample exposition artifact.
//!
//! Unknown experiment ids or flags are rejected **before** anything
//! runs, with the list of valid names, and exit status 2.

use ltree_bench::{experiments, sweep, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("sweep") => sweep_main(&args[1..]),
        Some("metrics") => metrics_main(&args[1..]),
        _ => experiments_main(&args),
    };
    std::process::exit(code);
}

fn usage() -> String {
    format!(
        "usage:\n  repro [--full | --quick] [ids... | all]   run experiment tables\n  repro sweep [--full | --quick] [--out PATH] [--baseline PATH] [--max-regress R] [--summary PATH]\n  repro metrics <host:port | --smoke> [--out PATH]   scrape a label server as Prometheus text\n\nvalid experiment ids: {}, all",
        experiments::all_ids().join(", ")
    )
}

fn experiments_main(args: &[String]) -> i32 {
    let mut full = false;
    let mut ids: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--full" => full = true,
            "--quick" => full = false,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}\n{}", usage());
                return 2;
            }
            id => ids.push(id.to_lowercase()),
        }
    }
    // Validate *every* id before running anything: a typo must fail the
    // whole invocation loudly (CI once ran for minutes, then silently
    // skipped the misspelled experiment), not after the valid prefix.
    let unknown: Vec<&String> = ids
        .iter()
        .filter(|id| *id != "all" && !experiments::all_ids().contains(&id.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id{}: {}\n{}",
            if unknown.len() == 1 { "" } else { "s" },
            unknown
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            usage()
        );
        return 2;
    }
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = experiments::all_ids()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let scale = if full { Scale::Full } else { Scale::Quick };
    println!(
        "# L-Tree reproduction — experiment tables ({} scale)\n",
        if full { "full" } else { "quick" }
    );
    for id in &ids {
        let tables = experiments::run(id, scale).expect("ids were validated upfront");
        for t in tables {
            println!("{}", t.to_markdown());
        }
    }
    0
}

fn sweep_main(args: &[String]) -> i32 {
    let mut full = false;
    let mut out = String::from("BENCH_sweep.json");
    let mut baseline: Option<String> = None;
    let mut summary: Option<String> = None;
    let mut max_regress = 2.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--quick" => full = false,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("--out needs a path\n{}", usage());
                    return 2;
                }
            },
            "--summary" => match it.next() {
                Some(p) => summary = Some(p.clone()),
                None => {
                    eprintln!("--summary needs a path\n{}", usage());
                    return 2;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(p.clone()),
                None => {
                    eprintln!("--baseline needs a path\n{}", usage());
                    return 2;
                }
            },
            "--max-regress" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r >= 1.0 => max_regress = r,
                _ => {
                    eprintln!("--max-regress needs a ratio >= 1.0\n{}", usage());
                    return 2;
                }
            },
            other => {
                eprintln!("unknown sweep argument: {other}\n{}", usage());
                return 2;
            }
        }
    }
    let scale = if full { Scale::Full } else { Scale::Quick };
    let report = sweep::run_sweep(&sweep::default_config(scale));
    println!(
        "# L-Tree scheme × workload sweep ({} scale)\n",
        report.scale
    );
    println!("{}", report.to_table().to_markdown());
    // Multi-size runs (--full) also get the scale trend lines: how the
    // amortized costs move as n grows, the axis the flat table buries.
    if let Some(trends) = report.trend_table() {
        println!("{}", trends.to_markdown());
    }

    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    println!("wrote {out} ({} cells)", report.cells.len());

    // The tables alone, for CI step summaries — written before gating so
    // a failing gate still publishes the numbers that explain it.
    if let Some(path) = summary {
        let mut text = report.to_table().to_markdown();
        if let Some(trends) = report.trend_table() {
            text.push('\n');
            text.push_str(&trends.to_markdown());
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("wrote {path}");
    }

    let mut failed = false;
    let errored = report.errored();
    if !errored.is_empty() {
        failed = true;
        for (c, e) in &errored {
            eprintln!("cell error: {} × {} × n={}: {e}", c.spec, c.workload, c.n);
        }
    }
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match sweep::SweepReport::from_json(&text) {
                Ok(base) => {
                    let problems = sweep::compare_with_baseline(&report, &base, max_regress);
                    if problems.is_empty() {
                        println!(
                            "baseline check against {path} passed (max-regress {max_regress}x)"
                        );
                    } else {
                        failed = true;
                        for p in &problems {
                            eprintln!("baseline regression: {p}");
                        }
                    }
                }
                Err(e) => {
                    eprintln!("cannot parse baseline {path}: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                failed = true;
            }
        }
    }
    i32::from(failed)
}

fn metrics_main(args: &[String]) -> i32 {
    use ltree::obs::render_prometheus;
    use ltree::prelude::{LabelServer, RemoteScheme};
    use ltree::{BatchLabeling, Instrumented, OrderedLabeling, OrderedLabelingMut};

    let mut addr: Option<String> = None;
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("--out needs a path\n{}", usage());
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown metrics flag: {flag}\n{}", usage());
                return 2;
            }
            a if addr.is_none() => addr = Some(a.to_owned()),
            other => {
                eprintln!("unexpected metrics argument: {other}\n{}", usage());
                return 2;
            }
        }
    }
    if smoke == addr.is_some() {
        eprintln!(
            "metrics needs exactly one of <host:port> or --smoke\n{}",
            usage()
        );
        return 2;
    }

    // The smoke server lives for the whole scrape: drop tears it down.
    let mut smoke_server: Option<LabelServer> = None;
    let target = match addr {
        Some(a) => a,
        None => {
            let scheme = match ltree::default_registry().build("traced(ltree(4,2))") {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot build the smoke scheme: {e}");
                    return 1;
                }
            };
            let server = match LabelServer::bind("127.0.0.1:0", scheme) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot bind the smoke server: {e}");
                    return 1;
                }
            };
            let a = server.local_addr().to_string();
            smoke_server = Some(server);
            a
        }
    };

    let mut client = match RemoteScheme::connect(&target) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {target}: {e}");
            return 1;
        }
    };
    if smoke_server.is_some() {
        // A small deterministic workload so every series the stack
        // exposes — per-op and phase histograms included — has samples.
        let mut drive = || -> Result<(), ltree::LTreeError> {
            let hs = client.bulk_build(128)?;
            let mid = client.insert_after(hs[40])?;
            client.insert_before(hs[80])?;
            let batch = client.insert_many_after(hs[100], 32)?;
            client.delete_run(batch[0], 16)?;
            client.delete(mid)?;
            client.label_of(hs[0])?;
            Ok(())
        };
        if let Err(e) = drive() {
            eprintln!("smoke workload failed: {e}");
            return 1;
        }
    }

    let snapshot = client.metrics();
    if snapshot.is_empty() {
        // A healthy server always reports at least its net/ series; an
        // empty snapshot means the scrape itself failed.
        eprintln!("metrics scrape of {target} returned nothing");
        return 1;
    }
    let text = render_prometheus(&snapshot);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            println!("wrote {path} ({} series)", snapshot.len());
        }
        None => print!("{text}"),
    }
    0
}
