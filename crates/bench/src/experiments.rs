//! The X1–X14 experiment runners.
//!
//! Every comparison scheme is constructed **through the registry**
//! ([`ltree::default_registry`]) from a spec string like `"ltree(4,2)"`
//! — adding a scheme to the registry automatically opens it to the
//! multi-scheme sweeps here *and* to the scheme × workload × scale
//! cross-product in [`crate::sweep`] (the `repro sweep` mode, which is
//! what CI tracks over time via `BENCH_sweep.json`). Only the
//! structural walkthroughs (X2, X11) build a concrete [`LTree`],
//! because they read tree internals (splits, cascades, invariant
//! checks) that the trait family deliberately does not expose.

use crate::table::{f, Table};
use crate::Scale;
use ltree::cost_model;
use ltree::gen::{auction_profile, generate, run_workload, Workload};
use ltree::tuning;
use ltree::xml::{Document, Path, XmlTree};
use ltree::{
    Cursor, DynScheme, Instrumented, LTree, OrderedLabeling, Params, SchemeConfig, SchemeRegistry,
};

/// Build one scheme from its registry spec.
fn scheme(spec: &str) -> Box<dyn DynScheme> {
    ltree::default_registry()
        .build(spec)
        .expect("experiment specs are valid")
}

/// All labels in list order via the streaming cursor — works on any
/// `dyn` scheme, no per-scheme accessors, no handle `Vec`.
fn labels_in_order(s: &dyn DynScheme) -> Vec<u128> {
    Cursor::new(s)
        .map(|h| s.label_of(h).expect("cursor yields live handles"))
        .collect()
}

/// Run one experiment by id ("x1".."x14"); `None` for unknown ids.
pub fn run(id: &str, scale: Scale) -> Option<Vec<Table>> {
    Some(match id {
        "x1" => x1(),
        "x2" => x2(),
        "x3" => x3(scale),
        "x4" => x4(scale),
        "x5" => x5(scale),
        "x6" => x6(scale),
        "x7" => x7(scale),
        "x8" => x8(scale),
        "x9" => x9(scale),
        "x10" => x10(scale),
        "x11" => x11(scale),
        "x12" => x12(scale),
        "x13" => x13(scale),
        "x14" => x14(scale),
        _ => return None,
    })
}

/// All experiment ids in order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12", "x13", "x14",
    ]
}

// ----------------------------------------------------------------------
// X1 — Figure 1: region labeling answers book//title by label tests
// ----------------------------------------------------------------------

/// X1 — Figure 1: region labeling answers `/book//title` by label tests.
pub fn x1() -> Vec<Table> {
    let xml = "<book><chapter><title>t</title></chapter><title>top</title></book>";
    let reg: SchemeRegistry = ltree::default_registry();
    let doc = Document::parse_str_with(xml, &reg, "ltree(4,2)", &SchemeConfig::default())
        .expect("figure 1 document parses");
    let mut regions = Table::new(
        "X1 — Figure 1: region labels of the example document",
        &["element", "begin", "end"],
    );
    regions.note("Paper labels: book(0,7) chapter(1,4) title(2,3) title(5,6); ours keep the");
    regions.note("same containment structure with L-Tree slack between labels.");
    let root = doc.tree().root().expect("document has a root");
    for id in doc.tree().dfs(root).expect("root is live") {
        let (b, e) = doc.span(id).expect("element is labeled");
        regions.row(vec![
            doc.tree().tag_name(id).expect("live").to_owned(),
            b.to_string(),
            e.to_string(),
        ]);
    }

    let mut query = Table::new(
        "X1 — `/book//title` via interval containment",
        &["evaluator", "results (begin labels)"],
    );
    let path = Path::parse("/book//title").expect("valid path");
    for (name, result) in [
        ("navigational", path.eval_navigational(&doc).expect("eval")),
        ("label joins", path.eval_labeled(&doc).expect("eval")),
    ] {
        let labels: Vec<String> = result
            .iter()
            .map(|&id| doc.span(id).expect("labeled").0.to_string())
            .collect();
        query.row(vec![name.into(), labels.join(", ")]);
    }
    query.note("Both evaluators return the two titles; the descendant test is one pair of");
    query.note("label comparisons per candidate (paper, Section 1).");
    vec![regions, query]
}

// ----------------------------------------------------------------------
// X2 — Figure 2: bulk load + two insertions, one split
// ----------------------------------------------------------------------

/// X2 — Figure 2 walkthrough: bulk load + two insertions, one split.
pub fn x2() -> Vec<Table> {
    let params = Params::new(4, 2).expect("figure params");
    let (mut tree, leaves) = LTree::bulk_load(params, 8).expect("bulk load");
    let snapshot = |tree: &LTree| -> String {
        tree.leaves()
            .map(|l| tree.label(l).expect("labeled").get().to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut t = Table::new(
        "X2 — Figure 2 walkthrough (f = 4, s = 2, base f+1 = 5)",
        &["stage", "leaf labels", "splits"],
    );
    t.note("Structure-exact replay of the paper's Figure 2. The figure's art uses base-3");
    t.note("numbers; the paper's formulas mandate base f+1 = 5, which is what is shown.");
    t.row(vec![
        "(a) bulk load 8 tags".into(),
        snapshot(&tree),
        "0".into(),
    ]);
    let d = tree.insert_before(leaves[2]).expect("insert D");
    t.row(vec![
        "(c) insert begin tag D".into(),
        snapshot(&tree),
        tree.stats().splits.to_string(),
    ]);
    tree.insert_after(d).expect("insert /D");
    t.row(vec![
        "(d) insert end tag /D".into(),
        snapshot(&tree),
        tree.stats().splits.to_string(),
    ]);
    tree.check_invariants().expect("invariants hold");
    vec![t]
}

// ----------------------------------------------------------------------
// X3 — amortized insertion cost vs n (the O(log n) claim)
// ----------------------------------------------------------------------

/// X3 — amortized insertion cost vs `n` (the `O(log n)` claim).
pub fn x3(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[1_000, 8_000][..], &[1_000, 10_000, 100_000][..]);
    let ops_for = |n: usize| scale.pick(2_000.min(n), 20_000.min(n));
    let mut t = Table::new(
        "X3 — amortized insertion cost vs document size (uniform inserts)",
        &[
            "n",
            "scheme",
            "labelWrites/op",
            "cost/op",
            "model bound",
            "bits",
        ],
    );
    t.note("cost/op = (label writes + structure touches) per inserted leaf — the paper's");
    t.note("'nodes accessed for searching or relabeling'. Model bound = cost(f,s,n) of §3.1.");
    t.note("naive is the Figure-1 scheme (O(n)); gap = fixed-gap midpoints; list-label =");
    t.note("classic even redistribution (O(log² n) am.). All schemes built by registry spec.");
    for &n in sizes {
        let ops = ops_for(n);
        // (registry spec, (f, s) for the model bound where applicable)
        let mut entries: Vec<(&str, Option<(f64, f64)>)> = vec![
            ("ltree(4,2)", Some((4.0, 2.0))),
            ("ltree(8,2)", Some((8.0, 2.0))),
            ("ltree(16,4)", Some((16.0, 4.0))),
            ("virtual(4,2)", Some((4.0, 2.0))),
            ("list-label", None),
            ("gap", None),
        ];
        if n <= 100_000 {
            entries.push(("naive", None));
        }
        for (spec, model) in entries {
            let mut s = scheme(spec);
            let r = run_workload(&mut s, Workload::Uniform, n, ops, 42).expect("workload runs");
            let bound = model
                .map(|(pf, ps)| f(cost_model::amortized_cost(pf, ps, (n + ops) as f64)))
                .unwrap_or_else(|| "—".into());
            t.row(vec![
                n.to_string(),
                spec.into(),
                f(r.amortized_label_writes()),
                f(r.amortized_cost()),
                bound,
                r.label_space_bits.to_string(),
            ]);
        }
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X4 — label width vs n (the O(log n) bits claim)
// ----------------------------------------------------------------------

/// X4 — label width vs `n` (the `O(log n)` bits claim).
pub fn x4(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(
        &[1_000, 8_000][..],
        &[1_000, 10_000, 100_000, 1_000_000][..],
    );
    let mut t = Table::new(
        "X4 — label width vs document size",
        &[
            "n",
            "params",
            "measured bits",
            "model bits",
            "model/measured",
        ],
    );
    t.note("measured = bits of the label space (f+1)^H after bulk load + 10% uniform");
    t.note("inserts; model = log2(f+1)·log2(n)/log2(f/s) (paper §3.1).");
    for &n in sizes {
        for (fan, s) in [(4u32, 2u32), (8, 2), (16, 4), (32, 4)] {
            let mut sc = scheme(&format!("ltree({fan},{s})"));
            let ops = (n / 10).max(1);
            let r = run_workload(&mut sc, Workload::Uniform, n, ops, 7).expect("workload runs");
            let model = cost_model::label_bits(fan as f64, s as f64, (n + ops) as f64);
            t.row(vec![
                n.to_string(),
                format!("({fan},{s})"),
                r.label_space_bits.to_string(),
                f(model),
                f(model / r.label_space_bits as f64),
            ]);
        }
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X5 — parameter sweep: measured cost surface vs the model optimum
// ----------------------------------------------------------------------

/// X5 — parameter sweep: measured cost surface vs the model optimum.
pub fn x5(scale: Scale) -> Vec<Table> {
    let n = scale.pick(5_000, 50_000);
    let ops = scale.pick(5_000, 20_000);
    let arities = [2u32, 3, 4, 6, 8];
    let widths = [2u32, 3, 4];
    let mut measured = Table::new(
        format!(
            "X5 — measured amortized cost over the (f/s, s) grid (n = {n}, {ops} uniform inserts)"
        ),
        &["s \\ a", "2", "3", "4", "6", "8"],
    );
    let mut best = (f64::INFINITY, (0u32, 0u32));
    for &s in &widths {
        let mut row = vec![s.to_string()];
        for &a in &arities {
            let fan = a * s;
            let mut sc = scheme(&format!("ltree({fan},{s})"));
            let r = run_workload(&mut sc, Workload::Uniform, n, ops, 11).expect("workload runs");
            let c = r.amortized_cost();
            if c < best.0 {
                best = (c, (fan, s));
            }
            row.push(f(c));
        }
        measured.row(row);
    }
    let mut model = Table::new(
        "X5 — model cost(f,s,n) over the same grid",
        &["s \\ a", "2", "3", "4", "6", "8"],
    );
    for &s in &widths {
        let mut row = vec![s.to_string()];
        for &a in &arities {
            row.push(f(cost_model::amortized_cost(
                (a * s) as f64,
                s as f64,
                (n + ops) as f64,
            )));
        }
        model.row(row);
    }
    let tuned = tuning::optimize_cost((n + ops) as u64);
    model.note(format!(
        "Analytic optimizer picks (f,s) = ({},{}) with predicted cost {}; empirical grid minimum is (f,s) = ({},{}) at {}.",
        tuned.params.f(),
        tuned.params.s(),
        f(tuned.predicted_cost),
        best.1 .0,
        best.1 .1,
        f(best.0),
    ));
    vec![measured, model]
}

// ----------------------------------------------------------------------
// X6 — bit-budget-constrained tuning
// ----------------------------------------------------------------------

/// X6 — bit-budget-constrained tuning.
pub fn x6(scale: Scale) -> Vec<Table> {
    let n = scale.pick(20_000u64, 100_000u64);
    let mut t = Table::new(
        format!("X6 — minimize cost subject to a label-bit budget (n = {n})"),
        &[
            "budget β",
            "chosen (f,s)",
            "model bits",
            "model cost",
            "measured bits",
            "within budget",
        ],
    );
    t.note("Paper §3.2 'Minimize the Update Cost for Given Number of Bits': interior");
    t.note("optimum if feasible, otherwise the boundary optimum (Lagrange condition).");
    let reg = ltree::default_registry();
    let ops = (n / 10) as usize;
    for beta in [32u32, 40, 48, 64, 96] {
        match tuning::optimize_cost_with_bits(n + ops as u64, beta) {
            Ok(tuned) => {
                // The tuned params flow in through the config, not the spec.
                let cfg = SchemeConfig::with_params(tuned.params);
                let mut sc = reg
                    .build_with("ltree", &cfg)
                    .expect("tuned params are valid");
                let r = run_workload(&mut sc, Workload::Uniform, n as usize, ops, 13)
                    .expect("workload runs");
                t.row(vec![
                    beta.to_string(),
                    format!("({},{})", tuned.params.f(), tuned.params.s()),
                    f(tuned.predicted_bits),
                    f(tuned.predicted_cost),
                    r.label_space_bits.to_string(),
                    (r.label_space_bits <= beta).to_string(),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    beta.to_string(),
                    "infeasible".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    e.to_string(),
                ]);
            }
        }
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X7 — workload-weighted tuning
// ----------------------------------------------------------------------

/// X7 — workload-weighted tuning.
pub fn x7(scale: Scale) -> Vec<Table> {
    let n = scale.pick(1u64 << 16, 1u64 << 20);
    // The paper is from the 32-bit era: one machine word = 32 bits, so
    // the optimum genuinely shifts once the mix becomes query-heavy.
    let word = 32u32;
    let mut t = Table::new(
        format!("X7 — overall query+update optimum vs workload mix (n = {n}, {word}-bit words)"),
        &[
            "queries per update",
            "chosen (f,s)",
            "model bits",
            "words/cmp",
            "model update cost",
            "model total",
        ],
    );
    t.note("Paper §3.2 'Minimize the Overall Cost': once labels spill past one machine");
    t.note("word, each comparison costs proportionally more, pushing the optimum toward");
    t.note("narrower labels as the mix becomes query-heavy.");
    for q in [0.01f64, 1.0, 100.0, 10_000.0, 1_000_000.0] {
        let tuned = tuning::optimize_workload(&tuning::Workload {
            n,
            queries_per_update: q,
            word_bits: word,
        });
        let total = cost_model::overall_cost(
            f64::from(tuned.params.f()),
            f64::from(tuned.params.s()),
            n as f64,
            q,
            word,
        );
        t.row(vec![
            format!("{q}"),
            format!("({},{})", tuned.params.f(), tuned.params.s()),
            f(tuned.predicted_bits),
            f(cost_model::query_cost(tuned.predicted_bits, word)),
            f(tuned.predicted_cost),
            f(total),
        ]);
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X8 — batch insertion (Section 4.1)
// ----------------------------------------------------------------------

/// X8 — batch insertion (Section 4.1).
pub fn x8(scale: Scale) -> Vec<Table> {
    let n = scale.pick(10_000, 100_000);
    let total = scale.pick(8_192, 32_768);
    let mut t = Table::new(
        format!(
            "X8 — batch insertion: amortized cost per leaf vs batch size (n = {n}, {total} leaves)"
        ),
        &[
            "batch k",
            "labelWrites/leaf",
            "cost/leaf",
            "model cost/leaf",
            "speedup vs k=1",
        ],
    );
    t.note("Paper §4.1: 'the larger the size of inserting subtree, the lower the");
    t.note("amortized cost … the decrease is roughly logarithmic in the insertion size'.");
    let mut base_cost = None;
    for k in [1usize, 4, 16, 64, 256, 1024] {
        let mut sc = scheme("ltree(4,2)");
        let r = run_workload(&mut sc, Workload::Batches { batch: k }, n, total, 17)
            .expect("workload runs");
        let cost = r.amortized_cost();
        if base_cost.is_none() {
            base_cost = Some(cost);
        }
        let model = cost_model::batch_amortized_cost(4.0, 2.0, (n + total) as f64, k as f64);
        t.row(vec![
            k.to_string(),
            f(r.amortized_label_writes()),
            f(cost),
            f(model),
            f(base_cost.expect("set on first iteration") / cost.max(1e-9)),
        ]);
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X9 — materialized vs virtual L-Tree (Section 4.2)
// ----------------------------------------------------------------------

/// X9 — materialized vs virtual L-Tree (Section 4.2).
pub fn x9(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[2_000, 10_000][..], &[10_000, 100_000][..]);
    let mut t = Table::new(
        "X9 — materialized vs virtual L-Tree (f=4, s=2, uniform inserts)",
        &[
            "n",
            "variant",
            "ns/insert",
            "labelWrites/op",
            "touches/op",
            "memory (KiB)",
            "bits",
        ],
    );
    t.note("Paper §4.2: 'a tradeoff between the extra computation required by the range");
    t.note("queries and the storage space necessary for materializing the L-Tree'.");
    t.note("Labels are verified identical between the two variants on every size, by");
    t.note("streaming both label sequences off the schemes' cursors.");
    for &n in sizes {
        let ops = (n / 2).max(1_000);
        let mut m = scheme("ltree(4,2)");
        let rm = run_workload(&mut m, Workload::Uniform, n, ops, 23).expect("workload runs");
        let mut v = scheme("virtual(4,2)");
        let rv = run_workload(&mut v, Workload::Uniform, n, ops, 23).expect("workload runs");
        // Equivalence: identical label sequences after identical streams.
        assert_eq!(
            labels_in_order(&*m),
            labels_in_order(&*v),
            "virtual/materialized labels diverged"
        );
        for (variant, r, mem) in [
            ("materialized", &rm, m.memory_bytes()),
            ("virtual", &rv, v.memory_bytes()),
        ] {
            t.row(vec![
                n.to_string(),
                variant.into(),
                f(r.scheme_wall.as_nanos() as f64 / r.inserted.max(1) as f64),
                f(r.amortized_label_writes()),
                f(r.stats.node_touches as f64 / r.inserted.max(1) as f64),
                (mem / 1024).to_string(),
                r.label_space_bits.to_string(),
            ]);
        }
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X10 — adaptivity to uneven insertion rates
// ----------------------------------------------------------------------

/// X10 — adaptivity to uneven insertion rates.
pub fn x10(scale: Scale) -> Vec<Table> {
    let n = scale.pick(5_000, 50_000);
    let ops = scale.pick(5_000, 20_000);
    let mut t = Table::new(
        format!("X10 — uneven insertion rates (n = {n}, {ops} inserts)"),
        &[
            "workload",
            "scheme",
            "labelWrites/op",
            "cost/op",
            "relabel events",
        ],
    );
    t.note("Paper §6: the L-Tree 'automatically adapts to uneven insertion rates …");
    t.note("creating more slack between labels' where insertions are heavy; the fixed-gap");
    t.note("scheme instead degenerates to global relabels under a hotspot (every one of");
    t.note("its relabel events rewrites the whole list).");
    for workload in [
        Workload::Uniform,
        Workload::Hotspot {
            hot_fraction: 0.05,
            hot_weight: 0.9,
        },
        Workload::Append,
    ] {
        for spec in ["ltree(4,2)", "gap"] {
            let mut sc = scheme(spec);
            let r = run_workload(&mut sc, workload, n, ops, 29).expect("workload runs");
            t.row(vec![
                workload.name().into(),
                spec.into(),
                f(r.amortized_label_writes()),
                f(r.amortized_cost()),
                r.stats.relabel_events.to_string(),
            ]);
        }
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X11 — structural guarantees (Propositions 2 and 3)
// ----------------------------------------------------------------------

/// X11 — structural guarantees (Propositions 2 and 3).
pub fn x11(scale: Scale) -> Vec<Table> {
    let n = scale.pick(2_000, 20_000);
    let ops = scale.pick(4_000, 20_000);
    let mut t = Table::new(
        "X11 — structural guarantees under randomized single-insert streams",
        &[
            "params",
            "workload",
            "splits",
            "root rebuilds",
            "cascades",
            "invariants",
        ],
    );
    t.note("Proposition 2: fanout and leaf-count bounds (checked by the full invariant");
    t.note("walker). Proposition 3: 'cascade splitting … is not possible' — the cascade");
    t.note("counter must stay 0 for every single-insert workload.");
    for params in Params::presets() {
        for workload in [
            Workload::Uniform,
            Workload::Hotspot {
                hot_fraction: 0.02,
                hot_weight: 0.95,
            },
        ] {
            let mut tree = LTree::new(params);
            run_workload(&mut tree, workload, n, ops, 31).expect("workload runs");
            let ok = tree.check_invariants().is_ok();
            let s = tree.stats();
            t.row(vec![
                params.to_string(),
                workload.name().into(),
                s.splits.to_string(),
                s.root_rebuilds.to_string(),
                s.cascade_splits.to_string(),
                if ok {
                    "pass".into()
                } else {
                    "FAIL".to_string()
                },
            ]);
            assert_eq!(s.cascade_splits, 0, "Proposition 3 violated");
            assert!(ok, "invariants violated");
        }
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X12 — deletions never relabel
// ----------------------------------------------------------------------

/// X12 — deletions never relabel.
pub fn x12(scale: Scale) -> Vec<Table> {
    let n = scale.pick(5_000, 50_000);
    let mut t = Table::new(
        "X12 — deletions are tombstones (no relabeling)",
        &[
            "scheme",
            "deletes",
            "label writes during deletes",
            "cost during deletes",
        ],
    );
    t.note("Paper §2.3: 'for deletions we can just mark as deleted the corresponding");
    t.note("leaves in the L-Tree without any relabeling.'");
    for spec in ["ltree(4,2)", "virtual(4,2)"] {
        let mut sc = scheme(spec);
        let handles = sc.bulk_build(n).expect("bulk build");
        sc.reset_scheme_stats();
        for h in handles.iter().step_by(2) {
            sc.delete(*h).expect("delete succeeds");
        }
        let s = sc.scheme_stats();
        t.row(vec![
            spec.into(),
            s.deletes.to_string(),
            s.label_writes.to_string(),
            s.node_touches.to_string(),
        ]);
        assert_eq!(s.label_writes, 0, "deletes must not write labels");
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X13 — query processing: navigation vs label joins
// ----------------------------------------------------------------------

/// X13 — query processing: navigation vs label joins.
pub fn x13(scale: Scale) -> Vec<Table> {
    let n = scale.pick(2_000, 20_000);
    let tree = generate(&auction_profile(n), 99);
    let reg = ltree::default_registry();
    let mut doc = Document::from_tree_with(tree, &reg, "ltree(8,2)", &SchemeConfig::default())
        .expect("document builds");
    // Make it a *dynamic* scenario: splice in some subtrees first.
    let root = doc.tree().root().expect("root");
    let (mut frag, fr) = XmlTree::with_root("open_auction");
    let b = frag.add_child(fr, "bidder").expect("live");
    frag.add_child(b, "price").expect("live");
    for i in 0..scale.pick(20, 200) {
        doc.insert_fragment(root, i % 3, &frag)
            .expect("fragment inserts");
    }
    doc.validate()
        .expect("document is consistent after updates");

    let queries = [
        "//item",
        "/site/regions//item",
        "//person/name",
        "/site//description",
        "//bidder/price",
        "//*",
    ];
    let mut t = Table::new(
        format!(
            "X13 — path queries over a generated auction document ({} elements)",
            doc.element_count()
        ),
        &[
            "query",
            "results",
            "navigational µs",
            "label-join µs",
            "identical",
        ],
    );
    t.note("Label-join evaluation = per-step sort-merge structural join over (begin,");
    t.note("end, depth) from the tag index — the paper's one-self-join story; the");
    t.note("navigational evaluator is the pointer-chasing ground truth.");
    for q in queries {
        let path = Path::parse(q).expect("valid query");
        let t0 = std::time::Instant::now();
        let nav = path.eval_navigational(&doc).expect("eval");
        let nav_us = t0.elapsed().as_micros();
        let t1 = std::time::Instant::now();
        let lab = path.eval_labeled(&doc).expect("eval");
        let lab_us = t1.elapsed().as_micros();
        let same = nav == lab;
        assert!(same, "evaluators disagree on {q}");
        t.row(vec![
            q.into(),
            nav.len().to_string(),
            nav_us.to_string(),
            lab_us.to_string(),
            same.to_string(),
        ]);
    }
    vec![t]
}

// ----------------------------------------------------------------------
// X14 — the RDBMS context: edge-table self-joins vs region-label join
// ----------------------------------------------------------------------

/// X14 — the RDBMS context: edge-table self-joins vs region-label join.
pub fn x14(scale: Scale) -> Vec<Table> {
    use ltree::rel::{descendants_via_edge_joins, descendants_via_region_join, shred};
    let n = scale.pick(3_000, 30_000);
    let tree = generate(&auction_profile(n), 77);
    let reg = ltree::default_registry();
    let doc = Document::from_tree_with(tree, &reg, "ltree(8,2)", &SchemeConfig::default())
        .expect("document builds");
    let (edge, region) = shred(&doc);
    let mut t = Table::new(
        format!("X14 — relational plans for //a₁//…//aₖ over {n} elements"),
        &["query", "results", "plan", "joins", "rows touched", "µs"],
    );
    t.note("The paper's introduction: the edge table needs 'one self-join … for each");
    t.note("parent-child relationship' and 'many self-joins' for '//', while region");
    t.note("labels need 'exactly one self-join with label comparisons as predicates'");
    t.note("per step. Row touches are the cost unit; both plans return identical ids.");
    let queries: &[&[&str]] = &[
        &["site", "item"],
        &["regions", "item", "name"],
        &["site", "open_auctions", "bidder"],
        &["site", "regions", "europe", "item", "description"],
    ];
    for tags in queries {
        let t0 = std::time::Instant::now();
        let e = descendants_via_edge_joins(&edge, tags, 14);
        let e_us = t0.elapsed().as_micros();
        let t1 = std::time::Instant::now();
        let r = descendants_via_region_join(&region, tags);
        let r_us = t1.elapsed().as_micros();
        assert_eq!(
            e.result_ids,
            r.result_ids,
            "plans must agree on //{}",
            tags.join("//")
        );
        let query = format!("//{}", tags.join("//"));
        t.row(vec![
            query.clone(),
            e.result_ids.len().to_string(),
            e.plan.into(),
            e.joins.to_string(),
            e.rows_touched.to_string(),
            e_us.to_string(),
        ]);
        t.row(vec![
            query,
            r.result_ids.len().to_string(),
            r.plan.into(),
            r.joins.to_string(),
            r.rows_touched.to_string(),
            r_us.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs_at_quick_scale() {
        for id in all_ids() {
            let tables = run(id, Scale::Quick).expect("known id");
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id} produced an empty table");
                let md = t.to_markdown();
                assert!(md.contains("###"));
            }
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("x99", Scale::Quick).is_none());
    }
}
