//! # `ltree-bench` — the reproduction harness
//!
//! One runner per experiment of DESIGN.md §3 (X1–X13). Each runner
//! returns [`table::Table`]s that the `repro` binary prints as markdown —
//! the exact content recorded in `EXPERIMENTS.md`. The Criterion benches
//! under `benches/` reuse the same workload drivers for wall-clock
//! measurements.
//!
//! Everything is seeded; two runs of `repro` produce identical counter
//! columns (wall-clock columns naturally vary).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

/// Experiment scale: `quick` keeps every experiment under a few seconds;
/// `full` uses the sizes recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for smoke runs and CI.
    Quick,
    /// The sizes used in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Pick between the quick and full variant of a parameter.
    pub fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
