//! # `ltree-bench` — the reproduction harness
//!
//! One runner per experiment (X1–X14), each returning [`table::Table`]s
//! that the `repro` binary prints as markdown, plus the
//! [`sweep`] mode: a scheme × workload × scale cross-product driven by
//! replayable edit scripts, emitted both as a table and as the
//! versioned machine-readable `BENCH_sweep.json` ([`sweep::SweepReport`])
//! that CI tracks against a checked-in baseline. Schemes under
//! comparison are constructed through the registry
//! ([`ltree::default_registry`]), so a new scheme registered there
//! joins every sweep automatically. The Criterion benches under
//! `benches/` are reference material for wall-clock runs (gated off:
//! this workspace builds without external dependencies; [`json`] is the
//! hand-rolled JSON layer that keeps it that way).
//!
//! Everything is seeded; two runs of `repro` produce identical counter
//! columns (wall-clock columns naturally vary).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod json;
pub mod sweep;
pub mod table;

/// Experiment scale: `quick` keeps every experiment under a few seconds;
/// `full` uses the reference sizes of the recorded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for smoke runs and CI.
    Quick,
    /// The reference sizes of the recorded runs.
    Full,
}

impl Scale {
    /// Pick between the quick and full variant of a parameter.
    pub fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
