//! Minimal markdown table rendering for the experiment reports.

/// One experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Heading (e.g. "X3 — amortized insertion cost vs n").
    pub title: String,
    /// Free-text notes printed under the heading.
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            notes: Vec::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Render as a github-flavoured markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Format a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.note("a note");
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("> a note"));
        assert!(md.contains("| a "));
        assert!(md.contains("| 1 "));
        assert!(md.lines().any(|l| l.starts_with("|--")));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(3.17159), "3.17");
        assert_eq!(f(42.123), "42.1");
        assert_eq!(f(12345.6), "12346");
    }
}
