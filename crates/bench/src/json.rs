//! A minimal JSON value, writer and parser.
//!
//! The workspace is intentionally dependency-free (it must build in
//! hermetic environments with no crates.io access), so the sweep's
//! machine-readable output carries its own ~200-line JSON
//! implementation instead of `serde`. It covers exactly what the
//! `BENCH_sweep.json` schema needs: objects with ordered keys, arrays,
//! strings, finite numbers, booleans and null.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted files are
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (emitted as an integer when it is one).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                debug_assert!(v.is_finite(), "JSON numbers are finite");
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (surrounding whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience constructors for the sweep code.
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while matches!(
                bytes.get(*pos),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "non-UTF-8 number".to_owned())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for this schema;
                        // lone surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 code point.
                let start = *pos;
                *pos += 1;
                while bytes.get(*pos).is_some_and(|&b| (b & 0xC0) == 0x80) {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8")?,
                );
            }
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_sweep_shapes() {
        let doc = Json::Obj(vec![
            ("version".into(), 1u64.into()),
            ("label".into(), "quick \"scale\"\n".into()),
            ("ok".into(), true.into()),
            ("missing".into(), Json::Null),
            (
                "cells".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("spec".into(), "ltree(4,2)".into()),
                        ("relabels".into(), 12345u64.into()),
                        ("ratio".into(), 1.5f64.into()),
                    ]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(
            back.get("label").unwrap().as_str(),
            Some("quick \"scale\"\n")
        );
        let cells = back.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells[0].get("spec").unwrap().as_str(), Some("ltree(4,2)"));
        assert_eq!(cells[0].get("ratio").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn integers_are_emitted_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_pretty().trim(), "42");
        assert_eq!(Json::Num(0.5).to_string_pretty().trim(), "0.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "[1] junk", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_interop_details() {
        let v = Json::parse(r#" { "a" : [ 1e3, -2.5, "xAy\n" ] } "#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1000.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("xAy\n"));
    }
}
