//! The scheme × workload × scale sweep.
//!
//! The registry makes scheme choice a string and `xmlgen` makes a
//! workload a replayable [`EditScript`](ltree::gen::EditScript), so a
//! sweep is a plain cross-product: for every `(initial size, workload
//! profile)` pair one seeded script is generated, and **every scheme
//! spec replays the same script** as batched splices. Each cell records
//! the [`SchemeStats`] counters (the paper's "nodes
//! accessed for searching or relabeling" currency), label width, memory,
//! wall time, and — via the `traced(…)` observability wrapper every cell
//! replays under — per-call p50/p99 latency quantiles (reported and
//! persisted, never gated: latency is machine-dependent); a cell whose
//! scheme construction or replay fails carries the error instead of
//! silently vanishing.
//!
//! Results render as the usual markdown table *and* serialize to the
//! versioned `BENCH_sweep.json` (schema documented in
//! `crates/bench/README.md`) that CI uploads as an artifact and diffs
//! against the checked-in `BENCH_baseline.json`: any errored cell or an
//! L-Tree relabel count more than `max_ratio` (default 2×) above the
//! baseline fails the build, so the perf trajectory is tracked by the
//! machine instead of by eyeballing terminal tables.

use crate::json::Json;
use crate::table::{f, Table};
use crate::Scale;
use ltree::gen::docedit::run_document_edits;
use ltree::gen::{generate_edits, standard_profiles, EditProfile, WorkloadReport};
use ltree::metrics::{HistogramSnapshot, Metric, MetricValue};
use ltree::{Instrumented, LTreeError, SchemeStats};

/// Version of the `BENCH_sweep.json` schema. Bump on any breaking field
/// change; consumers must reject versions they do not know.
pub const SWEEP_SCHEMA_VERSION: u64 = 1;

/// What to sweep: scheme spec strings × workload profiles × initial
/// sizes, with the per-size operation budget and the script seed.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Registry spec strings ("ltree(4,2)", "gap", …).
    pub specs: Vec<String>,
    /// Workload shapes, fixed across sizes — or `None` to use
    /// [`standard_profiles`] re-derived per size, so run lengths scale
    /// with each size's ops budget instead of the first size's.
    pub profiles: Option<Vec<EditProfile>>,
    /// Initial bulk-build sizes.
    pub sizes: Vec<usize>,
    /// Operations (inserted items) per cell, as a fraction of the size.
    pub ops_factor: f64,
    /// Seed for script generation.
    pub seed: u64,
    /// Human-readable scale label recorded in the report.
    pub scale_label: &'static str,
    /// Also run the `doc-edit` workload per (size, spec): a seeded edit
    /// session against a real `Document<S>` (fragment insertions and
    /// subtree removals through the splice paths) instead of a leaf
    /// stream — see [`ltree::gen::docedit`].
    pub document_cells: bool,
}

/// The standard sweep at a given scale: every scheme family the
/// workspace ships × the five standard workload shapes.
pub fn default_config(scale: Scale) -> SweepConfig {
    let sizes = match scale {
        Scale::Quick => vec![1_000],
        Scale::Full => vec![10_000, 50_000],
    };
    SweepConfig {
        specs: vec![
            "ltree(4,2)".into(),
            "ltree(16,4)".into(),
            "virtual(4,2)".into(),
            "gap".into(),
            "list-label".into(),
            "naive".into(),
            // Sharded composites over the same L-Tree shape, at two
            // shard counts, so the report shows scaling across shards.
            "sharded(4,ltree(4,2))".into(),
            "sharded(8,ltree(4,2))".into(),
            // The networked store over a loopback server: same logical
            // scheme as ltree(4,2), plus a wire; its cells carry the
            // round-trip count so batching shows up as a column.
            "served(ltree(4,2))".into(),
            // The pooled client (4 connections; single-threaded replay,
            // so this pins the pool's overhead at ~zero)…
            "served(ltree(4,2),conns=4)".into(),
            // …and the coalescing write buffer: same replay, adjacent
            // splices merged and pipelined — the `rtt saved` column
            // reports its round-trip savings against the plain served
            // twin above.
            "served(ltree(4,2),coalesce)".into(),
            // The contract auditor over the same L-Tree shape: the
            // `audit ovh` column reports its wall-clock overhead vs the
            // plain ltree(4,2) twin (reported, never gated — the
            // auditor is a verification tool, not a contender).
            "checked(ltree(4,2))".into(),
            // The durability wrapper over the same shape (dir-less →
            // self-cleaning scratch dir; sync=never keeps the replay
            // from fsyncing per op in CI): the `dur ovh` column reports
            // its wall-clock overhead — WAL encode + append +
            // checkpoints — vs the plain ltree(4,2) twin (reported,
            // never gated, like `audit ovh`).
            "durable(ltree(4,2),sync=never)".into(),
        ],
        profiles: None,
        sizes,
        ops_factor: 0.5,
        seed: 42,
        scale_label: match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        document_cells: true,
    }
}

/// One `(spec, workload, size)` measurement — or the error that kept it
/// from completing.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Registry spec string.
    pub spec: String,
    /// Workload profile name.
    pub workload: String,
    /// Initial bulk-build size.
    pub n: usize,
    /// Items the script inserts.
    pub ops: usize,
    /// The measurement, or the failure message.
    pub outcome: Result<CellMetrics, String>,
    /// Per-component counter breakdown after the replay
    /// ([`Instrumented::stats_breakdown`]) — one entry per shard for
    /// partitioned schemes, `net/...` transport entries for remote
    /// schemes, empty for monolithic local ones.
    pub shards: Vec<(String, SchemeStats)>,
}

impl SweepCell {
    /// Client round trips for remote schemes (the `net/round-trips`
    /// breakdown entry), `None` for local ones. Covers the replay and
    /// the end-of-run metric reads — the handshake and initial bulk
    /// build are excluded, because the workload drivers reset the
    /// scheme counters after the bulk build and the client resets its
    /// transport counters with them.
    pub fn round_trips(&self) -> Option<u64> {
        self.shards
            .iter()
            .find(|(name, _)| name == "net/round-trips")
            .map(|(_, s)| s.node_touches)
    }

    /// Breakdown entries that are segments (not `net/...` transport
    /// counters, not the auditor's `audit/...` bookkeeping, not the
    /// durability wrapper's `wal/...` log counters) — what the table's
    /// shard-count column shows.
    pub fn segment_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|(name, _)| {
                !name.starts_with("net/")
                    && !name.starts_with("audit/")
                    && !name.starts_with("wal/")
            })
            .count()
    }

    /// For a cell whose spec enables the coalescing write buffer, the
    /// spec of its non-coalescing twin (the same cell minus the
    /// `coalesce` option) — the baseline the `rtt saved` column
    /// compares round trips against. `None` for every other cell.
    pub fn coalesce_twin_spec(&self) -> Option<String> {
        let twin = self.spec.replace(",coalesce", "").replace("coalesce,", "");
        (twin != self.spec).then_some(twin)
    }

    /// For a cell whose spec is a `checked(...)` auditor wrapper, the
    /// spec of the plain inner twin it audits (wrapper and any
    /// `every=N` sampling option stripped) — the baseline the
    /// `audit ovh` column compares wall-clock against. `None` for every
    /// other cell.
    pub fn checked_twin_spec(&self) -> Option<String> {
        let inner = self
            .spec
            .strip_prefix("checked(")
            .and_then(|s| s.strip_suffix(')'))?;
        // Drop a trailing `,every=N` option; the inner spec itself may
        // contain commas (`ltree(4,2)`), so only strip a suffix that
        // parses as the option.
        let inner = match inner.rfind(",every=") {
            Some(pos)
                if inner[pos + ",every=".len()..]
                    .chars()
                    .all(|c| c.is_ascii_digit()) =>
            {
                &inner[..pos]
            }
            _ => inner,
        };
        Some(inner.to_owned())
    }

    /// For a cell whose spec is a `durable(...)` wrapper, the spec of
    /// the plain inner twin (wrapper and any `dir=`/`sync=`/
    /// `checkpoint_every=` options stripped) — the baseline the
    /// `dur ovh` column compares wall-clock against. `None` for every
    /// other cell.
    pub fn durable_twin_spec(&self) -> Option<String> {
        let mut inner = self
            .spec
            .strip_prefix("durable(")
            .and_then(|s| s.strip_suffix(')'))?;
        // Drop trailing wrapper options; the inner spec itself may
        // contain commas (`ltree(4,2)`), so only strip suffixes that
        // parse as known `key=value` options.
        loop {
            let stripped = ["dir=", "sync=", "checkpoint_every="]
                .iter()
                .find_map(|key| {
                    let pos = inner.rfind(&format!(",{key}"))?;
                    let value = &inner[pos + 1 + key.len()..];
                    (!value.is_empty() && !value.contains([',', '(', ')'])).then_some(&inner[..pos])
                });
            match stripped {
                Some(rest) => inner = rest,
                None => break,
            }
        }
        Some(inner.to_owned())
    }
}

/// The numbers one completed cell records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellMetrics {
    /// Items inserted by the replay.
    pub inserted: u64,
    /// Items deleted by the replay.
    pub deleted: u64,
    /// Item labels written (initial assignment + relabelings).
    pub label_writes: u64,
    /// Maintenance node/entry accesses.
    pub node_touches: u64,
    /// Relabeling events.
    pub relabel_events: u64,
    /// Bits needed for any label at the end.
    pub label_space_bits: u32,
    /// Approximate heap use at the end, bytes.
    pub memory_bytes: u64,
    /// Wall-clock of the replay, nanoseconds (driver bookkeeping
    /// included; machine-dependent, excluded from baseline checks).
    pub wall_ns: u64,
    /// Wall-clock inside scheme calls only, nanoseconds.
    pub scheme_wall_ns: u64,
    /// Median per-call latency across all `obs/op/*` histograms of the
    /// `traced(…)` wrapper every cell replays under, nanoseconds.
    /// Machine-dependent like the wall-clock columns — reported, never
    /// gated by the baseline check.
    pub p50_ns: u64,
    /// 99th-percentile per-call latency, nanoseconds (same source and
    /// same never-gated status as `p50_ns`).
    pub p99_ns: u64,
}

impl CellMetrics {
    fn from_report(r: &WorkloadReport, (p50_ns, p99_ns): (u64, u64)) -> Self {
        let SchemeStats {
            label_writes,
            node_touches,
            relabel_events,
            ..
        } = r.stats;
        CellMetrics {
            inserted: r.inserted,
            deleted: r.deleted,
            label_writes,
            node_touches,
            relabel_events,
            label_space_bits: r.label_space_bits,
            memory_bytes: r.memory_bytes as u64,
            wall_ns: r.wall.as_nanos() as u64,
            scheme_wall_ns: r.scheme_wall.as_nanos() as u64,
            p50_ns,
            p99_ns,
        }
    }

    /// Amortized label writes per inserted item — the headline number.
    pub fn relabels_per_op(&self) -> f64 {
        self.label_writes as f64 / self.inserted.max(1) as f64
    }

    /// Amortized total maintenance cost per inserted item.
    pub fn cost_per_op(&self) -> f64 {
        (self.label_writes + self.node_touches) as f64 / self.inserted.max(1) as f64
    }
}

/// A full sweep run: config echo plus one cell per cross-product entry.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Schema version ([`SWEEP_SCHEMA_VERSION`]).
    pub version: u64,
    /// Scale label ("quick" / "full").
    pub scale: String,
    /// Script-generation seed.
    pub seed: u64,
    /// All cells, in (size, workload, spec) iteration order.
    pub cells: Vec<SweepCell>,
}

/// Merge every `obs/op/*` latency histogram in a metrics snapshot into
/// one distribution and take its (p50, p99), nanoseconds. `(0, 0)` when
/// no samples were recorded (a cell that never entered the traced
/// wrapper's call paths).
fn latency_quantiles(metrics: &[Metric]) -> (u64, u64) {
    let mut merged = HistogramSnapshot::new();
    for m in metrics {
        if let (true, MetricValue::Histogram(h)) = (m.name.starts_with("obs/op/"), &m.value) {
            merged.merge(h);
        }
    }
    (merged.quantile(0.50), merged.quantile(0.99))
}

/// Run the sweep. Per-cell failures are *recorded*, not propagated — a
/// broken scheme must not hide the rest of the matrix.
///
/// Every cell replays under a `traced(…)` wrapper (never part of the
/// recorded spec string): the wrapper's per-op latency histograms are
/// where the cell's `p50_ns`/`p99_ns` figures come from, and its
/// counters/breakdown forward to the inner scheme untouched, so the
/// deterministic columns are exactly what the bare spec would record.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let registry = ltree::default_registry();
    let mut cells = Vec::new();
    for &n in &cfg.sizes {
        let ops = ((n as f64 * cfg.ops_factor) as usize).max(1);
        let profiles = cfg
            .profiles
            .clone()
            .unwrap_or_else(|| standard_profiles(ops));
        for &profile in &profiles {
            let script = generate_edits(profile, n, ops, cfg.seed);
            for spec in &cfg.specs {
                let measured = registry
                    .build(&format!("traced({spec})"))
                    .and_then(|mut scheme| {
                        let report = script.replay(&mut scheme)?;
                        let latency = latency_quantiles(&scheme.metrics());
                        Ok((
                            CellMetrics::from_report(&report, latency),
                            scheme.stats_breakdown(),
                        ))
                    })
                    .map_err(|e: LTreeError| e.to_string());
                cells.push(cell(spec, profile.name(), n, ops, measured));
            }
        }
        if cfg.document_cells {
            // The document-shaped workload: the same ops budget applied
            // through a real Document's splice paths (`n` counts items,
            // two per element, matching the leaf-stream cells).
            for spec in &cfg.specs {
                let measured = registry
                    .build(&format!("traced({spec})"))
                    .map_err(|e| e.to_string())
                    .and_then(|scheme| {
                        run_document_edits(scheme, n / 2, ops, cfg.seed).map_err(|e| e.to_string())
                    })
                    .map(|(report, scheme)| {
                        let latency = latency_quantiles(&scheme.metrics());
                        (
                            CellMetrics::from_report(&report, latency),
                            scheme.stats_breakdown(),
                        )
                    });
                cells.push(cell(spec, "doc-edit", n, ops, measured));
            }
        }
    }
    SweepReport {
        version: SWEEP_SCHEMA_VERSION,
        scale: cfg.scale_label.to_owned(),
        seed: cfg.seed,
        cells,
    }
}

fn cell(
    spec: &str,
    workload: &str,
    n: usize,
    ops: usize,
    measured: Result<(CellMetrics, Vec<(String, SchemeStats)>), String>,
) -> SweepCell {
    let (outcome, shards) = match measured {
        Ok((m, shards)) => (Ok(m), shards),
        Err(e) => (Err(e), Vec::new()),
    };
    SweepCell {
        spec: spec.to_owned(),
        workload: workload.to_owned(),
        n,
        ops,
        outcome,
        shards,
    }
}

impl SweepReport {
    /// Cells that failed, as `(cell, error)` pairs.
    pub fn errored(&self) -> Vec<(&SweepCell, &str)> {
        self.cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().err().map(|e| (c, e.as_str())))
            .collect()
    }

    /// Round-trip savings of a coalescing cell against its
    /// non-coalescing twin, as a percentage (positive = fewer trips).
    /// `None` when the cell does not coalesce or the twin is missing.
    pub fn coalesce_savings(&self, cell: &SweepCell) -> Option<f64> {
        let twin_spec = cell.coalesce_twin_spec()?;
        let rt = cell.round_trips()?;
        let twin = self.cells.iter().find(|t| {
            t.spec == twin_spec && t.workload == cell.workload && t.n == cell.n && t.ops == cell.ops
        })?;
        let twin_rt = twin.round_trips()?;
        if twin_rt == 0 {
            return None;
        }
        Some((twin_rt as f64 - rt as f64) * 100.0 / twin_rt as f64)
    }

    /// Wall-clock overhead of a `checked(...)` cell against its plain
    /// inner twin, as a percentage of the twin's in-scheme time
    /// (positive = auditing costs time). Reported, never gated:
    /// wall-clock is machine-dependent, and the auditor's O(n) shadow
    /// audits are expected to dominate the wrapped scheme. `None` when
    /// the cell is not `checked(...)` or the twin is missing.
    pub fn checked_overhead(&self, cell: &SweepCell) -> Option<f64> {
        let twin_spec = cell.checked_twin_spec()?;
        let m = cell.outcome.as_ref().ok()?;
        let twin = self.cells.iter().find(|t| {
            t.spec == twin_spec && t.workload == cell.workload && t.n == cell.n && t.ops == cell.ops
        })?;
        let t = twin.outcome.as_ref().ok()?;
        if t.scheme_wall_ns == 0 {
            return None;
        }
        Some((m.scheme_wall_ns as f64 - t.scheme_wall_ns as f64) * 100.0 / t.scheme_wall_ns as f64)
    }

    /// Wall-clock overhead of a `durable(...)` cell against its plain
    /// inner twin, as a percentage of the twin's in-scheme time
    /// (positive = the WAL costs time). Reported, never gated —
    /// wall-clock is machine-dependent, and the durable cell's
    /// `sync=never` figure measures encoding + appends + checkpoints,
    /// not the fsyncs a production `sync=always` store would add.
    /// `None` when the cell is not `durable(...)` or the twin is
    /// missing.
    pub fn durability_overhead(&self, cell: &SweepCell) -> Option<f64> {
        let twin_spec = cell.durable_twin_spec()?;
        let m = cell.outcome.as_ref().ok()?;
        let twin = self.cells.iter().find(|t| {
            t.spec == twin_spec && t.workload == cell.workload && t.n == cell.n && t.ops == cell.ops
        })?;
        let t = twin.outcome.as_ref().ok()?;
        if t.scheme_wall_ns == 0 {
            return None;
        }
        Some((m.scheme_wall_ns as f64 - t.scheme_wall_ns as f64) * 100.0 / t.scheme_wall_ns as f64)
    }

    /// The markdown table the terminal run prints.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Sweep — scheme × workload × size ({} scale, seed {})",
                self.scale, self.seed
            ),
            &[
                "n",
                "workload",
                "scheme",
                "relabels/op",
                "cost/op",
                "relabel events",
                "bits",
                "KiB",
                "ms",
                "p50 µs",
                "p99 µs",
                "shards",
                "rtt",
                "rtt saved",
                "audit ovh",
                "dur ovh",
            ],
        );
        t.note("One seeded edit script per (n, workload), replayed by every scheme as");
        t.note("batched splices (doc-edit instead drives a real Document's splice paths).");
        t.note("relabels/op = label writes per inserted item (the paper's cost unit); the");
        t.note("same numbers are emitted to BENCH_sweep.json for CI.");
        t.note("shards = final segment count for partitioned schemes (the JSON report");
        t.note("carries the full per-shard counter breakdown); rtt = client round trips");
        t.note("for remote schemes — batching is what keeps it near the splice count;");
        t.note("rtt saved = round trips a `coalesce` cell saved vs its plain twin;");
        t.note("audit ovh = in-scheme wall-clock a `checked` cell costs vs its plain twin");
        t.note("(reported, never gated — the contract auditor is verification, not a");
        t.note("contender); dur ovh = the same figure for a `durable` cell's write-ahead");
        t.note("log (sync=never in the matrix, so it prices encoding + appends +");
        t.note("checkpoints, not fsyncs — also reported, never gated).");
        t.note("p50/p99 µs = per-call latency quantiles from the traced wrapper's");
        t.note("obs/op/* histograms every cell replays under (machine-dependent, so");
        t.note("reported and persisted to the JSON but never gated, like ms).");
        for c in &self.cells {
            match &c.outcome {
                Ok(m) => t.row(vec![
                    c.n.to_string(),
                    c.workload.clone(),
                    c.spec.clone(),
                    f(m.relabels_per_op()),
                    f(m.cost_per_op()),
                    m.relabel_events.to_string(),
                    m.label_space_bits.to_string(),
                    (m.memory_bytes / 1024).to_string(),
                    f(m.wall_ns as f64 / 1.0e6),
                    f(m.p50_ns as f64 / 1.0e3),
                    f(m.p99_ns as f64 / 1.0e3),
                    match c.segment_count() {
                        0 => "—".into(),
                        k => k.to_string(),
                    },
                    match c.round_trips() {
                        None => "—".into(),
                        Some(rt) => rt.to_string(),
                    },
                    match self.coalesce_savings(c) {
                        None => "—".into(),
                        Some(pct) => format!("{pct:.0}%"),
                    },
                    match self.checked_overhead(c) {
                        None => "—".into(),
                        Some(pct) => format!("{pct:+.0}%"),
                    },
                    match self.durability_overhead(c) {
                        None => "—".into(),
                        Some(pct) => format!("{pct:+.0}%"),
                    },
                ]),
                Err(e) => t.row(
                    [c.n.to_string(), c.workload.clone(), c.spec.clone()]
                        .into_iter()
                        .chain(std::iter::once(format!("ERROR: {e}")))
                        .chain(std::iter::repeat_n("—".to_string(), 12))
                        .collect(),
                ),
            };
        }
        t
    }

    /// Scale trend lines: for every `(workload, spec)` pair measured at
    /// more than one initial size, how the headline numbers move from
    /// the smallest to the largest `n` — the growth story a single-size
    /// table cannot show. `None` when the sweep ran at one size (quick
    /// scale), so callers print it only when it says something.
    pub fn trend_table(&self) -> Option<Table> {
        let mut sizes: Vec<usize> = self.cells.iter().map(|c| c.n).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let (&lo, &hi) = (sizes.first()?, sizes.last()?);
        if lo == hi {
            return None;
        }
        let mut t = Table::new(
            format!("Scale trends — n={lo} → n={hi} ({} scale)", self.scale),
            &[
                "workload",
                "scheme",
                "relabels/op",
                "cost/op",
                "p99 µs",
                "relabels growth",
            ],
        );
        t.note("Each row pairs a (workload, scheme) cell at the smallest and largest");
        t.note("sweep size; `a → b` reads small → large. relabels growth = the ratio");
        t.note("of the two relabels/op figures — near ×1 means the amortized cost is");
        t.note("flat in n (the paper's claim for the L-Tree family). Latency columns");
        t.note("are machine-dependent and, as everywhere, never gated.");
        let arrow = |a: f64, b: f64| format!("{} → {}", f(a), f(b));
        for c in &self.cells {
            if c.n != lo {
                continue;
            }
            let Ok(m) = &c.outcome else { continue };
            let Some(big) = self.cells.iter().find(|b| {
                b.n == hi && b.spec == c.spec && b.workload == c.workload && b.outcome.is_ok()
            }) else {
                continue;
            };
            let bm = big.outcome.as_ref().expect("filtered to ok above");
            t.row(vec![
                c.workload.clone(),
                c.spec.clone(),
                arrow(m.relabels_per_op(), bm.relabels_per_op()),
                arrow(m.cost_per_op(), bm.cost_per_op()),
                arrow(m.p99_ns as f64 / 1.0e3, bm.p99_ns as f64 / 1.0e3),
                if m.relabels_per_op() > 0.0 {
                    format!("×{:.2}", bm.relabels_per_op() / m.relabels_per_op())
                } else {
                    "—".into()
                },
            ]);
        }
        Some(t)
    }

    /// Serialize to the versioned `BENCH_sweep.json` schema.
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut members: Vec<(String, Json)> = vec![
                    ("spec".into(), c.spec.as_str().into()),
                    ("workload".into(), c.workload.as_str().into()),
                    ("n".into(), c.n.into()),
                    ("ops".into(), c.ops.into()),
                    ("ok".into(), c.outcome.is_ok().into()),
                ];
                match &c.outcome {
                    Ok(m) => {
                        members.extend([
                            ("inserted".into(), m.inserted.into()),
                            ("deleted".into(), m.deleted.into()),
                            ("label_writes".into(), m.label_writes.into()),
                            ("node_touches".into(), m.node_touches.into()),
                            ("relabel_events".into(), m.relabel_events.into()),
                            ("relabels_per_op".into(), m.relabels_per_op().into()),
                            ("label_space_bits".into(), m.label_space_bits.into()),
                            ("memory_bytes".into(), m.memory_bytes.into()),
                            ("wall_ns".into(), m.wall_ns.into()),
                            ("scheme_wall_ns".into(), m.scheme_wall_ns.into()),
                            // Additive within schema version 1: per-call
                            // latency quantiles from the traced wrapper
                            // (machine-dependent — dashboards only,
                            // never read by the baseline gate).
                            ("p50_ns".into(), m.p50_ns.into()),
                            ("p99_ns".into(), m.p99_ns.into()),
                        ]);
                        // Additive within schema version 1: present for
                        // remote schemes only — the client's round-trip
                        // count (derived from the net/round-trips
                        // breakdown entry, precomputed for dashboards).
                        if let Some(rt) = c.round_trips() {
                            members.push(("round_trips".into(), rt.into()));
                        }
                        // Additive within schema version 1: absent for
                        // monolithic schemes, one entry per segment for
                        // partitioned ones (plus net/... transport
                        // entries for remote schemes).
                        if !c.shards.is_empty() {
                            let shards = c
                                .shards
                                .iter()
                                .map(|(name, s)| {
                                    Json::Obj(vec![
                                        ("name".into(), name.as_str().into()),
                                        ("inserts".into(), s.inserts.into()),
                                        ("deletes".into(), s.deletes.into()),
                                        ("label_writes".into(), s.label_writes.into()),
                                        ("node_touches".into(), s.node_touches.into()),
                                        ("relabel_events".into(), s.relabel_events.into()),
                                    ])
                                })
                                .collect();
                            members.push(("shards".into(), Json::Arr(shards)));
                        }
                    }
                    Err(e) => members.push(("error".into(), e.as_str().into())),
                }
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            ("kind".into(), "ltree-bench-sweep".into()),
            ("version".into(), self.version.into()),
            ("scale".into(), self.scale.as_str().into()),
            ("seed".into(), self.seed.into()),
            ("cells".into(), Json::Arr(cells)),
        ])
        .to_string_pretty()
    }

    /// Parse a `BENCH_sweep.json` document (for baseline comparison).
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        let doc = Json::parse(text)?;
        if doc.get("kind").and_then(Json::as_str) != Some("ltree-bench-sweep") {
            return Err("not a ltree-bench-sweep document".into());
        }
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing version")?;
        if version != SWEEP_SCHEMA_VERSION {
            return Err(format!(
                "unsupported sweep schema version {version} (this build reads {SWEEP_SCHEMA_VERSION})"
            ));
        }
        let field = |c: &Json, k: &str| -> Result<u64, String> {
            c.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cell missing '{k}'"))
        };
        let mut cells = Vec::new();
        for c in doc
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("missing cells")?
        {
            let spec = c
                .get("spec")
                .and_then(Json::as_str)
                .ok_or("cell missing 'spec'")?
                .to_owned();
            let workload = c
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("cell missing 'workload'")?
                .to_owned();
            let n = field(c, "n")? as usize;
            let ops = field(c, "ops")? as usize;
            let outcome = if c.get("ok").and_then(Json::as_bool) == Some(true) {
                Ok(CellMetrics {
                    inserted: field(c, "inserted")?,
                    deleted: field(c, "deleted")?,
                    label_writes: field(c, "label_writes")?,
                    node_touches: field(c, "node_touches")?,
                    relabel_events: field(c, "relabel_events")?,
                    label_space_bits: field(c, "label_space_bits")? as u32,
                    memory_bytes: field(c, "memory_bytes")?,
                    wall_ns: field(c, "wall_ns")?,
                    scheme_wall_ns: field(c, "scheme_wall_ns")?,
                    // Additive in schema version 1 — absent from older
                    // documents, so missing means "not recorded".
                    p50_ns: c.get("p50_ns").and_then(Json::as_u64).unwrap_or(0),
                    p99_ns: c.get("p99_ns").and_then(Json::as_u64).unwrap_or(0),
                })
            } else {
                Err(c
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_owned())
            };
            let mut shards = Vec::new();
            if let Some(list) = c.get("shards").and_then(Json::as_array) {
                for s in list {
                    let name = s
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("shard missing 'name'")?
                        .to_owned();
                    shards.push((
                        name,
                        SchemeStats {
                            inserts: field(s, "inserts")?,
                            deletes: field(s, "deletes")?,
                            label_writes: field(s, "label_writes")?,
                            node_touches: field(s, "node_touches")?,
                            relabel_events: field(s, "relabel_events")?,
                        },
                    ));
                }
            }
            cells.push(SweepCell {
                spec,
                workload,
                n,
                ops,
                outcome,
                shards,
            });
        }
        Ok(SweepReport {
            version,
            scale: doc
                .get("scale")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_owned(),
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            cells,
        })
    }
}

/// Compare a fresh sweep against a checked-in baseline: for every
/// L-Tree-family cell (spec starting with `ltree`, `virtual`, `sharded`
/// or `served`) present in both, the current **label-write count** must
/// not exceed
/// `max_ratio ×` the baseline's. Counter columns are seeded and
/// deterministic, so the 2× default only trips on genuine regressions
/// (wall-clock fields are deliberately ignored). Returns the list of
/// violations, empty when the sweep is clean.
pub fn compare_with_baseline(
    current: &SweepReport,
    baseline: &SweepReport,
    max_ratio: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for cur in &current.cells {
        if !(cur.spec.starts_with("ltree")
            || cur.spec.starts_with("virtual")
            || cur.spec.starts_with("sharded")
            || cur.spec.starts_with("served"))
        {
            continue;
        }
        let Some(base) = baseline.cells.iter().find(|b| {
            b.spec == cur.spec && b.workload == cur.workload && b.n == cur.n && b.ops == cur.ops
        }) else {
            continue; // new cell: nothing to regress against
        };
        match (&cur.outcome, &base.outcome) {
            (Ok(c), Ok(b)) => {
                let limit = (b.label_writes.max(1) as f64) * max_ratio;
                if c.label_writes as f64 > limit {
                    problems.push(format!(
                        "{} × {} × n={}: label writes {} exceed {max_ratio}× baseline {}",
                        cur.spec, cur.workload, cur.n, c.label_writes, b.label_writes
                    ));
                }
            }
            (Err(e), _) => problems.push(format!(
                "{} × {} × n={}: errored ({e})",
                cur.spec, cur.workload, cur.n
            )),
            (Ok(_), Err(_)) => {} // baseline was broken; current is better
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_SPECS: [&str; 7] = [
        "ltree(4,2)",
        "gap",
        "naive",
        "sharded(2,32,4,ltree(4,2))",
        "served(ltree(4,2))",
        "served(ltree(4,2),conns=4)",
        "served(ltree(4,2),coalesce)",
    ];
    const TINY_WORKLOADS: [&str; 6] = [
        "bulk-load",
        "append-heavy",
        "skewed-point",
        "mixed-edit",
        "delete-heavy",
        "doc-edit",
    ];

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            specs: TINY_SPECS.iter().map(|s| s.to_string()).collect(),
            profiles: Some(standard_profiles(64)),
            sizes: vec![128],
            ops_factor: 0.5,
            seed: 7,
            scale_label: "test",
            document_cells: true,
        }
    }

    #[test]
    fn sweep_covers_the_cross_product_without_errors() {
        let report = run_sweep(&tiny_config());
        assert_eq!(report.cells.len(), 7 * 6);
        assert!(report.errored().is_empty(), "{:?}", report.errored());
        let table = report.to_table();
        assert_eq!(table.rows.len(), 42);
        // Every workload (doc-edit included) appears for every spec.
        for spec in TINY_SPECS {
            for wl in TINY_WORKLOADS {
                assert!(
                    report
                        .cells
                        .iter()
                        .any(|c| c.spec == spec && c.workload == wl),
                    "missing {spec} × {wl}"
                );
            }
        }
    }

    #[test]
    fn bad_specs_become_errored_cells_not_panics() {
        let mut cfg = tiny_config();
        cfg.specs.push("no-such-scheme".into());
        let report = run_sweep(&cfg);
        let errored = report.errored();
        assert_eq!(errored.len(), 6, "one errored cell per workload");
        assert!(errored[0].1.contains("no-such-scheme"));
        // The rest of the matrix still ran.
        assert_eq!(report.cells.len(), 8 * 6);
    }

    #[test]
    fn sharded_cells_carry_the_per_shard_breakdown() {
        let report = run_sweep(&tiny_config());
        for c in &report.cells {
            if c.spec.starts_with("sharded") {
                assert!(c.segment_count() > 0, "{} × {}", c.spec, c.workload);
                let agg: u64 = c.shards.iter().map(|(_, s)| s.label_writes).sum();
                let m = c.outcome.as_ref().unwrap();
                // Live segments cannot have written more labels than the
                // aggregate (retired segments fold into the aggregate).
                assert!(agg <= m.label_writes, "{} × {}", c.spec, c.workload);
            } else if c.spec.starts_with("served") {
                assert_eq!(c.segment_count(), 0, "{}", c.spec);
            } else {
                assert!(c.shards.is_empty(), "{}", c.spec);
            }
        }
    }

    #[test]
    fn served_cells_carry_round_trips_and_match_the_local_scheme() {
        let report = run_sweep(&tiny_config());
        for c in &report.cells {
            if c.spec.starts_with("served") {
                let rt = c
                    .round_trips()
                    .unwrap_or_else(|| panic!("{} × {} has no rtt", c.spec, c.workload));
                assert!(rt > 0, "{} × {}", c.spec, c.workload);
                if c.spec.contains("coalesce") {
                    continue; // compared against its twin below
                }
                // The wire adds round trips, not label maintenance: the
                // served(ltree(4,2)) cells (pooled or not) must report
                // exactly the ltree(4,2) counters for the same workload.
                let local = report
                    .cells
                    .iter()
                    .find(|l| l.spec == "ltree(4,2)" && l.workload == c.workload && l.n == c.n)
                    .expect("local twin exists");
                let (m, lm) = (c.outcome.as_ref().unwrap(), local.outcome.as_ref().unwrap());
                assert_eq!(m.label_writes, lm.label_writes, "{}", c.workload);
                assert_eq!(m.relabel_events, lm.relabel_events, "{}", c.workload);
            } else {
                assert_eq!(c.round_trips(), None, "{}", c.spec);
            }
        }
    }

    /// The coalescing cells report savings against their plain twin,
    /// and insert-dominated workloads really save round trips (the
    /// whole point of write batching across calls).
    #[test]
    fn coalesce_cells_report_round_trip_savings() {
        let report = run_sweep(&tiny_config());
        let mut saw = 0;
        for c in &report.cells {
            if let Some(twin) = c.coalesce_twin_spec() {
                assert_eq!(twin, "served(ltree(4,2))", "{}", c.spec);
                let pct = report
                    .coalesce_savings(c)
                    .unwrap_or_else(|| panic!("{} × {}: no savings figure", c.spec, c.workload));
                if c.workload == "bulk-load" || c.workload == "append-heavy" {
                    assert!(
                        pct > 0.0,
                        "{} × {}: insert-dominated replay must save trips ({pct:.0}%)",
                        c.spec,
                        c.workload
                    );
                }
                saw += 1;
            } else {
                assert!(
                    report.coalesce_savings(c).is_none(),
                    "{}: unexpected savings column",
                    c.spec
                );
            }
        }
        assert_eq!(saw, 6, "one coalesce cell per workload");
    }

    /// The durable cell: counters identical to its plain twin (the
    /// wrapper forwards the inner scheme's stats — durability is pure
    /// overhead, never label maintenance), `wal/...` entries in the
    /// breakdown but *not* in the shard count, and a `dur ovh` figure
    /// against the twin.
    #[test]
    fn durable_cells_report_overhead_against_their_plain_twin() {
        let mut cfg = tiny_config();
        cfg.specs = vec![
            "ltree(4,2)".into(),
            "durable(ltree(4,2),sync=never)".into(),
            "durable(ltree(4,2),sync=never,checkpoint_every=64)".into(),
        ];
        let report = run_sweep(&cfg);
        assert!(report.errored().is_empty(), "{:?}", report.errored());
        let mut saw = 0;
        for c in &report.cells {
            let Some(twin_spec) = c.durable_twin_spec() else {
                assert!(
                    report.durability_overhead(c).is_none(),
                    "{}: unexpected dur ovh",
                    c.spec
                );
                continue;
            };
            assert_eq!(twin_spec, "ltree(4,2)", "{}", c.spec);
            // doc-edit cells record no separable in-scheme wall time
            // (see `docedit`), so no overhead figure exists there —
            // exactly like `audit ovh`.
            if c.workload != "doc-edit" {
                report
                    .durability_overhead(c)
                    .unwrap_or_else(|| panic!("{} × {}: no dur ovh figure", c.spec, c.workload));
            }
            assert_eq!(
                c.segment_count(),
                0,
                "{}: wal/ entries are not shards",
                c.spec
            );
            assert!(
                c.shards.iter().any(|(n, _)| n == "wal/appends"),
                "{}: breakdown carries the WAL counters",
                c.spec
            );
            let twin = report
                .cells
                .iter()
                .find(|t| t.spec == twin_spec && t.workload == c.workload && t.n == c.n)
                .expect("plain twin exists");
            let (m, tm) = (c.outcome.as_ref().unwrap(), twin.outcome.as_ref().unwrap());
            assert_eq!(
                m.label_writes, tm.label_writes,
                "{} × {}",
                c.spec, c.workload
            );
            assert_eq!(
                m.relabel_events, tm.relabel_events,
                "{} × {}",
                c.spec, c.workload
            );
            saw += 1;
        }
        assert_eq!(saw, 12, "two durable cells per workload (6 workloads)");
    }

    /// Every completed cell replays under `traced(…)`, so its latency
    /// quantiles are real measurements: nonzero, ordered, and carried
    /// through the JSON round trip like every other field.
    #[test]
    fn cells_carry_latency_quantiles_from_the_traced_wrapper() {
        let report = run_sweep(&tiny_config());
        for c in &report.cells {
            let m = c.outcome.as_ref().unwrap();
            assert!(m.p50_ns > 0, "{} × {}: empty p50", c.spec, c.workload);
            assert!(
                m.p99_ns >= m.p50_ns,
                "{} × {}: p99 {} below p50 {}",
                c.spec,
                c.workload,
                m.p99_ns,
                m.p50_ns
            );
        }
        // Older baseline documents predate the fields: absent reads as 0
        // instead of a parse error, keeping the schema version stable.
        let json = report.to_json().replace("\"p50_ns\"", "\"p50_gone\"");
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(back.cells[0].outcome.as_ref().unwrap().p50_ns, 0);
    }

    /// Trend lines exist exactly when the sweep spans several sizes, and
    /// pair each (workload, scheme) across the extremes.
    #[test]
    fn trend_table_appears_only_for_multi_size_sweeps() {
        let single = run_sweep(&tiny_config());
        assert!(single.trend_table().is_none(), "one size → no trends");

        let mut cfg = tiny_config();
        cfg.specs = vec!["ltree(4,2)".into(), "gap".into()];
        cfg.sizes = vec![128, 512];
        let report = run_sweep(&cfg);
        let t = report.trend_table().expect("two sizes → trends");
        assert_eq!(t.rows.len(), 2 * 6, "one row per (scheme, workload)");
        assert!(t.rows.iter().all(|r| r[2].contains(" → ")));
    }

    #[test]
    fn json_roundtrip_preserves_cells() {
        let report = run_sweep(&tiny_config());
        let text = report.to_json();
        let back = SweepReport::from_json(&text).unwrap();
        assert_eq!(back.version, SWEEP_SCHEMA_VERSION);
        assert_eq!(back.cells.len(), report.cells.len());
        for (a, b) in report.cells.iter().zip(&back.cells) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.n, b.n);
            assert_eq!(
                a.outcome.as_ref().unwrap(),
                b.outcome.as_ref().unwrap(),
                "{} × {}",
                a.spec,
                a.workload
            );
            assert_eq!(a.shards, b.shards, "{} × {}", a.spec, a.workload);
        }
    }

    #[test]
    fn sweeps_are_deterministic_in_counters() {
        let a = run_sweep(&tiny_config());
        let b = run_sweep(&tiny_config());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            let (ma, mb) = (ca.outcome.as_ref().unwrap(), cb.outcome.as_ref().unwrap());
            assert_eq!(ma.label_writes, mb.label_writes, "{}", ca.spec);
            assert_eq!(ma.node_touches, mb.node_touches, "{}", ca.spec);
            assert_eq!(ma.relabel_events, mb.relabel_events, "{}", ca.spec);
        }
    }

    #[test]
    fn baseline_comparison_flags_regressions_and_errors() {
        let base = run_sweep(&tiny_config());
        assert!(
            compare_with_baseline(&base, &base, 2.0).is_empty(),
            "a sweep never regresses against itself"
        );
        let mut worse = base.clone();
        for c in &mut worse.cells {
            if let Ok(m) = &mut c.outcome {
                m.label_writes = m.label_writes.max(1) * 3;
            }
        }
        let problems = compare_with_baseline(&worse, &base, 2.0);
        assert!(!problems.is_empty());
        assert!(
            problems.iter().all(|p| p.contains("ltree")),
            "only the L-Tree family is gated: {problems:?}"
        );
        let mut broken = base.clone();
        broken.cells[0].outcome = Err("boom".into());
        assert!(compare_with_baseline(&broken, &base, 2.0)
            .iter()
            .any(|p| p.contains("boom")));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut report = run_sweep(&tiny_config());
        report.version = 99;
        assert!(SweepReport::from_json(&report.to_json())
            .unwrap_err()
            .contains("version"));
        assert!(SweepReport::from_json("{\"kind\": \"other\"}").is_err());
    }
}
