//! # `ltree-sharded` — a segment-partitioned label store
//!
//! The L-Tree's weight-balanced relabeling is *local to a subtree*
//! (paper, Section 2.3): an insertion relabels only a logarithmically
//! chargeable neighbourhood. That locality is exactly what makes
//! partitioning the label space viable one level up: this crate's
//! [`ShardedScheme`] cuts the ordered label space into contiguous
//! **segments**, each owning an inner scheme (any scheme of the
//! workspace — an L-Tree, a virtual L-Tree, or a baseline), and
//! rebalances hot segments by **splitting** them the way an L-Tree node
//! splits, and drained segments by **merging** them into a neighbour.
//!
//! The whole ordered-labeling trait family is implemented on top:
//!
//! * [`OrderedLabeling`] — global labels are `(segment rank << B) |
//!   inner label` where `B` covers every segment's label space, so
//!   cross-segment order is the segment order and the streaming cursor
//!   walks shard-by-shard in global order;
//! * [`OrderedLabelingMut`] — point ops route through a **segment
//!   directory** (stable global handle → segment + inner handle, kept
//!   stable across splits and merges);
//! * [`BatchLabeling`] — insert splices keep a sibling run intact inside
//!   its segment (one native inner batch); delete splices are split at
//!   segment boundaries, one inner `delete_run` per touched segment;
//! * [`Instrumented`] — counters aggregate over all segments (counters
//!   of retired segments are folded in, keeping the monotonicity
//!   contract across merges) and
//!   [`stats_breakdown`](Instrumented::stats_breakdown) reports the
//!   per-shard split.
//!
//! Rebalancing traffic (migration inserts/deletes) is *counted*: moving
//! an item between segments relabels it, and that is precisely the
//! maintenance cost the paper's currency measures.
//!
//! Construct directly over any factory, or through the registry's
//! composite spec `sharded(n,inner)` (see the grammar in
//! [`ltree_core::registry`]):
//!
//! ```
//! use ltree_core::registry::SchemeRegistry;
//! use ltree_core::{OrderedLabeling, OrderedLabelingMut};
//!
//! let mut reg = SchemeRegistry::with_builtin();
//! ltree_sharded::register(&mut reg);
//! let mut scheme = reg.build("sharded(4,ltree(4,2))").unwrap();
//! let handles = scheme.bulk_build(100).unwrap();
//! assert_eq!(scheme.name(), "sharded");
//! assert_eq!(scheme.cursor().count(), 100);
//! // Labels follow list order across segment boundaries.
//! assert!(scheme.label_of(handles[24]).unwrap() < scheme.label_of(handles[25]).unwrap());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::HashMap;

use ltree_core::registry::{as_u32, SchemeRegistry, SpecArg};
use ltree_core::{
    BatchLabeling, DynScheme, Instrumented, LTreeError, LabelingScheme, LeafHandle,
    OrderedLabeling, OrderedLabelingMut, Result, SchemeStats,
};

/// Segment-population thresholds and the initial segment count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Segments created up front; bulk builds distribute across them.
    pub initial_shards: usize,
    /// A segment whose live population exceeds this splits in half.
    pub split_above: usize,
    /// A segment whose live population falls below this merges into a
    /// neighbour (`0` disables merging).
    pub merge_below: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            initial_shards: 4,
            split_above: 256,
            merge_below: 8,
        }
    }
}

impl ShardedConfig {
    fn validate(self) -> Result<Self> {
        let bad = |reason| {
            Err(LTreeError::InvalidSpec {
                spec: "sharded".into(),
                reason,
            })
        };
        if self.initial_shards == 0 {
            return bad("initial shard count must be at least 1");
        }
        if self.split_above < 2 {
            return bad("split threshold must be at least 2");
        }
        if self.merge_below > 0 && self.split_above < 4 * self.merge_below {
            return bad("split threshold must be at least 4x the merge threshold");
        }
        Ok(self)
    }
}

/// One directory entry: where a global handle currently lives. Entries
/// are never removed — a deleted item whose inner handle is gone (its
/// segment merged away, or the inner scheme removed it physically)
/// becomes a *detached* tombstone (`loc: None`). Keeping detached
/// entries makes [`OrderedLabeling::len`] independent of rebalancing
/// timing: the same logical edit stream always reports the same `len`,
/// whether applied as batches or as single ops.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    /// Current segment slot + inner handle; `None` once detached.
    loc: Option<(usize, LeafHandle)>,
    alive: bool,
}

/// One segment: an inner scheme plus the reverse map from its handles
/// back to the global ones.
struct Shard<S> {
    scheme: S,
    /// inner handle → global id. Inner handles *not* in this map are
    /// migration ghosts (tombstones left behind by a split) and are
    /// skipped by every read path.
    to_global: HashMap<u64, u64>,
}

/// A label store partitioned into contiguous ordered segments, each
/// backed by an inner scheme built on demand by a factory. See the
/// [crate docs](self) for the design and the
/// [`ltree_core::registry`] grammar for the `sharded(n,inner)` spec.
pub struct ShardedScheme<S: LabelingScheme> {
    factory: Box<dyn Fn() -> Result<S> + Send + Sync>,
    cfg: ShardedConfig,
    /// Slot-addressed segment storage; `None` marks retired slots so
    /// directory entries never dangle on index reuse.
    slots: Vec<Option<Shard<S>>>,
    /// Slot ids in global (cross-segment) order.
    order: Vec<usize>,
    /// Rank cache: `ranks[slot]` is the slot's position in `order`.
    /// Rebuilt on every `order` edit (split/merge — rare), so the read
    /// path never scans. Entries of retired slots are stale by design
    /// and never read.
    ranks: Vec<usize>,
    /// Cached label shift (`global_shift`), refreshed after every
    /// mutation: recomputing it per read would cost one
    /// `label_space_bits` call per segment on every `label_of`.
    shift: u32,
    /// Global handle → current location. Entries survive relabelings,
    /// splits and merges; they are dropped only when the item is gone
    /// from the inner scheme too.
    dir: HashMap<u64, DirEntry>,
    next_id: u64,
    n_live: usize,
    /// Counters of merged-away segments, folded into the aggregate so
    /// [`Instrumented`] stays monotone when a segment retires.
    retired: SchemeStats,
}

impl<S: LabelingScheme> ShardedScheme<S> {
    /// A sharded store with the default [`ShardedConfig`].
    pub fn new<F>(factory: F) -> Result<Self>
    where
        F: Fn() -> Result<S> + Send + Sync + 'static,
    {
        Self::with_config(ShardedConfig::default(), factory)
    }

    /// A sharded store with explicit thresholds. The factory runs once
    /// per initial segment immediately, so a broken factory fails here
    /// rather than at the first split.
    pub fn with_config<F>(cfg: ShardedConfig, factory: F) -> Result<Self>
    where
        F: Fn() -> Result<S> + Send + Sync + 'static,
    {
        let cfg = cfg.validate()?;
        let mut me = ShardedScheme {
            factory: Box::new(factory),
            cfg,
            slots: Vec::new(),
            order: Vec::new(),
            ranks: Vec::new(),
            shift: 1,
            dir: HashMap::new(),
            next_id: 0,
            n_live: 0,
            retired: SchemeStats::default(),
        };
        for _ in 0..cfg.initial_shards {
            let scheme = (me.factory)()?;
            let slot = me.alloc_slot(Shard {
                scheme,
                to_global: HashMap::new(),
            });
            me.order.push(slot);
        }
        me.rebuild_ranks();
        me.refresh_shift();
        Ok(me)
    }

    /// The thresholds this store runs with.
    pub fn config(&self) -> ShardedConfig {
        self.cfg
    }

    /// Current number of segments.
    pub fn shard_count(&self) -> usize {
        self.order.len()
    }

    /// Live population of every segment, in global order.
    pub fn shard_live_counts(&self) -> Vec<usize> {
        self.order
            .iter()
            .map(|&s| self.shard(s).scheme.live_len())
            .collect()
    }

    /// The segment rank (position in global order) currently holding a
    /// handle, or `None` for untracked or detached handles.
    /// Test/diagnostic hook.
    pub fn shard_of(&self, h: LeafHandle) -> Option<usize> {
        let (slot, _) = self.dir.get(&h.0)?.loc?;
        Some(self.rank_of(slot))
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn shard(&self, slot: usize) -> &Shard<S> {
        self.slots[slot].as_ref().expect("live slot")
    }

    fn shard_mut(&mut self, slot: usize) -> &mut Shard<S> {
        self.slots[slot].as_mut().expect("live slot")
    }

    fn rank_of(&self, slot: usize) -> usize {
        debug_assert!(self.slots[slot].is_some(), "rank of a retired slot");
        debug_assert_eq!(self.order.get(self.ranks[slot]), Some(&slot));
        self.ranks[slot]
    }

    /// Rebuild the slot → rank cache. Must follow every `order` edit.
    fn rebuild_ranks(&mut self) {
        self.ranks.clear();
        self.ranks.resize(self.slots.len(), usize::MAX);
        for (i, &s) in self.order.iter().enumerate() {
            self.ranks[s] = i;
        }
    }

    /// Recompute the cached label shift. Must run after every mutation
    /// — on error paths too, since a failed rebalance may already have
    /// widened an inner label space.
    fn refresh_shift(&mut self) {
        self.shift = self
            .order
            .iter()
            .map(|&s| self.shard(s).scheme.label_space_bits())
            .max()
            .unwrap_or(0)
            .max(1);
    }

    fn alloc_slot(&mut self, shard: Shard<S>) -> usize {
        self.slots.push(Some(shard));
        self.slots.len() - 1
    }

    /// Where a handle lives, as `(slot, inner, alive)`. Untracked
    /// handles error with [`LTreeError::UnknownHandle`], detached
    /// tombstones with [`LTreeError::DeletedLeaf`].
    fn locate(&self, h: LeafHandle) -> Result<(usize, LeafHandle, bool)> {
        let e = self.dir.get(&h.0).ok_or(LTreeError::UnknownHandle)?;
        let (slot, inner) = e.loc.ok_or(LTreeError::DeletedLeaf)?;
        Ok((slot, inner, e.alive))
    }

    /// Register a freshly inserted inner handle; returns the global one.
    fn track(&mut self, slot: usize, inner: LeafHandle) -> LeafHandle {
        let g = self.next_id;
        self.next_id += 1;
        self.dir.insert(
            g,
            DirEntry {
                loc: Some((slot, inner)),
                alive: true,
            },
        );
        self.shard_mut(slot).to_global.insert(inner.0, g);
        self.n_live += 1;
        LeafHandle(g)
    }

    /// Mark a just-deleted item: a located tombstone while the inner
    /// scheme still tracks the handle, detached once it does not
    /// (physical removal).
    fn untrack(&mut self, g: u64, slot: usize, inner: LeafHandle) {
        let gone = self.shard(slot).scheme.label_of(inner).is_err();
        if gone {
            self.shard_mut(slot).to_global.remove(&inner.0);
        }
        let e = self.dir.get_mut(&g).expect("deleted handle is tracked");
        e.alive = false;
        if gone {
            e.loc = None;
        }
        self.n_live -= 1;
    }

    /// Shift separating segment rank from inner label: wide enough for
    /// any label any segment currently hands out (cached; see
    /// [`refresh_shift`](Self::refresh_shift)).
    fn global_shift(&self) -> u32 {
        self.shift
    }

    /// First tracked handle of a segment in inner order (skipping
    /// migration ghosts), as `(global, inner)`.
    fn first_tracked(&self, slot: usize) -> Option<(u64, LeafHandle)> {
        let sh = self.shard(slot);
        let mut cur = sh.scheme.first_in_order();
        while let Some(ih) = cur {
            if let Some(&g) = sh.to_global.get(&ih.0) {
                return Some((g, ih));
            }
            cur = sh.scheme.next_in_order(ih);
        }
        None
    }

    /// The first live handle strictly after `h` in global order.
    fn next_live_after(&self, h: LeafHandle) -> Option<LeafHandle> {
        let mut cur = self.next_in_order(h);
        while let Some(n) = cur {
            if self.dir[&n.0].alive {
                return Some(n);
            }
            cur = self.next_in_order(n);
        }
        None
    }

    /// Tracked handles of a segment in inner order, live items only.
    fn live_of(&self, slot: usize) -> Vec<(u64, LeafHandle)> {
        let sh = self.shard(slot);
        let mut out = Vec::with_capacity(sh.scheme.live_len());
        let mut cur = sh.scheme.first_in_order();
        while let Some(ih) = cur {
            if let Some(&g) = sh.to_global.get(&ih.0) {
                if self.dir[&g].alive {
                    out.push((g, ih));
                }
            }
            cur = sh.scheme.next_in_order(ih);
        }
        out
    }

    /// Split segments on the worklist (and the halves they produce)
    /// until every population is back under `split_above`.
    fn rebalance_split(&mut self, slot: usize) -> Result<()> {
        let mut work = vec![slot];
        while let Some(s) = work.pop() {
            if self.slots[s].is_none() {
                continue;
            }
            if self.shard(s).scheme.live_len() <= self.cfg.split_above {
                continue;
            }
            let new_slot = self.split(s)?;
            work.push(s);
            work.push(new_slot);
        }
        Ok(())
    }

    /// Split one segment: the tail half of its live items moves to a
    /// fresh segment inserted right after it in global order. Handles
    /// stay stable — the directory is remapped; the inner tail items are
    /// batch-deleted (leaving ghosts) and batch-rebuilt in the fresh
    /// inner scheme.
    fn split(&mut self, s: usize) -> Result<usize> {
        let live = self.live_of(s);
        debug_assert!(live.len() >= 2, "split needs at least two live items");
        let tail = live[live.len() / 2..].to_vec();

        let mut fresh = (self.factory)()?;
        let new_inners = fresh.bulk_build(tail.len())?;
        let moved = self.shard_mut(s).scheme.delete_run(tail[0].1, tail.len())?;
        debug_assert_eq!(moved, tail.len(), "tail migration must move every item");

        let new_slot = self.alloc_slot(Shard {
            scheme: fresh,
            to_global: HashMap::new(),
        });
        let rank = self.rank_of(s);
        self.order.insert(rank + 1, new_slot);
        self.rebuild_ranks();

        for (&(g, old_inner), &new_inner) in tail.iter().zip(&new_inners) {
            self.shard_mut(s).to_global.remove(&old_inner.0);
            let e = self.dir.get_mut(&g).expect("migrated handle is tracked");
            e.loc = Some((new_slot, new_inner));
            self.shard_mut(new_slot).to_global.insert(new_inner.0, g);
        }
        Ok(new_slot)
    }

    /// Merge underpopulated segments into a neighbour until the
    /// population recovers or one segment remains.
    fn maybe_merge(&mut self, mut slot: usize) -> Result<()> {
        if self.cfg.merge_below == 0 {
            return Ok(());
        }
        loop {
            if self.order.len() <= 1 || self.slots[slot].is_none() {
                return Ok(());
            }
            if self.shard(slot).scheme.live_len() >= self.cfg.merge_below {
                return Ok(());
            }
            let rank = self.rank_of(slot);
            // Merge into the predecessor; the first segment instead
            // absorbs its successor (items can only be appended cheaply,
            // so the source is always the later segment of the pair).
            let (src, dst) = if rank > 0 {
                (slot, self.order[rank - 1])
            } else {
                (self.order[1], slot)
            };
            self.merge_into(src, dst)?;
            slot = dst;
            // Absorbing a full neighbour can overshoot the split bound.
            self.rebalance_split(slot)?;
            if self.slots[slot].is_none() {
                return Ok(());
            }
        }
    }

    /// Move every live item of `src` to the end of `dst` (its immediate
    /// predecessor in global order) and retire `src`. Directory entries
    /// of migrated items are remapped; entries still pointing at `src`
    /// (its dead items) are dropped with it.
    fn merge_into(&mut self, src: usize, dst: usize) -> Result<()> {
        debug_assert_eq!(self.rank_of(src), self.rank_of(dst) + 1);
        let movers = self.live_of(src);

        let new_inners: Vec<LeafHandle> = if movers.is_empty() {
            Vec::new()
        } else {
            match self.live_of(dst).last() {
                // One native batch after dst's last live item.
                Some(&(_, anchor)) => self
                    .shard_mut(dst)
                    .scheme
                    .insert_many_after(anchor, movers.len())?,
                // dst holds only tombstones (or nothing): chain from the
                // front — everything in dst is dead, so relative order
                // against it is immaterial.
                None => {
                    let mut v = Vec::with_capacity(movers.len());
                    let mut cur = self.shard_mut(dst).scheme.insert_first()?;
                    v.push(cur);
                    for _ in 1..movers.len() {
                        cur = self.shard_mut(dst).scheme.insert_after(cur)?;
                        v.push(cur);
                    }
                    v
                }
            }
        };

        for (&(g, _), &new_inner) in movers.iter().zip(&new_inners) {
            let e = self.dir.get_mut(&g).expect("migrated handle is tracked");
            e.loc = Some((dst, new_inner));
            self.shard_mut(dst).to_global.insert(new_inner.0, g);
        }

        let rank = self.rank_of(src);
        self.order.remove(rank);
        self.rebuild_ranks();
        let retired = self.slots[src].take().expect("src is live");
        let stats = retired.scheme.scheme_stats();
        self.retired = merged_stats(&self.retired, &stats);
        // Tombstones that still lived in src lose their position but not
        // their identity: they detach, keeping `len` stable.
        for (_, g) in retired.to_global {
            if let Some(e) = self.dir.get_mut(&g) {
                if e.loc.is_some_and(|(slot, _)| slot == src) {
                    debug_assert!(!e.alive, "live items were migrated");
                    e.loc = None;
                }
            }
        }
        Ok(())
    }
}

fn merged_stats(a: &SchemeStats, b: &SchemeStats) -> SchemeStats {
    SchemeStats {
        inserts: a.inserts + b.inserts,
        deletes: a.deletes + b.deletes,
        label_writes: a.label_writes + b.label_writes,
        node_touches: a.node_touches + b.node_touches,
        relabel_events: a.relabel_events + b.relabel_events,
    }
}

// ----------------------------------------------------------------------
// The trait family
// ----------------------------------------------------------------------

impl<S: LabelingScheme> OrderedLabeling for ShardedScheme<S> {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        let (slot, inner, _) = self.locate(h)?;
        let inner_label = self.shard(slot).scheme.label_of(inner)?;
        let rank = self.rank_of(slot) as u128;
        if rank == 0 {
            return Ok(inner_label);
        }
        let shift = self.global_shift();
        let rank_bits = 128 - rank.leading_zeros();
        if shift + rank_bits > 128 {
            // Astronomically wide inner label spaces cannot be prefixed
            // with a segment rank; report like any label-space overflow.
            return Err(LTreeError::LabelOverflow { height: u8::MAX });
        }
        Ok((rank << shift) | inner_label)
    }

    fn len(&self) -> usize {
        self.dir.len()
    }

    fn live_len(&self) -> usize {
        self.n_live
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.order
            .iter()
            .find_map(|&slot| self.first_tracked(slot))
            .map(|(g, _)| LeafHandle(g))
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        let (slot, inner) = self.dir.get(&h.0)?.loc?;
        let sh = self.shard(slot);
        let mut cur = sh.scheme.next_in_order(inner);
        while let Some(ih) = cur {
            if let Some(&g) = sh.to_global.get(&ih.0) {
                return Some(LeafHandle(g));
            }
            cur = sh.scheme.next_in_order(ih);
        }
        let rank = self.rank_of(slot);
        self.order[rank + 1..]
            .iter()
            .find_map(|&slot| self.first_tracked(slot))
            .map(|(g, _)| LeafHandle(g))
    }

    fn label_space_bits(&self) -> u32 {
        let max_rank = (self.order.len().saturating_sub(1)) as u128;
        let rank_bits = 128 - max_rank.leading_zeros();
        self.global_shift() + rank_bits
    }

    fn memory_bytes(&self) -> usize {
        let maps = (self.dir.len() * 2) * (std::mem::size_of::<u64>() * 2 + 8);
        let inner: usize = self
            .order
            .iter()
            .map(|&s| self.shard(s).scheme.memory_bytes())
            .sum();
        std::mem::size_of::<Self>() + maps + inner
    }
}

impl<S: LabelingScheme> OrderedLabelingMut for ShardedScheme<S> {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        let out = self.bulk_build_impl(n);
        self.refresh_shift();
        out
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        let out = self.insert_first_impl();
        self.refresh_shift();
        out
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let out = self.insert_after_impl(anchor);
        self.refresh_shift();
        out
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let out = self.insert_before_impl(anchor);
        self.refresh_shift();
        out
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        let out = self.delete_impl(h);
        self.refresh_shift();
        out
    }
}

impl<S: LabelingScheme> BatchLabeling for ShardedScheme<S> {
    /// A sibling run shares one anchor, so the whole batch lands in the
    /// anchor's segment as **one native inner batch**; the segment then
    /// splits as needed. Runs are never cut across segments on insert —
    /// splitting afterwards preserves contiguity, pre-splitting the run
    /// would not.
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        let out = self.insert_many_after_impl(anchor, k);
        self.refresh_shift();
        out
    }

    /// A delete run may straddle segment boundaries: it is split into
    /// one inner `delete_run` per touched segment, walking segments in
    /// global order and stopping at the list end.
    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        let out = self.delete_run_impl(first, count);
        self.refresh_shift();
        out
    }
}

/// Mutation bodies. The trait methods above wrap these and refresh the
/// cached label shift afterwards — on success *and* error, since a
/// partially applied operation may already have widened an inner label
/// space.
impl<S: LabelingScheme> ShardedScheme<S> {
    fn bulk_build_impl(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        if !self.dir.is_empty() || self.order.iter().any(|&s| self.shard(s).scheme.len() > 0) {
            return Err(LTreeError::NotEmpty);
        }
        let shards = self.order.clone();
        let k = shards.len();
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        for (i, &slot) in shards.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            // Even distribution: ceil over the shards still to fill.
            let take = remaining.div_ceil(k - i);
            let inners = self.shard_mut(slot).scheme.bulk_build(take)?;
            for ih in inners {
                out.push(self.track(slot, ih));
            }
            remaining -= take;
        }
        for &slot in &shards {
            self.rebalance_split(slot)?;
        }
        Ok(out)
    }

    fn insert_first_impl(&mut self) -> Result<LeafHandle> {
        let slot = self.order[0];
        let ih = self.shard_mut(slot).scheme.insert_first()?;
        let g = self.track(slot, ih);
        self.rebalance_split(slot)?;
        Ok(g)
    }

    fn insert_after_impl(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let (slot, inner, _) = self.locate(anchor)?;
        let ih = self.shard_mut(slot).scheme.insert_after(inner)?;
        let g = self.track(slot, ih);
        self.rebalance_split(slot)?;
        Ok(g)
    }

    fn insert_before_impl(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let (slot, inner, _) = self.locate(anchor)?;
        let ih = self.shard_mut(slot).scheme.insert_before(inner)?;
        let g = self.track(slot, ih);
        self.rebalance_split(slot)?;
        Ok(g)
    }

    fn delete_impl(&mut self, h: LeafHandle) -> Result<()> {
        let (slot, inner, alive) = self.locate(h)?;
        if !alive {
            return Err(LTreeError::DeletedLeaf);
        }
        self.shard_mut(slot).scheme.delete(inner)?;
        self.untrack(h.0, slot, inner);
        self.maybe_merge(slot)?;
        Ok(())
    }

    fn insert_many_after_impl(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        if k == 0 {
            return Err(LTreeError::EmptyBatch);
        }
        let (slot, inner, _) = self.locate(anchor)?;
        let inners = self.shard_mut(slot).scheme.insert_many_after(inner, k)?;
        let out = inners.into_iter().map(|ih| self.track(slot, ih)).collect();
        self.rebalance_split(slot)?;
        Ok(out)
    }

    fn delete_run_impl(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        self.locate(first)?;
        let mut deleted = 0usize;
        // The continuation handle is always *live* (or None at the list
        // end): merges triggered below migrate live items but keep their
        // handles, so the position is never lost mid-run. `first` itself
        // may be a tombstone; skip to the first live handle.
        let mut cur = Some(first).filter(|&h| self.dir[&h.0].alive);
        if cur.is_none() {
            cur = self.next_live_after(first);
        }
        while deleted < count {
            let Some(g) = cur else { break };
            let (slot, _, _) = self.locate(g)?;
            // The run's intersection with this segment: consecutive live
            // handles from `g` on, in global order.
            let mut run: Vec<(u64, LeafHandle)> = Vec::new();
            let mut scan = Some(g);
            let mut last = g;
            while let Some(h) = scan {
                let Ok((hs, hi, alive)) = self.locate(h) else {
                    break;
                };
                if hs != slot {
                    break;
                }
                if alive {
                    run.push((h.0, hi));
                }
                last = h;
                if run.len() + deleted >= count {
                    break;
                }
                scan = self.next_in_order(h);
            }
            debug_assert!(!run.is_empty(), "the continuation handle is live");
            // Pick the continuation before mutating anything.
            cur = self.next_live_after(last);
            let n = self
                .shard_mut(slot)
                .scheme
                .delete_run(run[0].1, run.len())?;
            debug_assert_eq!(n, run.len(), "segment run must delete exactly");
            for &(gid, ih) in &run[..n] {
                self.untrack(gid, slot, ih);
            }
            deleted += n;
            self.maybe_merge(slot)?;
        }
        Ok(deleted)
    }
}

impl<S: LabelingScheme> Instrumented for ShardedScheme<S> {
    fn scheme_stats(&self) -> SchemeStats {
        self.order.iter().fold(self.retired, |acc, &s| {
            merged_stats(&acc, &self.shard(s).scheme.scheme_stats())
        })
    }

    fn reset_scheme_stats(&mut self) {
        self.retired = SchemeStats::default();
        for slot in self.order.clone() {
            self.shard_mut(slot).scheme.reset_scheme_stats();
        }
    }

    /// One entry per segment, keyed `shard0..shardN` by global rank and
    /// sorted by name (the workspace-wide breakdown ordering contract).
    /// Counters folded from retired (merged-away) segments appear only
    /// in the aggregate.
    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        let mut out: Vec<(String, SchemeStats)> = self
            .order
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("shard{i}"), self.shard(s).scheme.scheme_stats()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Segment metrics merged into one view: same-named counters sum,
    /// same-named histograms merge bucket-wise — so
    /// `sharded(4,traced(…))` reports one `obs/op/*` family spanning
    /// all segments, not four disjoint ones.
    fn metrics(&self) -> Vec<ltree_core::metrics::Metric> {
        ltree_core::metrics::merge_metrics(
            self.order.iter().map(|&s| self.shard(s).scheme.metrics()),
        )
    }
}

// ----------------------------------------------------------------------
// Registry wiring
// ----------------------------------------------------------------------

/// Register the `sharded` composite spec:
///
/// * `sharded(inner)` — default config over `inner`;
/// * `sharded(n,inner)` — `n` initial segments;
/// * `sharded(n,split,merge,inner)` — full threshold control.
///
/// `inner` is any spec the same registry resolves, recursively —
/// `sharded(4,ltree(4,2))`, `sharded(2,gap)`, even
/// `sharded(2,sharded(2,ltree))`. See the grammar in
/// [`ltree_core::registry`].
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_composite(
        "sharded",
        "segment-partitioned composite; args: (inner), (n,inner) or (n,split,merge,inner)",
        |reg, cfg, args| {
            let bad = |reason: &'static str| LTreeError::InvalidSpec {
                spec: "sharded".into(),
                reason,
            };
            let Some(SpecArg::Spec(inner)) = args.last() else {
                return Err(bad("the last argument must be an inner scheme spec"));
            };
            let mut nums = Vec::new();
            for a in &args[..args.len() - 1] {
                nums.push(
                    a.as_num()
                        .ok_or_else(|| bad("only the last argument may be a spec"))?,
                );
            }
            let mut scfg = ShardedConfig::default();
            match nums[..] {
                [] => {}
                [n] => scfg.initial_shards = as_u32("sharded", n)? as usize,
                [n, split, merge] => {
                    scfg.initial_shards = as_u32("sharded", n)? as usize;
                    scfg.split_above = as_u32("sharded", split)? as usize;
                    scfg.merge_below = as_u32("sharded", merge)? as usize;
                }
                _ => return Err(bad("expected (inner), (n,inner) or (n,split,merge,inner)")),
            }
            let reg = reg.clone();
            let cfg = *cfg;
            let inner = inner.clone();
            let scheme: ShardedScheme<Box<dyn DynScheme>> =
                ShardedScheme::with_config(scfg, move || reg.build_with(&inner, &cfg))?;
            Ok(Box::new(scheme))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{Cursor, LTree, Params, Splice};

    fn ltree_factory() -> impl Fn() -> Result<LTree> + Send + Sync + 'static {
        || Ok(LTree::new(Params::new(4, 2).unwrap()))
    }

    fn small(split: usize, merge: usize, shards: usize) -> ShardedScheme<LTree> {
        ShardedScheme::with_config(
            ShardedConfig {
                initial_shards: shards,
                split_above: split,
                merge_below: merge,
            },
            ltree_factory(),
        )
        .unwrap()
    }

    fn assert_global_order(s: &ShardedScheme<LTree>, expect_live: &[LeafHandle]) {
        let mut prev: Option<u128> = None;
        let mut live = Vec::new();
        for h in Cursor::new(s) {
            let l = s.label_of(h).unwrap();
            if let Some(p) = prev {
                assert!(p < l, "cursor out of label order ({p} >= {l})");
            }
            prev = Some(l);
            if s.dir[&h.0].alive {
                live.push(h);
            }
        }
        assert_eq!(live, expect_live, "live cursor order");
    }

    #[test]
    fn bulk_build_distributes_and_orders_across_shards() {
        let mut s = small(64, 0, 4);
        let hs = s.bulk_build(40).unwrap();
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_live_counts(), vec![10, 10, 10, 10]);
        assert_eq!(s.live_len(), 40);
        // Handles come back in global order spanning all four segments.
        for w in hs.windows(2) {
            assert!(s.label_of(w[0]).unwrap() < s.label_of(w[1]).unwrap());
        }
        assert_eq!(s.shard_of(hs[0]), Some(0));
        assert_eq!(s.shard_of(hs[39]), Some(3));
        assert_global_order(&s, &hs);
        assert!(s.bulk_build(4).is_err(), "non-empty build must fail");
    }

    #[test]
    fn point_ops_route_to_the_anchors_segment() {
        let mut s = small(64, 0, 2);
        let hs = s.bulk_build(8).unwrap(); // 4 + 4
        let a = s.insert_after(hs[1]).unwrap();
        assert_eq!(s.shard_of(a), Some(0));
        let b = s.insert_before(hs[6]).unwrap();
        assert_eq!(s.shard_of(b), Some(1));
        assert!(s.label_of(hs[1]).unwrap() < s.label_of(a).unwrap());
        assert!(s.label_of(a).unwrap() < s.label_of(hs[2]).unwrap());
        assert!(s.label_of(hs[5]).unwrap() < s.label_of(b).unwrap());
        assert!(s.label_of(b).unwrap() < s.label_of(hs[6]).unwrap());
        // Cross-boundary comparison still follows list order.
        assert!(s.label_of(hs[3]).unwrap() < s.label_of(hs[4]).unwrap());
        s.delete(a).unwrap();
        assert!(matches!(s.delete(a), Err(LTreeError::DeletedLeaf)));
        assert_eq!(s.live_len(), 9, "8 built + 2 inserted - 1 deleted");
    }

    #[test]
    fn hot_segment_splits_and_handles_stay_stable() {
        let mut s = small(8, 0, 2);
        let hs = s.bulk_build(8).unwrap();
        let labels_before: Vec<u128> = hs.iter().map(|&h| s.label_of(h).unwrap()).collect();
        assert!(labels_before.windows(2).all(|w| w[0] < w[1]));
        // Hammer one segment far over the threshold in one batch.
        let batch = s.insert_many_after(hs[0], 20).unwrap();
        assert!(s.shard_count() > 2, "hot segment must have split");
        assert!(
            s.shard_live_counts().iter().all(|&n| n <= 8),
            "every segment back under the threshold: {:?}",
            s.shard_live_counts()
        );
        // Every original and new handle still resolves, in order.
        let mut all = vec![hs[0]];
        all.extend(&batch);
        all.extend(&hs[1..]);
        assert_eq!(s.live_len(), 28);
        assert_global_order(&s, &all);
    }

    #[test]
    fn drained_segment_merges_away() {
        let mut s = small(32, 4, 4);
        let hs = s.bulk_build(32).unwrap(); // 8 per segment
        assert_eq!(s.shard_count(), 4);
        // Drain the third segment (items 16..24) one by one.
        for &h in &hs[16..24] {
            s.delete(h).unwrap();
        }
        assert!(s.shard_count() < 4, "drained segment must merge");
        let live: Vec<LeafHandle> = hs[..16].iter().chain(&hs[24..]).copied().collect();
        assert_eq!(s.live_len(), 24);
        assert_global_order(&s, &live);
    }

    #[test]
    fn delete_run_splits_at_segment_boundaries() {
        let mut s = small(64, 0, 4);
        let hs = s.bulk_build(40).unwrap(); // 10 per segment
                                            // A run straddling three segments: items 5..35.
        let deleted = s
            .splice(Splice::DeleteRun {
                first: hs[5],
                count: 30,
            })
            .unwrap()
            .deleted();
        assert_eq!(deleted, 30);
        assert_eq!(s.live_len(), 10);
        let live: Vec<LeafHandle> = hs[..5].iter().chain(&hs[35..]).copied().collect();
        assert_global_order(&s, &live);
        // Over the end: deletes what is left and reports it.
        let rest = s
            .splice(Splice::DeleteRun {
                first: hs[0],
                count: 1000,
            })
            .unwrap()
            .deleted();
        assert_eq!(rest, 10);
        assert_eq!(s.live_len(), 0);
    }

    #[test]
    fn stats_aggregate_and_stay_monotone_across_merges() {
        let mut s = small(16, 4, 4);
        let hs = s.bulk_build(32).unwrap();
        let ins = s.insert_after(hs[0]).unwrap();
        s.delete(ins).unwrap();
        let mut prev = s.scheme_stats();
        assert_eq!((prev.inserts, prev.deletes), (1, 1));
        assert_eq!(s.stats_breakdown().len(), 4);
        for &h in &hs[8..24] {
            s.delete(h).unwrap();
            let now = s.scheme_stats();
            assert!(now.dominates(&prev), "{prev:?} -> {now:?}");
            prev = now;
        }
        assert!(s.shard_count() < 4, "merges must have retired segments");
        assert_eq!(s.stats_breakdown().len(), s.shard_count());
        s.reset_scheme_stats();
        assert_eq!(s.scheme_stats(), SchemeStats::default());
    }

    #[test]
    fn insert_first_lands_globally_first() {
        let mut s = small(64, 0, 3);
        let hs = s.bulk_build(9).unwrap();
        let front = s.insert_first().unwrap();
        assert!(s.label_of(front).unwrap() < s.label_of(hs[0]).unwrap());
        assert_eq!(s.first_in_order(), Some(front));
    }

    #[test]
    fn empty_and_unknown_inputs_are_typed_errors() {
        let mut s = small(64, 0, 2);
        let hs = s.bulk_build(4).unwrap();
        assert!(matches!(
            s.insert_many_after(hs[0], 0),
            Err(LTreeError::EmptyBatch)
        ));
        assert!(matches!(
            s.insert_after(LeafHandle(u64::MAX)),
            Err(LTreeError::UnknownHandle)
        ));
        assert!(matches!(
            s.label_of(LeafHandle(u64::MAX)),
            Err(LTreeError::UnknownHandle)
        ));
        let cfg = ShardedConfig {
            initial_shards: 0,
            ..Default::default()
        };
        assert!(ShardedScheme::<LTree>::with_config(cfg, ltree_factory()).is_err());
        let cfg = ShardedConfig {
            split_above: 8,
            merge_below: 4,
            ..Default::default()
        };
        assert!(ShardedScheme::<LTree>::with_config(cfg, ltree_factory()).is_err());
    }

    #[test]
    fn registry_spec_builds_and_nests() {
        let mut reg = SchemeRegistry::with_builtin();
        register(&mut reg);
        let mut s = reg.build("sharded(3,ltree(4,2))").unwrap();
        assert_eq!(s.name(), "sharded");
        let hs = s.bulk_build(30).unwrap();
        assert_eq!(s.live_len(), 30);
        assert!(s.label_of(hs[9]).unwrap() < s.label_of(hs[10]).unwrap());
        assert_eq!(s.stats_breakdown().len(), 3);
        // Threshold form and nesting both resolve.
        reg.build("sharded(2,16,2,ltree(4,2))").unwrap();
        reg.build("sharded(2,sharded(2,ltree))").unwrap();
        // Bad shapes are typed errors.
        assert!(reg.build("sharded").is_err());
        assert!(reg.build("sharded(4)").is_err(), "no inner spec");
        assert!(reg.build("sharded(2,nope)").is_err(), "inner must resolve");
        assert!(reg.build("sharded(ltree,2)").is_err(), "spec must be last");
    }
}
