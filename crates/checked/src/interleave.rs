//! An exhaustive interleaving explorer for small concurrency models.
//!
//! The workspace is dependency-free, so instead of the `loom` crate the
//! concurrency claims in `crates/remote` are checked with this explorer:
//! each thread of a model is an explicit state machine, and the explorer
//! runs a depth-first search over **every** schedule (which runnable
//! thread takes the next step, times any nondeterministic choice that
//! step declares), cloning the whole model state to backtrack. Reaching
//! a terminal state runs the model's invariant; a state where no thread
//! can step is reported as a deadlock, with the schedule that got there.
//!
//! ## Scope, honestly stated
//!
//! The explorer is **sequentially consistent**: every step sees the
//! effects of all earlier steps in its schedule. That matches the code
//! being modeled — the remote crate's cross-thread protocol state lives
//! behind `Mutex`/`RwLock`, and its atomics are either pure counters or
//! the epoch (whose Acquire/Release pairing is documented at the site) —
//! but it means weak-memory reorderings are out of scope, which is what
//! the scheduled ThreadSanitizer CI lane is for. Models stay small
//! (schedule counts explode combinatorially); [`Explorer::max_schedules`]
//! bounds runaway models.
//!
//! ```
//! use ltree_checked::interleave::{Explorer, Step, Thread};
//!
//! // Two threads increment a shared counter; with an atomic step the
//! // final value is always 2 in every schedule.
//! #[derive(Clone)]
//! struct Inc(bool);
//! impl Thread<u32> for Inc {
//!     fn step(&mut self, shared: &mut u32, _choice: u32) -> Step {
//!         *shared += 1;
//!         self.0 = true;
//!         Step::Done
//!     }
//! }
//! let explored = Explorer::default()
//!     .run(&0u32, &[Inc(false), Inc(false)], |s| {
//!         (*s == 2).then_some(()).ok_or_else(|| format!("lost update: {s}"))
//!     })
//!     .unwrap();
//! assert_eq!(explored.schedules, 2); // AB and BA
//! ```

/// What one step of a model thread did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread made progress and has more steps ahead.
    Ran,
    /// The thread cannot step right now (blocked on a lock/join/flag).
    /// A blocked step **must not** mutate the shared state; the explorer
    /// retries it after other threads run.
    Blocked,
    /// The thread finished; it will not be scheduled again.
    Done,
}

/// One thread of a model: a cloneable state machine over shared state
/// `S`. The explorer drives `step` with every `choice` in
/// `0..choices()`, in every order allowed by the other threads.
pub trait Thread<S>: Clone {
    /// Execute the thread's next step. `choice` selects among the
    /// nondeterministic alternatives the thread declared via
    /// [`choices`](Thread::choices) (0 when there is only one).
    fn step(&mut self, shared: &mut S, choice: u32) -> Step;

    /// Number of nondeterministic alternatives for the *next* step
    /// (e.g. "the connection fails here" vs "it survives"). Defaults
    /// to 1 — deterministic.
    fn choices(&self, shared: &S) -> u32 {
        let _ = shared;
        1
    }
}

/// Why an exploration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A terminal state failed the invariant.
    Invariant {
        /// The invariant's own message.
        message: String,
        /// The `(thread, choice)` schedule that reached the state.
        schedule: Vec<(usize, u32)>,
    },
    /// No thread could step and at least one was not done.
    Deadlock {
        /// Indices of the threads still blocked.
        blocked: Vec<usize>,
        /// The `(thread, choice)` schedule that reached the state.
        schedule: Vec<(usize, u32)>,
    },
    /// The model exceeded [`Explorer::max_schedules`].
    TooLarge {
        /// The configured bound.
        limit: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Invariant { message, schedule } => {
                write!(f, "invariant violated: {message}; schedule {schedule:?}")
            }
            Violation::Deadlock { blocked, schedule } => {
                write!(
                    f,
                    "deadlock: threads {blocked:?} blocked; schedule {schedule:?}"
                )
            }
            Violation::TooLarge { limit } => {
                write!(f, "model exceeds the {limit}-schedule exploration bound")
            }
        }
    }
}

/// Statistics of a completed exploration — useful for asserting that a
/// model really exercised the interleavings it claims to cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Number of distinct complete schedules that reached a terminal
    /// state (every thread `Done`).
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
}

/// The exhaustive explorer. `run` is the entry point; the only knob is
/// the schedule bound.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Abort with [`Violation::TooLarge`] after this many complete
    /// schedules — a guard against models too big to enumerate, not a
    /// sampling mechanism.
    pub max_schedules: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_schedules: 5_000_000,
        }
    }
}

/// One DFS node: the shared state plus every thread's private state.
#[derive(Clone)]
struct Node<S, T> {
    shared: S,
    threads: Vec<Option<T>>, // None = done
}

impl Explorer {
    /// Explore every schedule of `threads` over `shared`, checking
    /// `invariant` at every terminal state (all threads done). Returns
    /// the exploration statistics, or the first violation found with
    /// the schedule reproducing it.
    pub fn run<S, T, F>(
        &self,
        shared: &S,
        threads: &[T],
        invariant: F,
    ) -> Result<Explored, Violation>
    where
        S: Clone,
        T: Thread<S>,
        F: Fn(&S) -> Result<(), String>,
    {
        let mut stats = Explored {
            schedules: 0,
            steps: 0,
        };
        let root = Node {
            shared: shared.clone(),
            threads: threads.iter().cloned().map(Some).collect(),
        };
        let mut schedule = Vec::new();
        self.dfs(&root, &invariant, &mut schedule, &mut stats)?;
        Ok(stats)
    }

    fn dfs<S, T, F>(
        &self,
        node: &Node<S, T>,
        invariant: &F,
        schedule: &mut Vec<(usize, u32)>,
        stats: &mut Explored,
    ) -> Result<(), Violation>
    where
        S: Clone,
        T: Thread<S>,
        F: Fn(&S) -> Result<(), String>,
    {
        if node.threads.iter().all(Option::is_none) {
            stats.schedules += 1;
            if stats.schedules > self.max_schedules {
                return Err(Violation::TooLarge {
                    limit: self.max_schedules,
                });
            }
            return invariant(&node.shared).map_err(|message| Violation::Invariant {
                message,
                schedule: schedule.clone(),
            });
        }

        let mut progressed = false;
        let mut blocked = Vec::new();
        for i in 0..node.threads.len() {
            let Some(t) = &node.threads[i] else { continue };
            let alternatives = t.choices(&node.shared).max(1);
            for choice in 0..alternatives {
                let mut next = node.clone();
                let t = next.threads[i].as_mut().expect("thread present");
                match t.step(&mut next.shared, choice) {
                    Step::Blocked => {
                        // Blocked steps are side-effect free by contract;
                        // drop the clone and retry deeper in the tree.
                        if choice == 0 {
                            blocked.push(i);
                        }
                        continue;
                    }
                    Step::Done => next.threads[i] = None,
                    Step::Ran => {}
                }
                progressed = true;
                stats.steps += 1;
                schedule.push((i, choice));
                self.dfs(&next, invariant, schedule, stats)?;
                schedule.pop();
            }
        }
        if !progressed {
            return Err(Violation::Deadlock {
                blocked,
                schedule: schedule.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A thread taking `n` plain steps, then done.
    #[derive(Clone)]
    struct Stepper {
        left: u32,
    }
    impl Thread<()> for Stepper {
        fn step(&mut self, _shared: &mut (), _choice: u32) -> Step {
            self.left -= 1;
            if self.left == 0 {
                Step::Done
            } else {
                Step::Ran
            }
        }
    }

    #[test]
    fn schedule_count_is_the_interleaving_binomial() {
        // Two threads of 2 steps each: C(4,2) = 6 interleavings.
        let explored = Explorer::default()
            .run(&(), &[Stepper { left: 2 }, Stepper { left: 2 }], |_| Ok(()))
            .unwrap();
        assert_eq!(explored.schedules, 6);
        // Three threads of 2 steps: 6!/(2!2!2!) = 90.
        let explored = Explorer::default()
            .run(
                &(),
                &[
                    Stepper { left: 2 },
                    Stepper { left: 2 },
                    Stepper { left: 2 },
                ],
                |_| Ok(()),
            )
            .unwrap();
        assert_eq!(explored.schedules, 90);
    }

    /// Classic read-modify-write race: nonatomic increment loses updates
    /// in some schedule, and the explorer finds that schedule.
    #[derive(Clone)]
    struct RacyInc {
        seen: Option<u32>,
    }
    impl Thread<u32> for RacyInc {
        fn step(&mut self, shared: &mut u32, _choice: u32) -> Step {
            match self.seen {
                None => {
                    self.seen = Some(*shared); // read
                    Step::Ran
                }
                Some(v) => {
                    *shared = v + 1; // write back
                    Step::Done
                }
            }
        }
    }

    #[test]
    fn finds_the_lost_update_schedule() {
        let err = Explorer::default()
            .run(
                &0u32,
                &[RacyInc { seen: None }, RacyInc { seen: None }],
                |s| {
                    if *s == 2 {
                        Ok(())
                    } else {
                        Err(format!("lost update: {s}"))
                    }
                },
            )
            .unwrap_err();
        match err {
            Violation::Invariant { message, schedule } => {
                assert!(message.contains("lost update"), "{message}");
                // The reproducing schedule interleaves the reads.
                assert_eq!(schedule.len(), 4);
            }
            other => panic!("expected invariant violation, got {other}"),
        }
    }

    /// Two threads each taking two locks in opposite order deadlock in
    /// the schedule where both hold one lock.
    #[derive(Clone)]
    struct OpposedLocker {
        order: [usize; 2],
        held: usize,
    }
    impl Thread<[bool; 2]> for OpposedLocker {
        fn step(&mut self, locks: &mut [bool; 2], _choice: u32) -> Step {
            if self.held < 2 {
                let want = self.order[self.held];
                if locks[want] {
                    return Step::Blocked;
                }
                locks[want] = true;
                self.held += 1;
                Step::Ran
            } else {
                locks[self.order[0]] = false;
                locks[self.order[1]] = false;
                Step::Done
            }
        }
    }

    #[test]
    fn detects_lock_order_deadlock_and_clears_ordered_locking() {
        let ab = OpposedLocker {
            order: [0, 1],
            held: 0,
        };
        let ba = OpposedLocker {
            order: [1, 0],
            held: 0,
        };
        let err = Explorer::default()
            .run(&[false, false], &[ab.clone(), ba], |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, Violation::Deadlock { .. }), "{err}");
        // Same order on both sides: every schedule completes.
        let explored = Explorer::default()
            .run(&[false, false], &[ab.clone(), ab], |locks| {
                if locks.iter().any(|&l| l) {
                    Err("lock leaked".into())
                } else {
                    Ok(())
                }
            })
            .unwrap();
        assert!(explored.schedules > 0);
    }

    /// `choices` forks the search: a coin-flip thread explores both
    /// outcomes.
    #[derive(Clone)]
    struct Coin;
    impl Thread<Vec<u32>> for Coin {
        fn step(&mut self, shared: &mut Vec<u32>, choice: u32) -> Step {
            shared.push(choice);
            Step::Done
        }
        fn choices(&self, _shared: &Vec<u32>) -> u32 {
            2
        }
    }

    #[test]
    fn nondeterministic_choices_fork_the_search() {
        let mut outcomes = std::cell::RefCell::new(Vec::new());
        Explorer::default()
            .run(&Vec::new(), &[Coin, Coin], |s| {
                outcomes.borrow_mut().push(s.clone());
                Ok(())
            })
            .unwrap();
        let outcomes = outcomes.get_mut();
        // 2 orders × 2 × 2 choices, but order of identical pushes is
        // indistinguishable: the value sequences cover all 2-bit pairs.
        assert_eq!(outcomes.len(), 8);
        for bits in [[0, 0], [0, 1], [1, 0], [1, 1]] {
            assert!(outcomes.iter().any(|o| o == &bits), "{bits:?} missing");
        }
    }

    #[test]
    fn schedule_bound_is_enforced() {
        let err = Explorer { max_schedules: 3 }
            .run(&(), &[Stepper { left: 3 }, Stepper { left: 3 }], |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, Violation::TooLarge { limit: 3 }), "{err}");
    }
}
