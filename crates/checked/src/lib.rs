//! # `ltree-checked` — the contract auditor for ordered labeling schemes
//!
//! [`CheckedScheme`] wraps any scheme implementing the ordered-labeling
//! trait family and audits the **whole contract** after every mutation
//! (or every `N`-th, see [`CheckedScheme::with_every`]), generalizing
//! `ltree_core::invariants` — which knows only the materialized L-Tree's
//! internal shape — to anything behind [`DynScheme`]:
//!
//! * **order** — labels of live items strictly increase along list
//!   order, and `label_of` succeeds for every live handle;
//! * **cursor agreement** — the streaming cursor yields handles in
//!   strictly increasing label order, every yielded handle resolves
//!   through `label_of`, and the cursor's live subsequence equals the
//!   shadow list exactly;
//! * **count consistency** — `live_len()` matches the shadow's live
//!   count and never exceeds `len()`, which never exceeds the number of
//!   items ever tracked;
//! * **splice-vs-loop equivalence** — the shadow is maintained with the
//!   *loop* semantics of every batch op (the `BatchLabeling` default
//!   bodies), so a native `splice` fast-path that lands items anywhere
//!   other than where the equivalent single-op loop would violates the
//!   cursor-agreement check;
//! * **stats monotonicity** — [`SchemeStats`] counters never decrease
//!   between resets.
//!
//! The shadow model is the same `(handle, alive)` reference list the
//! workspace's conformance suite maintains, so a `checked(...)` failure
//! and a conformance failure point at the same clause of the contract —
//! but the auditor travels *inside* the composition: `checked(gap)`
//! audits the baseline, `sharded(4,checked(ltree(4,2)))` audits every
//! segment independently, and `checked(served(ltree))` audits a remote
//! client against the shadow without the server knowing.
//!
//! Violations are reported as [`LTreeError::ContractViolation`] from the
//! mutation that exposed them. The wrapped scheme keeps whatever state
//! the mutation left behind; the report is diagnostic, not transactional.
//!
//! ```
//! use ltree_checked::CheckedScheme;
//! use ltree_core::{LTree, OrderedLabelingMut, Params};
//!
//! let mut s = CheckedScheme::new(LTree::new(Params::new(4, 2).unwrap()));
//! let hs = s.bulk_build(8).unwrap();   // audited
//! s.insert_after(hs[3]).unwrap();      // audited
//! assert_eq!(s.audits_run(), 2);
//! ```
//!
//! Or through the registry, composable like any spec —
//! `checked(ltree(4,2))`, `checked(sharded(2,gap),every=16)`:
//!
//! ```
//! use ltree_core::{OrderedLabelingMut, SchemeRegistry};
//!
//! let mut reg = SchemeRegistry::with_builtin();
//! ltree_checked::register(&mut reg);
//! let mut s = reg.build("checked(ltree(4,2))").unwrap();
//! s.bulk_build(16).unwrap();
//! ```
//!
//! The crate also hosts [`interleave`], the exhaustive interleaving
//! explorer behind the loom-style concurrency models in
//! `crates/remote/tests/loom_models.rs`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::cmp::Ordering;

use ltree_core::registry::{SpecArg, SpecOptions};
use ltree_core::{
    BatchLabeling, Cursor, DynScheme, Instrumented, LTreeError, LeafHandle, OrderedLabeling,
    OrderedLabelingMut, Result, SchemeRegistry, SchemeStats, Splice, SpliceResult,
};

pub mod interleave;

/// A contract auditor wrapping any ordered labeling scheme. See the
/// [crate docs](crate) for what is audited and when.
#[derive(Debug)]
pub struct CheckedScheme<S> {
    inner: S,
    /// `(handle, alive)` in list order — the ground truth the scheme is
    /// audited against, maintained with loop semantics.
    shadow: Vec<(LeafHandle, bool)>,
    /// Audit every `every`-th mutation (1 = every mutation).
    every: u64,
    mutations: u64,
    audits: u64,
    /// Stats snapshot from the previous audit, for the monotonicity check.
    prev_stats: SchemeStats,
}

impl<S: OrderedLabeling + Instrumented> CheckedScheme<S> {
    /// Wrap `inner`, auditing after every mutation.
    ///
    /// The wrapped scheme must be empty (or about to be `bulk_build`t):
    /// the shadow starts empty and can only track what flows through
    /// this wrapper.
    pub fn new(inner: S) -> Self {
        Self::with_every(inner, 1)
    }

    /// Wrap `inner`, auditing after every `every`-th mutation. The audit
    /// walks the full list (`O(n)` labels plus one cursor pass), so
    /// `every > 1` trades detection latency for throughput on large
    /// schemes. `every` must be at least 1.
    pub fn with_every(inner: S, every: u64) -> Self {
        let prev_stats = inner.scheme_stats();
        CheckedScheme {
            inner,
            shadow: Vec::new(),
            every: every.max(1),
            mutations: 0,
            audits: 0,
            prev_stats,
        }
    }

    /// The wrapped scheme, discarding the shadow.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Number of full audits run so far.
    pub fn audits_run(&self) -> u64 {
        self.audits
    }

    /// Shorthand for a violation rooted at the wrapped scheme.
    fn violation(&self, detail: String) -> LTreeError {
        LTreeError::ContractViolation {
            scheme: self.inner.name().to_owned(),
            detail,
        }
    }

    /// Index of the **live** shadow entry holding `h`, if any. Schemes
    /// with physical removal may re-mint a dead entry's handle value, so
    /// lookups must never match tombstones.
    fn live_pos(&self, h: LeafHandle) -> Option<usize> {
        self.shadow.iter().position(|&(sh, alive)| alive && sh == h)
    }

    /// Position of an insertion anchor: a live entry when one exists,
    /// else a tombstone holding `h` — anchoring on deleted items is
    /// scheme-specific (the L-Tree allows it; the tombstone still holds
    /// a list position), so the shadow accepts whatever the scheme did.
    fn anchor_pos(&self, h: LeafHandle) -> Option<usize> {
        self.live_pos(h)
            .or_else(|| self.shadow.iter().position(|&(sh, _)| sh == h))
    }

    /// Record a freshly minted handle at shadow position `at`; a handle
    /// colliding with a live one is a contract violation (two live items
    /// would be indistinguishable to every caller).
    fn admit(&mut self, h: LeafHandle, at: usize) -> Result<()> {
        if self.live_pos(h).is_some() {
            return Err(self.violation(format!(
                "insert returned handle {} which is already live",
                h.0
            )));
        }
        self.shadow.insert(at, (h, true));
        Ok(())
    }

    /// Mirror a successful delete-run of `deleted` live items starting
    /// at (or after) `first`, with the loop semantics of
    /// `BatchLabeling::delete_run`: live items at or after `first` in
    /// list order, tombstones skipped.
    fn retire_run(&mut self, first: LeafHandle, deleted: usize) -> Result<()> {
        // `first` may itself be anything the scheme tracks; anchoring on
        // a tombstone is scheme-specific, so fall back to the dead entry
        // when no live one matches.
        let start = self
            .live_pos(first)
            .or_else(|| self.shadow.iter().position(|&(sh, _)| sh == first))
            .ok_or_else(|| {
                self.violation(format!(
                    "delete_run accepted untracked first handle {}",
                    first.0
                ))
            })?;
        let mut remaining = deleted;
        for j in start..self.shadow.len() {
            if remaining == 0 {
                break;
            }
            if self.shadow[j].1 {
                self.shadow[j].1 = false;
                remaining -= 1;
            }
        }
        if remaining != 0 {
            return Err(self.violation(format!(
                "delete_run reported {deleted} deletions but only {} live items \
                 existed at or after the anchor",
                deleted - remaining
            )));
        }
        Ok(())
    }

    /// Bump the mutation counter and run the sampled audit.
    fn after_mutation(&mut self) -> Result<()> {
        self.mutations += 1;
        if self.mutations.is_multiple_of(self.every) {
            self.audit()?;
        }
        Ok(())
    }

    /// Run the full audit now, regardless of sampling. Callers holding a
    /// concrete `CheckedScheme` can use this as a final check after a
    /// workload; through the registry the sampled audits do the work.
    pub fn audit(&mut self) -> Result<()> {
        self.audits += 1;

        // Counts: the scheme may keep tombstones (live_len < len) and may
        // compact them away (len shrinks), but it can never track more
        // items than ever flowed through this wrapper, nor fewer than
        // are still alive.
        let live = self.shadow.iter().filter(|&&(_, a)| a).count();
        if self.inner.live_len() != live {
            return Err(self.violation(format!(
                "live_len() = {} but {live} live items were tracked",
                self.inner.live_len()
            )));
        }
        if self.inner.len() < live {
            return Err(self.violation(format!(
                "len() = {} < live_len() = {live}",
                self.inner.len()
            )));
        }
        if self.inner.len() > self.shadow.len() {
            return Err(self.violation(format!(
                "len() = {} exceeds the {} items ever tracked",
                self.inner.len(),
                self.shadow.len()
            )));
        }
        if self.inner.is_empty() != (self.inner.len() == 0) {
            return Err(self.violation("is_empty() disagrees with len()".into()));
        }

        // Order: labels of live items strictly increase in list order,
        // and every live handle resolves.
        let mut prev: Option<(LeafHandle, u128)> = None;
        for &(h, alive) in &self.shadow {
            if !alive {
                continue;
            }
            let l = self.inner.label_of(h).map_err(|e| {
                self.violation(format!("label_of failed for live handle {}: {e}", h.0))
            })?;
            if let Some((ph, pl)) = prev {
                if pl >= l {
                    return Err(self.violation(format!(
                        "label order broken: label({}) = {pl} >= label({}) = {l}",
                        ph.0, h.0
                    )));
                }
            }
            prev = Some((h, l));
        }

        // Cursor: strictly increasing labels over *everything* it yields
        // (tombstones included where the scheme keeps them), every yield
        // resolvable, and the live subsequence equal to the shadow. The
        // shadow carries loop semantics, so this is also the
        // splice-vs-loop equivalence check for native batch paths.
        let live_set: std::collections::HashSet<u64> = self
            .shadow
            .iter()
            .filter(|&&(_, a)| a)
            .map(|&(h, _)| h.0)
            .collect();
        let mut cursor_live: Vec<LeafHandle> = Vec::with_capacity(live);
        let mut prev: Option<(LeafHandle, u128)> = None;
        for h in Cursor::new(&self.inner) {
            let l = self
                .inner
                .label_of(h)
                .map_err(|e| self.violation(format!("cursor yielded handle {}: {e}", h.0)))?;
            if let Some((ph, pl)) = prev {
                if pl >= l {
                    return Err(self.violation(format!(
                        "cursor out of label order: label({}) = {pl} >= label({}) = {l}",
                        ph.0, h.0
                    )));
                }
            }
            prev = Some((h, l));
            if live_set.contains(&h.0) {
                cursor_live.push(h);
            }
        }
        let expect: Vec<LeafHandle> = self
            .shadow
            .iter()
            .filter(|&&(_, a)| a)
            .map(|&(h, _)| h)
            .collect();
        if cursor_live != expect {
            return Err(self.violation(format!(
                "cursor live subsequence diverges from the shadow list \
                 (cursor walked {} live items, shadow tracks {})",
                cursor_live.len(),
                expect.len()
            )));
        }

        // Stats: counters only climb between resets.
        let stats = self.inner.scheme_stats();
        if !stats.dominates(&self.prev_stats) {
            return Err(self.violation(format!(
                "stats went backwards: {:?} -> {stats:?}",
                self.prev_stats
            )));
        }
        self.prev_stats = stats;
        Ok(())
    }
}

impl<S: OrderedLabeling + Instrumented> OrderedLabeling for CheckedScheme<S> {
    fn name(&self) -> &'static str {
        "checked"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        self.inner.label_of(h)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn live_len(&self) -> usize {
        self.inner.live_len()
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.inner.first_in_order()
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        self.inner.next_in_order(h)
    }

    fn label_space_bits(&self) -> u32 {
        self.inner.label_space_bits()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
            + self.shadow.capacity() * std::mem::size_of::<(LeafHandle, bool)>()
    }

    fn compare(&self, a: LeafHandle, b: LeafHandle) -> Result<Ordering> {
        self.inner.compare(a, b)
    }
}

impl<S: DynScheme> OrderedLabelingMut for CheckedScheme<S> {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        let hs = self.inner.bulk_build(n)?;
        if hs.len() != n {
            return Err(self.violation(format!("bulk_build({n}) returned {} handles", hs.len())));
        }
        for &h in &hs {
            let at = self.shadow.len();
            self.admit(h, at)?;
        }
        self.after_mutation()?;
        Ok(hs)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        let h = self.inner.insert_first()?;
        self.admit(h, 0)?;
        self.after_mutation()?;
        Ok(h)
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let h = self.inner.insert_after(anchor)?;
        let at = self.anchor_pos(anchor).ok_or_else(|| {
            self.violation(format!(
                "insert_after accepted untracked anchor {}",
                anchor.0
            ))
        })?;
        self.admit(h, at + 1)?;
        self.after_mutation()?;
        Ok(h)
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let h = self.inner.insert_before(anchor)?;
        let at = self.anchor_pos(anchor).ok_or_else(|| {
            self.violation(format!(
                "insert_before accepted untracked anchor {}",
                anchor.0
            ))
        })?;
        self.admit(h, at)?;
        self.after_mutation()?;
        Ok(h)
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        self.inner.delete(h)?;
        let at = self
            .live_pos(h)
            .ok_or_else(|| self.violation(format!("delete accepted untracked handle {}", h.0)))?;
        self.shadow[at].1 = false;
        self.after_mutation()
    }
}

impl<S: DynScheme> BatchLabeling for CheckedScheme<S> {
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        // Route through the inner's native fast-path; the shadow mirrors
        // the loop semantics, so the audit checks their equivalence.
        let hs = self.inner.insert_many_after(anchor, k)?;
        if hs.len() != k {
            return Err(self.violation(format!(
                "insert_many_after(_, {k}) returned {} handles",
                hs.len()
            )));
        }
        let at = self.anchor_pos(anchor).ok_or_else(|| {
            self.violation(format!(
                "insert_many_after accepted untracked anchor {}",
                anchor.0
            ))
        })?;
        for (j, &h) in hs.iter().enumerate() {
            self.admit(h, at + 1 + j)?;
        }
        self.after_mutation()?;
        Ok(hs)
    }

    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        let deleted = self.inner.delete_run(first, count)?;
        if deleted > count {
            return Err(
                self.violation(format!("delete_run(_, {count}) claims {deleted} deletions"))
            );
        }
        self.retire_run(first, deleted)?;
        self.after_mutation()?;
        Ok(deleted)
    }

    fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
        // Do not forward `splice` wholesale: going through the wrapper's
        // own batch methods keeps the shadow mirrored while still
        // exercising the inner's native splice components.
        match op {
            Splice::InsertAfter { anchor, count } => Ok(SpliceResult::Inserted(
                self.insert_many_after(anchor, count)?,
            )),
            Splice::DeleteRun { first, count } => {
                Ok(SpliceResult::Deleted(self.delete_run(first, count)?))
            }
        }
    }
}

impl<S: OrderedLabeling + Instrumented> Instrumented for CheckedScheme<S> {
    fn scheme_stats(&self) -> SchemeStats {
        self.inner.scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        self.inner.reset_scheme_stats();
        // The monotonicity baseline restarts with the counters.
        self.prev_stats = self.inner.scheme_stats();
    }

    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        let mut out = self.inner.stats_breakdown();
        // Surface the audit activity in the same channel the transport
        // counters use, so sweep tables can show auditing cost drivers.
        out.push((
            "audit/runs".to_owned(),
            SchemeStats {
                node_touches: self.audits,
                ..SchemeStats::default()
            },
        ));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn metrics(&self) -> Vec<ltree_core::metrics::Metric> {
        // The auditor adds no timings of its own; the inner stack's
        // histograms pass through so `checked(traced(...))` scrapes.
        self.inner.metrics()
    }
}

// ----------------------------------------------------------------------
// Registry wiring
// ----------------------------------------------------------------------

/// Register the `checked` composite spec:
///
/// * `checked(inner)` — audit `inner` after every mutation;
/// * `checked(inner,every=N)` — audit every `N`-th mutation.
///
/// `inner` is any spec the same registry resolves, recursively —
/// `checked(ltree(4,2))`, `checked(sharded(2,gap))` — and the wrapper
/// itself composes the other way around: `sharded(4,checked(ltree(4,2)))`
/// audits each segment independently. See the grammar in
/// [`ltree_core::registry`].
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_composite(
        "checked",
        "contract auditor over any inner scheme; args: (inner[,every=N])",
        |reg, cfg, args| {
            let Some(SpecArg::Spec(inner)) = args.first() else {
                return Err(LTreeError::InvalidSpec {
                    spec: "checked".into(),
                    reason: "the first argument must be an inner scheme spec",
                });
            };
            let mut opts = SpecOptions::parse("checked", &args[1..])?;
            let every = opts.take_u64("every")?.unwrap_or(1);
            if every == 0 {
                return Err(LTreeError::InvalidOption {
                    spec: "checked".into(),
                    key: "every".into(),
                    reason: "must be at least 1",
                });
            }
            opts.finish()?;
            let inner = reg.build_with(inner, cfg)?;
            Ok(Box::new(CheckedScheme::with_every(inner, every)))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{LTree, Params};

    fn tree() -> LTree {
        LTree::new(Params::new(4, 2).unwrap())
    }

    #[test]
    fn clean_scheme_passes_every_audit() {
        let mut s = CheckedScheme::new(tree());
        let hs = s.bulk_build(10).unwrap();
        s.insert_after(hs[4]).unwrap();
        s.insert_before(hs[0]).unwrap();
        s.insert_first().unwrap();
        s.delete(hs[2]).unwrap();
        let batch = s.insert_many_after(hs[7], 5).unwrap();
        assert_eq!(batch.len(), 5);
        let d = s
            .splice(Splice::DeleteRun {
                first: hs[5],
                count: 3,
            })
            .unwrap()
            .deleted();
        assert_eq!(d, 3);
        assert_eq!(s.audits_run(), 7);
        s.audit().unwrap();
    }

    #[test]
    fn sampling_skips_audits_but_not_shadow_updates() {
        let mut s = CheckedScheme::with_every(tree(), 4);
        let hs = s.bulk_build(8).unwrap(); // mutation 1
        s.insert_after(hs[0]).unwrap(); // 2
        s.insert_after(hs[1]).unwrap(); // 3
        assert_eq!(s.audits_run(), 0);
        s.insert_after(hs[2]).unwrap(); // 4 → audit
        assert_eq!(s.audits_run(), 1);
        // The skipped mutations were still mirrored: a full audit passes.
        s.audit().unwrap();
    }

    #[test]
    fn registry_spec_builds_and_audits() {
        let mut reg = SchemeRegistry::with_builtin();
        register(&mut reg);
        let mut s = reg.build("checked(ltree(4,2),every=2)").unwrap();
        let hs = s.bulk_build(12).unwrap();
        s.splice(Splice::InsertAfter {
            anchor: hs[3],
            count: 7,
        })
        .unwrap();
        assert_eq!(s.live_len(), 19);
        assert_eq!(s.name(), "checked");
        // The audit counter rides the stats breakdown.
        let bd = s.stats_breakdown();
        assert!(bd.iter().any(|(k, _)| k == "audit/runs"));
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        let mut reg = SchemeRegistry::with_builtin();
        register(&mut reg);
        assert!(matches!(
            reg.build("checked(ltree(4,2),every=0)"),
            Err(LTreeError::InvalidOption { .. })
        ));
        assert!(matches!(
            reg.build("checked(every=2)"),
            Err(LTreeError::InvalidSpec { .. })
        ));
        assert!(matches!(
            reg.build("checked(ltree(4,2),bogus=1)"),
            Err(LTreeError::InvalidOption { .. })
        ));
    }

    #[test]
    fn stats_regression_is_reported() {
        // `reset_scheme_stats` on the *inner* scheme behind the
        // auditor's back makes the monotonicity check fire — the same
        // signal a scheme with a buggy counter would produce.
        let mut s = CheckedScheme::new(tree());
        let hs = s.bulk_build(6).unwrap();
        for _ in 0..4 {
            s.insert_after(hs[0]).unwrap();
        }
        assert!(s.scheme_stats().inserts >= 4);
        s.inner.reset_scheme_stats();
        let err = s.insert_after(hs[0]).unwrap_err();
        assert!(matches!(err, LTreeError::ContractViolation { .. }), "{err}");
        assert!(err.to_string().contains("stats went backwards"), "{err}");
    }
}
