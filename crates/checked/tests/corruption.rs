//! Negative tests: `checked(...)` must *report* a corrupted scheme, not
//! rubber-stamp it. `Corrupt<S>` forwards to a healthy inner scheme
//! until a shared switch flips, then lies in one specific way per mode;
//! the auditor has to name the broken clause in its
//! [`LTreeError::ContractViolation`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ltree_checked::CheckedScheme;
use ltree_core::{
    BatchLabeling, Instrumented, LTree, LTreeError, LeafHandle, OrderedLabeling,
    OrderedLabelingMut, Params, Result, SchemeStats, Splice, SpliceResult,
};

/// Which lie the wrapper tells once the switch is on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Lie {
    /// Invert labels: list order appears reversed.
    LabelOrder,
    /// Under-report `live_len` by one.
    LiveLen,
    /// `next_in_order` skips every other item: the cursor loses items.
    CursorSkip,
}

struct Corrupt<S> {
    inner: S,
    lie: Lie,
    lying: Arc<AtomicBool>,
}

impl<S> Corrupt<S> {
    fn lying(&self) -> bool {
        // relaxed: the test flips the flag from the same thread; no ordering needed.
        self.lying.load(Ordering::Relaxed)
    }
}

impl<S: OrderedLabeling> OrderedLabeling for Corrupt<S> {
    fn name(&self) -> &'static str {
        "corrupt"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        let l = self.inner.label_of(h)?;
        if self.lying() && self.lie == Lie::LabelOrder {
            Ok(u128::MAX - l)
        } else {
            Ok(l)
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn live_len(&self) -> usize {
        let n = self.inner.live_len();
        if self.lying() && self.lie == Lie::LiveLen {
            n.saturating_sub(1)
        } else {
            n
        }
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        self.inner.first_in_order()
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        let next = self.inner.next_in_order(h)?;
        if self.lying() && self.lie == Lie::CursorSkip {
            self.inner.next_in_order(next)
        } else {
            Some(next)
        }
    }

    fn label_space_bits(&self) -> u32 {
        self.inner.label_space_bits()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

impl<S: OrderedLabelingMut> OrderedLabelingMut for Corrupt<S> {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        self.inner.bulk_build(n)
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        self.inner.insert_first()
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        self.inner.insert_after(anchor)
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        self.inner.insert_before(anchor)
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        self.inner.delete(h)
    }
}

impl<S: BatchLabeling> BatchLabeling for Corrupt<S> {
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        self.inner.insert_many_after(anchor, k)
    }

    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        self.inner.delete_run(first, count)
    }

    fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
        self.inner.splice(op)
    }
}

impl<S: Instrumented> Instrumented for Corrupt<S> {
    fn scheme_stats(&self) -> SchemeStats {
        self.inner.scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        self.inner.reset_scheme_stats()
    }
}

/// Run a healthy prefix (audits pass), flip the lie on, and return the
/// violation the next audited mutation reports.
fn provoke(lie: Lie) -> LTreeError {
    let switch = Arc::new(AtomicBool::new(false));
    let inner = Corrupt {
        inner: LTree::new(Params::new(4, 2).unwrap()),
        lie,
        lying: Arc::clone(&switch),
    };
    let mut s = CheckedScheme::new(inner);
    let hs = s.bulk_build(12).unwrap();
    s.insert_after(hs[5]).unwrap();
    assert_eq!(s.audits_run(), 2, "healthy audits must pass");

    // relaxed: same-thread flag flip; the next call observes it in program order.
    switch.store(true, Ordering::Relaxed);
    s.insert_after(hs[7]).unwrap_err()
}

#[test]
fn label_order_lie_is_reported() {
    let err = provoke(Lie::LabelOrder);
    assert!(matches!(err, LTreeError::ContractViolation { .. }), "{err}");
    assert!(err.to_string().contains("order"), "{err}");
}

#[test]
fn live_len_lie_is_reported() {
    let err = provoke(Lie::LiveLen);
    assert!(matches!(err, LTreeError::ContractViolation { .. }), "{err}");
    assert!(err.to_string().contains("live_len"), "{err}");
}

#[test]
fn cursor_skip_lie_is_reported() {
    let err = provoke(Lie::CursorSkip);
    assert!(matches!(err, LTreeError::ContractViolation { .. }), "{err}");
    assert!(err.to_string().contains("cursor"), "{err}");
}
