//! # `ltree-obs` — the live observability layer
//!
//! The workspace's counters ([`ltree_core::SchemeStats`],
//! `stats_breakdown()`) count *items*; this crate counts *time*. The
//! paper's claim is amortized relabel cost, and an average is exactly
//! the statistic that hides the spikes a rebalance causes — only
//! latency distributions (tail quantiles) and per-phase timing make the
//! amortization visible. Three pieces:
//!
//! * [`MetricsRegistry`] — named, lock-free [`Counter`]s, [`Gauge`]s
//!   and log-bucketed [`Histogram`]s (32 sub-buckets per octave,
//!   ≤ 1/32 relative quantile error; bucket math in
//!   [`ltree_core::metrics`]). `snapshot()` freezes everything into the
//!   passive [`Metric`] types every other crate already understands.
//! * [`EventLog`] — a fixed-capacity ring buffer of structured spans
//!   ([`Event`]: op kind, duration, monotonic timestamp, [`Outcome`]),
//!   so "what just happened" survives after the fact without unbounded
//!   memory.
//! * [`TracedScheme`] — the `traced(inner[,slow_us=N])` registry
//!   wrapper: every trait-family call is timed into a per-op-kind
//!   histogram (`obs/op/...` names; see ARCHITECTURE.md's Observability
//!   naming table), mutations and slow/failed operations land in the
//!   event log, and the whole stack's metrics surface through
//!   [`Instrumented::metrics`] — composable with `checked`, `durable`,
//!   `sharded` and `served` like every other combinator.
//!
//! [`render_prometheus`] turns any metric snapshot into the text
//! exposition format, which is what `repro metrics <host:port>` prints
//! after scraping a live `LabelServer` over the wire protocol's
//! `Metrics` request.
//!
//! ```
//! use ltree_core::{Instrumented, OrderedLabelingMut, SchemeRegistry};
//!
//! let mut reg = SchemeRegistry::with_builtin();
//! ltree_obs::register(&mut reg);
//! let mut s = reg.build("traced(ltree(4,2))").unwrap();
//! let hs = s.bulk_build(64).unwrap();
//! s.insert_after(hs[10]).unwrap();
//! let metrics = s.metrics();
//! assert!(metrics.iter().any(|m| m.name == "obs/op/insert_after"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ltree_core::metrics::{bucket_index, HistogramSnapshot, Metric, BUCKET_COUNT};
use ltree_core::registry::{SpecArg, SpecOptions};
use ltree_core::{
    BatchLabeling, Instrumented, LTreeError, LeafHandle, OrderedLabeling, OrderedLabelingMut,
    Result, SchemeRegistry, SchemeStats, Splice, SpliceResult,
};

// ----------------------------------------------------------------------
// Instruments
// ----------------------------------------------------------------------

/// A monotone event counter (lock-free).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // relaxed: independent statistic; no other memory is published under it.
        self.0.fetch_add(n, AtomicOrdering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // relaxed: advisory read; scrapes tolerate slight staleness.
        self.0.load(AtomicOrdering::Relaxed)
    }

    /// Zero the counter.
    pub fn reset(&self) {
        // relaxed: reset races with concurrent adds benignly (counts are advisory).
        self.0.store(0, AtomicOrdering::Relaxed);
    }
}

/// A point-in-time level that may go up and down (lock-free).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        // relaxed: last-writer-wins level; nothing synchronizes through it.
        self.0.store(v, AtomicOrdering::Relaxed);
    }

    /// Shift the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        // relaxed: independent level shift; no other memory depends on it.
        self.0.fetch_add(delta, AtomicOrdering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        // relaxed: advisory read; scrapes tolerate slight staleness.
        self.0.load(AtomicOrdering::Relaxed)
    }
}

/// A lock-free log-bucketed histogram over `u64` samples (typically
/// nanoseconds). Fixed bucket space ([`BUCKET_COUNT`] indices), so
/// recording is two relaxed atomic adds and snapshots merge
/// associatively. Quantiles reported from a [`snapshot`](Self::snapshot)
/// are within a relative error of 1/32 of the true sample (see
/// [`ltree_core::metrics`] for the bucket math).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        // relaxed: buckets and sum are independent statistics; snapshot()
        // re-derives the count from buckets, so tearing between them is tolerated.
        self.buckets[bucket_index(v) as usize].fetch_add(1, AtomicOrdering::Relaxed);
        self.sum.fetch_add(v, AtomicOrdering::Relaxed);
    }

    /// Freeze the current contents into a passive snapshot. The count is
    /// derived from the buckets, so quantile ranks are always internally
    /// consistent even under concurrent recording.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            // relaxed: the snapshot is advisory; a sample racing the scan may be missed.
            let n = b.load(AtomicOrdering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((idx as u32, n));
            }
        }
        HistogramSnapshot {
            count,
            // relaxed: sum may tear against buckets under concurrent record; advisory.
            sum: self.sum.load(AtomicOrdering::Relaxed),
            buckets,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        // relaxed: advisory count; a concurrent record may be missed.
        self.buckets
            .iter()
            .map(|b| b.load(AtomicOrdering::Relaxed))
            .sum()
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            // relaxed: reset races with concurrent record benignly.
            b.store(0, AtomicOrdering::Relaxed);
        }
        // relaxed: same as the buckets — the sum is advisory.
        self.sum.store(0, AtomicOrdering::Relaxed);
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named instruments. Handing out `Arc`s keeps the hot
/// path lock-free: callers resolve their instruments once and record
/// without touching the registry again; only registration and
/// [`snapshot`](Self::snapshot) take the internal lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    /// Panics if `name` is already registered as another kind — metric
    /// names are static program structure, so a clash is a bug.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is already registered as a non-counter"),
        }
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is already registered as a non-gauge"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is already registered as a non-histogram"),
        }
    }

    /// Freeze every instrument into a passive [`Metric`] snapshot,
    /// sorted by name (the registry iterates a `BTreeMap`).
    pub fn snapshot(&self) -> Vec<Metric> {
        let map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        map.iter()
            .map(|(name, inst)| match inst {
                Instrument::Counter(c) => Metric::counter(name.clone(), c.get()),
                Instrument::Gauge(g) => Metric::gauge(name.clone(), g.get()),
                Instrument::Histogram(h) => Metric::histogram(name.clone(), h.snapshot()),
            })
            .collect()
    }

    /// Zero every counter and histogram (gauges keep their level: they
    /// describe current state, not accumulated history).
    pub fn reset(&self) {
        let map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        for inst in map.values() {
            match inst {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(_) => {}
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }
}

// ----------------------------------------------------------------------
// Event log
// ----------------------------------------------------------------------

/// How a recorded span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The operation completed normally.
    Ok,
    /// The operation returned an error.
    Err,
    /// The operation completed but exceeded the slow-op threshold.
    Slow,
}

/// One structured span in the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Operation kind (one of the `obs/op/...` names, or a
    /// component-specific span name).
    pub kind: &'static str,
    /// Monotonic timestamp: nanoseconds since the owning component was
    /// created.
    pub at_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// How the span ended.
    pub outcome: Outcome,
}

/// A fixed-capacity ring buffer of [`Event`]s: the most recent
/// `capacity` spans are kept, older ones are dropped (and counted).
#[derive(Debug)]
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl EventLog {
    /// An empty log keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn record(&self, ev: Event) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            // relaxed: eviction statistic only; ring mutations are ordered by the mutex.
            self.dropped.fetch_add(1, AtomicOrdering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        // relaxed: advisory statistic read.
        self.dropped.load(AtomicOrdering::Relaxed)
    }

    /// Drop every retained event and zero the eviction counter.
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).clear();
        // relaxed: the ring lock orders the clear; the counter is advisory.
        self.dropped.store(0, AtomicOrdering::Relaxed);
    }
}

// ----------------------------------------------------------------------
// The traced(...) wrapper
// ----------------------------------------------------------------------

/// Per-op-kind histogram names, indexable by [`Op`]. Every name appears
/// in ARCHITECTURE.md's Observability naming table (xtask rule 6).
const OP_NAMES: [&str; 12] = [
    "obs/op/bulk_build",
    "obs/op/insert_first",
    "obs/op/insert_after",
    "obs/op/insert_before",
    "obs/op/delete",
    "obs/op/insert_many_after",
    "obs/op/delete_run",
    "obs/op/splice",
    "obs/op/label_of",
    "obs/op/compare",
    "obs/op/first_in_order",
    "obs/op/next_in_order",
];

#[derive(Debug, Clone, Copy)]
enum Op {
    BulkBuild = 0,
    InsertFirst,
    InsertAfter,
    InsertBefore,
    Delete,
    InsertManyAfter,
    DeleteRun,
    Splice,
    LabelOf,
    Compare,
    FirstInOrder,
    NextInOrder,
}

impl Op {
    fn is_mutation(self) -> bool {
        matches!(
            self,
            Op::BulkBuild
                | Op::InsertFirst
                | Op::InsertAfter
                | Op::InsertBefore
                | Op::Delete
                | Op::InsertManyAfter
                | Op::DeleteRun
                | Op::Splice
        )
    }
}

/// Default slow-op threshold (`slow_us` option), microseconds.
pub const DEFAULT_SLOW_US: u64 = 1000;

/// Default event-log capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// The `traced(inner[,slow_us=N])` wrapper: times every trait-family
/// call into per-op-kind latency histograms (`obs/op/...`), logs spans
/// for mutations and for any slow or failed operation, and surfaces the
/// stack's metrics through [`Instrumented::metrics`]. Pure forwarding
/// otherwise — counters, breakdowns and list semantics are untouched,
/// so the conformance suite runs `traced(...)` specs unchanged.
#[derive(Debug)]
pub struct TracedScheme<S> {
    inner: S,
    registry: Arc<MetricsRegistry>,
    hists: [Arc<Histogram>; 12],
    slow_ops: Arc<Counter>,
    events: EventLog,
    slow_ns: u64,
    origin: Instant,
}

impl<S> TracedScheme<S> {
    /// Wrap `inner` with the default slow-op threshold
    /// ([`DEFAULT_SLOW_US`] µs).
    pub fn new(inner: S) -> Self {
        Self::with_slow_threshold(inner, DEFAULT_SLOW_US)
    }

    /// Wrap `inner`, marking operations slower than `slow_us`
    /// microseconds as [`Outcome::Slow`] events.
    pub fn with_slow_threshold(inner: S, slow_us: u64) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let hists: [Arc<Histogram>; 12] = std::array::from_fn(|i| registry.histogram(OP_NAMES[i]));
        let slow_ops = registry.counter("obs/events/slow");
        TracedScheme {
            inner,
            registry,
            hists,
            slow_ops,
            events: EventLog::new(DEFAULT_EVENT_CAPACITY),
            slow_ns: slow_us.saturating_mul(1000),
            origin: Instant::now(),
        }
    }

    /// The wrapped scheme.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The wrapper's own metrics registry (shared; scrape-safe).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The retained event spans, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.recent()
    }

    fn span<R>(&self, op: Op, f: impl FnOnce(&S) -> Result<R>) -> Result<R> {
        let start = Instant::now();
        let out = f(&self.inner);
        self.finish(op, start, out.is_err());
        out
    }

    fn span_mut<R>(
        inner: &mut S,
        this: &TracedSpanCtx<'_>,
        op: Op,
        f: impl FnOnce(&mut S) -> Result<R>,
    ) -> Result<R> {
        let start = Instant::now();
        let out = f(inner);
        this.finish(op, start, out.is_err());
        out
    }

    fn finish(&self, op: Op, start: Instant, errored: bool) {
        self.ctx().finish(op, start, errored)
    }

    fn ctx(&self) -> TracedSpanCtx<'_> {
        TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        }
    }
}

/// The recording half of [`TracedScheme`], split out so `&mut self`
/// methods can borrow the inner scheme mutably while recording.
struct TracedSpanCtx<'a> {
    hists: &'a [Arc<Histogram>; 12],
    slow_ops: &'a Arc<Counter>,
    events: &'a EventLog,
    slow_ns: u64,
    origin: Instant,
}

impl TracedSpanCtx<'_> {
    fn finish(&self, op: Op, start: Instant, errored: bool) {
        let dur_ns = start.elapsed().as_nanos() as u64;
        self.hists[op as usize].record(dur_ns);
        let slow = dur_ns >= self.slow_ns;
        if slow {
            self.slow_ops.inc();
        }
        let outcome = if errored {
            Outcome::Err
        } else if slow {
            Outcome::Slow
        } else {
            Outcome::Ok
        };
        // Reads only produce events when noteworthy (slow or failed);
        // mutations always leave a span, so the recent edit history is
        // reconstructible from the ring.
        if op.is_mutation() || slow || errored {
            self.events.record(Event {
                kind: OP_NAMES[op as usize],
                at_ns: self.origin.elapsed().as_nanos() as u64,
                dur_ns,
                outcome,
            });
        }
    }
}

impl<S: OrderedLabeling> OrderedLabeling for TracedScheme<S> {
    fn name(&self) -> &'static str {
        "traced"
    }

    fn label_of(&self, h: LeafHandle) -> Result<u128> {
        self.span(Op::LabelOf, |s| s.label_of(h))
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn live_len(&self) -> usize {
        self.inner.live_len()
    }

    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn first_in_order(&self) -> Option<LeafHandle> {
        let start = Instant::now();
        let out = self.inner.first_in_order();
        self.finish(Op::FirstInOrder, start, false);
        out
    }

    fn next_in_order(&self, h: LeafHandle) -> Option<LeafHandle> {
        let start = Instant::now();
        let out = self.inner.next_in_order(h);
        self.finish(Op::NextInOrder, start, false);
        out
    }

    fn label_space_bits(&self) -> u32 {
        self.inner.label_space_bits()
    }

    fn memory_bytes(&self) -> usize {
        // The dominant wrapper footprint: 12 histograms of fixed bucket
        // arrays plus the event ring.
        self.inner.memory_bytes()
            + self.hists.len() * BUCKET_COUNT as usize * std::mem::size_of::<u64>()
            + DEFAULT_EVENT_CAPACITY * std::mem::size_of::<Event>()
    }

    fn compare(&self, a: LeafHandle, b: LeafHandle) -> Result<Ordering> {
        self.span(Op::Compare, |s| s.compare(a, b))
    }
}

impl<S: OrderedLabelingMut> OrderedLabelingMut for TracedScheme<S> {
    fn bulk_build(&mut self, n: usize) -> Result<Vec<LeafHandle>> {
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::BulkBuild, |s| s.bulk_build(n))
    }

    fn insert_first(&mut self) -> Result<LeafHandle> {
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::InsertFirst, |s| s.insert_first())
    }

    fn insert_after(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::InsertAfter, |s| {
            s.insert_after(anchor)
        })
    }

    fn insert_before(&mut self, anchor: LeafHandle) -> Result<LeafHandle> {
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::InsertBefore, |s| {
            s.insert_before(anchor)
        })
    }

    fn delete(&mut self, h: LeafHandle) -> Result<()> {
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::Delete, |s| s.delete(h))
    }
}

impl<S: BatchLabeling> BatchLabeling for TracedScheme<S> {
    fn insert_many_after(&mut self, anchor: LeafHandle, k: usize) -> Result<Vec<LeafHandle>> {
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::InsertManyAfter, |s| {
            s.insert_many_after(anchor, k)
        })
    }

    fn delete_run(&mut self, first: LeafHandle, count: usize) -> Result<usize> {
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::DeleteRun, |s| {
            s.delete_run(first, count)
        })
    }

    fn splice(&mut self, op: Splice) -> Result<SpliceResult> {
        // Forward to the inner scheme's own splice (which may be a
        // native fast-path) rather than re-dispatching through the
        // default body — and record it under its own kind so batch
        // latency is separable from single-op latency.
        let ctx = TracedSpanCtx {
            hists: &self.hists,
            slow_ops: &self.slow_ops,
            events: &self.events,
            slow_ns: self.slow_ns,
            origin: self.origin,
        };
        Self::span_mut(&mut self.inner, &ctx, Op::Splice, |s| s.splice(op))
    }
}

impl<S: Instrumented> Instrumented for TracedScheme<S> {
    fn scheme_stats(&self) -> SchemeStats {
        self.inner.scheme_stats()
    }

    fn reset_scheme_stats(&mut self) {
        self.inner.reset_scheme_stats();
        // Histograms and spans reset with the counters, so post-reset
        // quantiles describe the same window as the post-reset stats.
        self.registry.reset();
        self.events.clear();
    }

    fn stats_breakdown(&self) -> Vec<(String, SchemeStats)> {
        self.inner.stats_breakdown()
    }

    fn metrics(&self) -> Vec<Metric> {
        let mut out = self.registry.snapshot();
        out.extend(self.inner.metrics());
        ltree_core::metrics::sort_metrics(&mut out);
        out
    }
}

// ----------------------------------------------------------------------
// Registry wiring
// ----------------------------------------------------------------------

/// Register the `traced(inner[,slow_us=N])` composite spec: wraps any
/// inner scheme in a [`TracedScheme`]. `slow_us` (default
/// [`DEFAULT_SLOW_US`]) is the slow-op event threshold in microseconds.
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_composite(
        "traced",
        "latency-tracing wrapper over any inner scheme; args: (inner[,slow_us=N])",
        |reg, cfg, args| {
            let Some((SpecArg::Spec(inner), rest)) = args.split_first() else {
                return Err(LTreeError::InvalidSpec {
                    spec: "traced".into(),
                    reason: "expected an inner scheme spec first, e.g. traced(ltree(4,2))",
                });
            };
            let mut opts = SpecOptions::parse("traced", rest)?;
            let slow_us = opts.take_u64("slow_us")?.unwrap_or(DEFAULT_SLOW_US);
            opts.finish()?;
            let inner = reg.build_with(inner, cfg)?;
            Ok(Box::new(TracedScheme::with_slow_threshold(inner, slow_us)))
        },
    );
}

// ----------------------------------------------------------------------
// Prometheus-style text exposition
// ----------------------------------------------------------------------

/// Sanitize a metric path into the Prometheus name charset
/// (`[a-zA-Z_][a-zA-Z0-9_]*`), prefixing with `ltree_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("ltree_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a metric snapshot as Prometheus-style text exposition:
/// counters as `*_total`, gauges as-is, histograms as summaries with
/// `quantile` labels (p50/p90/p99/p999) plus `_sum` and `_count`.
pub fn render_prometheus(metrics: &[Metric]) -> String {
    use ltree_core::metrics::MetricValue;
    use std::fmt::Write as _;

    let mut out = String::new();
    for m in metrics {
        let name = prom_name(&m.name);
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name}_total counter");
                let _ = writeln!(out, "{name}_total {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} summary");
                for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
                    let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
                }
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::metrics::MetricValue;
    use ltree_core::{LTree, Params};

    fn tree() -> LTree {
        LTree::new(Params::new(4, 2).unwrap())
    }

    fn hist_of(metrics: &[Metric], name: &str) -> HistogramSnapshot {
        match metrics.iter().find(|m| m.name == name) {
            Some(Metric {
                value: MetricValue::Histogram(h),
                ..
            }) => h.clone(),
            other => panic!("no histogram `{name}`: {other:?}"),
        }
    }

    #[test]
    fn registry_hands_out_shared_instruments() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("obs/events/slow");
        let b = reg.counter("obs/events/slow");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("net/active-conns");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        let h = reg.histogram("net/phase/decode");
        h.record(100);
        h.record(200);
        let snap = reg.snapshot();
        // Sorted by name.
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(hist_of(&snap, "net/phase/decode").count, 2);
        reg.reset();
        assert_eq!(a.get(), 0, "counters reset");
        assert_eq!(g.get(), 3, "gauges keep their level");
        assert_eq!(h.count(), 0, "histograms reset");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_is_a_bug() {
        let reg = MetricsRegistry::new();
        reg.counter("obs/events/slow");
        reg.histogram("obs/events/slow");
    }

    #[test]
    fn event_log_is_a_bounded_ring() {
        let log = EventLog::new(3);
        for i in 0..5u64 {
            log.record(Event {
                kind: "obs/op/insert_after",
                at_ns: i,
                dur_ns: i,
                outcome: Outcome::Ok,
            });
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].at_ns, 2, "oldest surviving event");
        assert_eq!(recent[2].at_ns, 4);
        assert_eq!(log.dropped(), 2);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn traced_wrapper_times_every_op_kind() {
        let mut s = TracedScheme::new(tree());
        let hs = s.bulk_build(32).unwrap();
        s.insert_after(hs[3]).unwrap();
        s.insert_before(hs[3]).unwrap();
        s.insert_first().unwrap();
        s.delete(hs[9]).unwrap();
        s.insert_many_after(hs[5], 4).unwrap();
        s.delete_run(hs[20], 2).unwrap();
        s.splice(Splice::InsertAfter {
            anchor: hs[0],
            count: 2,
        })
        .unwrap();
        s.label_of(hs[0]).unwrap();
        s.compare(hs[0], hs[1]).unwrap();
        s.first_in_order().unwrap();
        s.next_in_order(hs[0]).unwrap();
        let metrics = s.metrics();
        for name in OP_NAMES {
            let h = hist_of(&metrics, name);
            assert!(h.count >= 1, "{name} was never recorded");
        }
        // Mutations leave spans in the event ring.
        let events = s.events();
        assert!(events.iter().any(|e| e.kind == "obs/op/insert_after"));
        assert!(events.iter().any(|e| e.kind == "obs/op/splice"));
        // Reads do not (none were slow).
        assert!(!events.iter().any(|e| e.kind == "obs/op/label_of"));
    }

    #[test]
    fn traced_is_transparent_for_stats_and_errors() {
        let mut s = TracedScheme::new(tree());
        let hs = s.bulk_build(8).unwrap();
        s.reset_scheme_stats();
        s.insert_after(hs[2]).unwrap();
        assert_eq!(s.scheme_stats().inserts, 1);
        assert!(s.stats_breakdown().is_empty(), "no synthetic components");
        // Errors pass through typed and land as Err events.
        assert!(matches!(
            s.insert_after(LeafHandle(u64::MAX)),
            Err(LTreeError::UnknownHandle)
        ));
        assert!(s
            .events()
            .iter()
            .any(|e| e.outcome == Outcome::Err && e.kind == "obs/op/insert_after"));
        // Reset clears the timing state alongside the counters.
        s.reset_scheme_stats();
        assert_eq!(s.scheme_stats().inserts, 0);
        assert!(s.events().is_empty());
        assert_eq!(
            hist_of(&s.metrics(), "obs/op/insert_after").count,
            0,
            "histograms reset with the stats"
        );
    }

    #[test]
    fn slow_threshold_zero_marks_everything_slow() {
        let mut s = TracedScheme::with_slow_threshold(tree(), 0);
        let hs = s.bulk_build(4).unwrap();
        s.label_of(hs[0]).unwrap();
        let slow = s
            .metrics()
            .iter()
            .find_map(|m| match (&m.name[..], &m.value) {
                ("obs/events/slow", MetricValue::Counter(v)) => Some(*v),
                _ => None,
            })
            .unwrap();
        assert!(slow >= 2, "bulk_build + label_of at threshold 0");
        assert!(s
            .events()
            .iter()
            .any(|e| e.outcome == Outcome::Slow && e.kind == "obs/op/label_of"));
    }

    #[test]
    fn spec_builds_and_rejects_bad_shapes() {
        let mut reg = SchemeRegistry::with_builtin();
        register(&mut reg);
        let mut s = reg.build("traced(ltree(4,2))").unwrap();
        assert_eq!(s.name(), "traced");
        s.bulk_build(8).unwrap();
        assert!(!s.metrics().is_empty());
        let mut s = reg.build("traced(ltree(4,2),slow_us=5)").unwrap();
        s.bulk_build(8).unwrap();
        for bad in ["traced", "traced()", "traced(7)"] {
            assert!(
                matches!(reg.build(bad), Err(LTreeError::InvalidSpec { .. })),
                "{bad} must be rejected"
            );
        }
        assert!(matches!(
            reg.build("traced(ltree,slow_us=fast)"),
            Err(LTreeError::InvalidOption { .. })
        ));
        assert!(matches!(
            reg.build("traced(ltree,bogus=1)"),
            Err(LTreeError::InvalidOption { .. })
        ));
    }

    /// Satellite property test: for fuzzed sample sets spanning many
    /// magnitudes, every reported quantile must be within the log-bucket
    /// relative-error bound of the exact (sorted-sample) quantile.
    #[test]
    fn quantile_error_is_within_the_bucket_bound() {
        use ltree_core::rng::SplitMix64;
        for seed in 0..20u64 {
            let mut rng = SplitMix64::new(0x9E37_79B9 ^ seed);
            let n = 1 + rng.gen_range(0..2000);
            let h = Histogram::new();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix magnitudes: unit-range, mid-range, and full-range
                // values so both exact and log-bucketed paths are hit.
                let v = match rng.gen_range(0..3) {
                    0 => rng.next_u64() % 32,
                    1 => rng.next_u64() % 1_000_000,
                    _ => rng.next_u64() >> (rng.gen_range(0..48) as u32),
                };
                samples.push(v);
                h.record(v);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, n as u64);
            for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((n - 1) as f64 * q).floor() as usize;
                let exact = samples[rank];
                let got = snap.quantile(q);
                // The reported value is the representative of the bucket
                // holding the exact sample: off by at most the bucket
                // width, i.e. a 1/32 relative error (±1 below 32).
                let bound = (exact / 32).max(1);
                assert!(
                    got.abs_diff(exact) <= bound,
                    "seed {seed} n {n} q {q}: got {got}, exact {exact}, bound {bound}"
                );
            }
        }
    }

    /// Satellite property test: merging histograms is associative (and
    /// order-insensitive) — required for the sharded metrics roll-up.
    #[test]
    fn merge_is_associative() {
        use ltree_core::rng::SplitMix64;
        for seed in 0..10u64 {
            let mut rng = SplitMix64::new(seed);
            let parts: Vec<HistogramSnapshot> = (0..3)
                .map(|_| {
                    let h = Histogram::new();
                    for _ in 0..rng.gen_range(0..200) {
                        h.record(rng.next_u64() >> (rng.gen_range(0..40) as u32));
                    }
                    h.snapshot()
                })
                .collect();
            // (a ⊔ b) ⊔ c
            let mut left = parts[0].clone();
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            // a ⊔ (b ⊔ c)
            let mut bc = parts[1].clone();
            bc.merge(&parts[2]);
            let mut right = parts[0].clone();
            right.merge(&bc);
            assert_eq!(left, right, "seed {seed}");
            assert_eq!(
                left.count,
                parts.iter().map(|p| p.count).sum::<u64>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn prometheus_rendering_covers_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("net/requests").add(7);
        reg.gauge("net/active-conns").set(2);
        let h = reg.histogram("net/phase/apply");
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("ltree_net_requests_total 7"));
        assert!(text.contains("ltree_net_active_conns 2"));
        assert!(text.contains("ltree_net_phase_apply{quantile=\"0.5\"}"));
        assert!(text.contains("ltree_net_phase_apply_count 5"));
        assert!(text.contains("# TYPE ltree_net_phase_apply summary"));
    }
}
