//! The lint must fail on seeded violations (fixtures) and pass on the
//! live workspace — both directions, so a rule that silently stops
//! firing breaks the build just like a rule violation does.

use std::path::{Path, PathBuf};

use xtask::lexer::lex;
use xtask::model::SourceFile;
use xtask::{
    archdoc, check_atomics, check_crate_attrs, check_fixed_paths, check_fixed_ports,
    check_lock_unwrap, check_metric_names, check_spec_strings_rs, check_wire_tags,
    documented_metric_names, lint_workspace, lint_workspace_rules, lock_cycle_findings, lock_edges,
    render_json,
};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Load one fixture as a model [`SourceFile`], the shape every
/// token-based rule consumes.
fn fixture(name: &str) -> SourceFile {
    let path = fixtures_dir().join(name);
    let content = std::fs::read_to_string(&path).expect("fixture exists");
    let tokens = lex(&content);
    SourceFile {
        rel: name.to_string(),
        crate_name: None,
        in_tests: name.contains("tests/"),
        path,
        content,
        tokens,
    }
}

#[test]
fn seeded_missing_attrs_are_flagged() {
    let f = fixture("bad_lib.rs");
    let findings = check_crate_attrs(&f.path, &f.content);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("forbid(unsafe_code)")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("deny(missing_docs)")));
}

#[test]
fn seeded_fixed_port_is_flagged_but_os_assigned_is_not() {
    let f = fixture("tests/bad_test.rs");
    let findings = check_fixed_ports(&f);
    assert_eq!(findings.len(), 1, "{findings:?}");
    // (Port spelled without the host so this assertion is not itself a
    // fixed-port finding — tests/ dirs are in the rule's scan scope.)
    assert!(findings[0].message.contains("7878"));
}

#[test]
fn seeded_lock_unwrap_is_flagged() {
    let f = fixture("tests/bad_test.rs");
    let findings = check_lock_unwrap(&f);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("into_inner"));
}

#[test]
fn seeded_fixed_path_is_flagged_but_derived_scratch_dirs_are_not() {
    let f = fixture("tests/bad_test.rs");
    let findings = check_fixed_paths(&f);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("ltree-test"), "{findings:?}");
    assert!(findings[0].message.contains("scratch_dir"), "{findings:?}");
}

#[test]
fn seeded_bad_spec_is_flagged_and_healthy_spans_are_not() {
    let f = fixture("bad_docs.rs");
    let reg = ltree::default_registry();
    let findings = check_spec_strings_rs(&f, &reg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("no-such-scheme"),
        "{findings:?}"
    );
}

#[test]
fn seeded_undocumented_metric_name_is_flagged_but_table_rows_cover_families() {
    let f = fixture("bad_metrics.rs");
    // A miniature naming table: an exact row and an `<i>` family row.
    let documented = vec![
        "net/requests".to_string(),
        "net/conn<i>/round-trips".to_string(),
    ];
    let findings = check_metric_names(&f, &documented);
    assert_eq!(findings.len(), 1, "{findings:?}");
    // (Name assembled at runtime so this test is not itself a finding.)
    let bad = ["obs", "op", "no_such_op"].join("/");
    assert!(findings[0].message.contains(&bad), "{findings:?}");
    assert!(findings[0].rule == "metric-names");
}

// ------------------------------------------------------------------
// Token migration regression: the old substring scanner flagged rule
// patterns inside comments and string literals; the token-based rules
// must not.
// ------------------------------------------------------------------

#[test]
fn rule_patterns_inside_comments_and_strings_are_not_findings() {
    let f = fixture("false_positives.rs");
    assert!(check_fixed_ports(&f).is_empty(), "R2 false positive");
    assert!(check_lock_unwrap(&f).is_empty(), "R3 false positive");
    assert!(check_fixed_paths(&f).is_empty(), "R5 false positive");
    // An empty naming table makes every minted name a finding — so zero
    // findings proves the quoted names were never treated as minted.
    assert!(check_metric_names(&f, &[]).is_empty(), "R6 false positive");
    assert!(check_atomics(&f).is_empty(), "R8 false positive");
}

// ------------------------------------------------------------------
// R7 · lock-order
// ------------------------------------------------------------------

#[test]
fn seeded_lock_order_cycle_is_flagged_with_both_sites() {
    let f = fixture("bad_lock_order.rs");
    let findings = lock_cycle_findings(&lock_edges(&f));
    assert_eq!(findings.len(), 1, "{findings:?}");
    let msg = &findings[0].message;
    assert!(msg.contains("`recv` then `send`"), "{msg}");
    assert!(msg.contains("`send` then `recv`"), "{msg}");
    // Both lock sites are named file:line — the forward acquisition of
    // `send` (line 7) and the backward acquisition of `recv` (line 14).
    assert!(msg.contains("bad_lock_order.rs:7"), "{msg}");
    assert!(msg.contains("bad_lock_order.rs:14"), "{msg}");
    assert_eq!(findings[0].rule, "lock-order");
}

// ------------------------------------------------------------------
// R8 · atomics-audit
// ------------------------------------------------------------------

#[test]
fn seeded_atomics_violations_are_flagged_and_the_healthy_case_is_not() {
    let f = fixture("bad_atomics.rs");
    let findings = check_atomics(&f);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|x| x.line == 10 && x.message.contains("why-comment")),
        "doc comment must not satisfy the audit: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|x| x.line == 15 && x.message.contains("deny-by-default")),
        "unjustified SeqCst: {findings:?}"
    );
}

// ------------------------------------------------------------------
// R10 · wire-tags
// ------------------------------------------------------------------

#[test]
fn seeded_wire_tag_drift_is_flagged() {
    let f = fixture("bad_wire.rs");
    let table =
        archdoc::parse_wire_tags("[xtask:wire-error-tags]\n0 = UnknownHandle\n2 = EmptyTree\n")
            .expect("table parses");
    let findings = check_wire_tags(&f, None, &table);
    let msgs: Vec<&str> = findings.iter().map(|x| x.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("tag 0 to both `UnknownHandle` and `DeletedLeaf`")),
        "duplicate encode tag: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("tag 2 encodes `EmptyTree` but decodes `NotEmpty`")),
        "encode/decode drift: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("tag 7 (`Remote`) is decoded but never encoded")),
        "decode-only tag: {msgs:?}"
    );
    assert!(findings.iter().all(|x| x.rule == "wire-tags"));
}

// ------------------------------------------------------------------
// End-to-end over the fixture mini-workspace: R1/R2/R3/R5/R7/R8/R9,
// the escape hatch, `--rule` filtering and the `--json` output, all
// through the same `lint_workspace` entry point CI uses.
// ------------------------------------------------------------------

fn ws_root() -> PathBuf {
    fixtures_dir().join("ws")
}

#[test]
fn fixture_workspace_yields_the_expected_findings() {
    let findings = lint_workspace(&ws_root()).expect("fixture ws readable");
    let brief: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.rule, f.path.display(), f.line))
        .collect();

    let count = |rule: &str| findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(count("crate-attrs"), 2, "{brief:?}");
    assert_eq!(count("fixed-port"), 1, "{brief:?}");
    assert_eq!(count("lock-unwrap"), 1, "{brief:?}");
    assert_eq!(count("fixed-path"), 1, "{brief:?}");
    assert_eq!(count("lock-order"), 1, "{brief:?}");
    assert_eq!(count("atomics-audit"), 1, "{brief:?}");
    assert_eq!(count("crate-layering"), 2, "{brief:?}");
    assert_eq!(count("xtask-allow"), 1, "{brief:?}");
    assert_eq!(findings.len(), 10, "{brief:?}");

    // The two-lock cycle names both sites of the seeded deadlock.
    let cycle = findings.iter().find(|f| f.rule == "lock-order").unwrap();
    assert!(cycle.message.contains("Queues::recv"), "{}", cycle.message);
    assert!(cycle.message.contains("Queues::send"), "{}", cycle.message);

    // R9 fires on the undeclared edge in both the manifest and the use.
    let layering: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "crate-layering")
        .collect();
    assert!(
        layering.iter().any(|f| f.path.ends_with("Cargo.toml")),
        "{brief:?}"
    );
    assert!(
        layering.iter().any(|f| f.path.ends_with("lib.rs")),
        "{brief:?}"
    );

    // The justified hatch suppressed the bare Relaxed in allowed.rs:
    // the only atomics finding is the SeqCst one in src/lib.rs.
    let atomics = findings.iter().find(|f| f.rule == "atomics-audit").unwrap();
    assert!(atomics.path.ends_with("lib.rs"), "{brief:?}");

    // Every finding reports a real file and line.
    for f in &findings {
        assert!(f.path.exists(), "finding path vanished: {f}");
    }
}

#[test]
fn rule_filtering_restricts_the_run() {
    let only = vec!["lock-order".to_string()];
    let findings = lint_workspace_rules(&ws_root(), &only).expect("fixture ws readable");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "lock-order");
}

#[test]
fn json_output_parses_and_lists_every_finding() {
    let findings = lint_workspace(&ws_root()).expect("fixture ws readable");
    let json = render_json(&findings);
    let parsed = ltree_bench::json::Json::parse(&json).expect("lint --json output parses");
    assert_eq!(
        parsed.get("count").and_then(|c| c.as_u64()),
        Some(findings.len() as u64)
    );
    let listed = parsed
        .get("findings")
        .and_then(|f| f.as_array())
        .expect("findings array");
    assert_eq!(listed.len(), findings.len());
    for (entry, f) in listed.iter().zip(&findings) {
        assert_eq!(entry.get("rule").and_then(|v| v.as_str()), Some(f.rule));
        assert_eq!(
            entry.get("line").and_then(|v| v.as_u64()),
            Some(f.line as u64)
        );
        let file = entry.get("file").and_then(|v| v.as_str()).expect("file");
        assert!(f.path.display().to_string() == file, "{file}");
    }
}

// ------------------------------------------------------------------
// Live workspace: the architecture tables stay load-bearing and the
// tree stays clean under all ten rules.
// ------------------------------------------------------------------

#[test]
fn the_architecture_naming_table_covers_the_live_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("ARCHITECTURE.md")).expect("doc exists");
    let documented = documented_metric_names(&text);
    // The table documents at least the big families; an empty scrape of
    // the doc would make rule 6 vacuously fire on everything.
    for expected in ["net/requests", "wal/fsync-duration", "audit/runs"] {
        assert!(
            documented.iter().any(|d| d == expected),
            "naming table lost `{expected}`: {documented:?}"
        );
    }
    assert!(documented.iter().any(|d| d.starts_with("obs/op/")));
}

#[test]
fn the_architecture_machine_sections_parse() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("ARCHITECTURE.md")).expect("doc exists");
    let graph = archdoc::parse_crate_graph(&text).expect("crate graph parses");
    assert!(graph.declares("ltree-core"));
    assert!(graph.allows("ltree-remote", "ltree-obs", false));
    assert!(
        !graph.allows("ltree-obs", "ltree-remote", false),
        "obs must stay core-only"
    );
    let tags = archdoc::parse_wire_tags(&text).expect("wire tags parse");
    assert_eq!(tags.tags.get(&0).map(String::as_str), Some("UnknownHandle"));
    assert!(tags.canonicalized.contains("InvalidParams"));
}

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "live workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
