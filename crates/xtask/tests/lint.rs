//! The lint must fail on seeded violations (fixtures) and pass on the
//! live workspace — both directions, so a rule that silently stops
//! firing breaks the build just like a rule violation does.

use std::path::{Path, PathBuf};

use xtask::{
    check_crate_attrs, check_fixed_paths, check_fixed_ports, check_lock_unwrap, check_metric_names,
    check_spec_strings, documented_metric_names, lint_workspace,
};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).expect("fixture exists");
    (path, content)
}

#[test]
fn seeded_missing_attrs_are_flagged() {
    let (path, content) = fixture("bad_lib.rs");
    let findings = check_crate_attrs(&path, &content);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("forbid(unsafe_code)")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("deny(missing_docs)")));
}

#[test]
fn seeded_fixed_port_is_flagged_but_os_assigned_is_not() {
    let (path, content) = fixture("tests/bad_test.rs");
    let findings = check_fixed_ports(&path, &content);
    assert_eq!(findings.len(), 1, "{findings:?}");
    // (Port spelled without the host so this assertion is not itself a
    // fixed-port finding — tests/ dirs are in the rule's scan scope.)
    assert!(findings[0].message.contains("7878"));
}

#[test]
fn seeded_lock_unwrap_is_flagged() {
    let (path, content) = fixture("tests/bad_test.rs");
    let findings = check_lock_unwrap(&path, &content);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("into_inner"));
}

#[test]
fn seeded_fixed_path_is_flagged_but_derived_scratch_dirs_are_not() {
    let (path, content) = fixture("tests/bad_test.rs");
    let findings = check_fixed_paths(&path, &content);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("ltree-test"), "{findings:?}");
    assert!(findings[0].message.contains("scratch_dir"), "{findings:?}");
}

#[test]
fn seeded_bad_spec_is_flagged_and_healthy_spans_are_not() {
    let (path, content) = fixture("bad_docs.rs");
    let reg = ltree::default_registry();
    let findings = check_spec_strings(&path, &content, &reg, false);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("no-such-scheme"),
        "{findings:?}"
    );
}

#[test]
fn seeded_undocumented_metric_name_is_flagged_but_table_rows_cover_families() {
    let (path, content) = fixture("bad_metrics.rs");
    // A miniature naming table: an exact row and an `<i>` family row.
    let documented = vec![
        "net/requests".to_string(),
        "net/conn<i>/round-trips".to_string(),
    ];
    let findings = check_metric_names(&path, &content, &documented);
    assert_eq!(findings.len(), 1, "{findings:?}");
    // (Name assembled at runtime so this test is not itself a finding.)
    let bad = ["obs", "op", "no_such_op"].join("/");
    assert!(findings[0].message.contains(&bad), "{findings:?}");
    assert!(findings[0].rule == "metric-names");
}

#[test]
fn the_architecture_naming_table_covers_the_live_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("ARCHITECTURE.md")).expect("doc exists");
    let documented = documented_metric_names(&text);
    // The table documents at least the big families; an empty scrape of
    // the doc would make rule 6 vacuously fire on everything.
    for expected in ["net/requests", "wal/fsync-duration", "audit/runs"] {
        assert!(
            documented.iter().any(|d| d == expected),
            "naming table lost `{expected}`: {documented:?}"
        );
    }
    assert!(documented.iter().any(|d| d.starts_with("obs/op/")));
}

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "live workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
