//! Seeded R8 violations: an ordering with no adjacent why-comment and
//! an unjustified `SeqCst`. The healthy case proves a nearby non-doc
//! comment satisfies the rule.

use std::sync::atomic::{AtomicU64, Ordering};

/// Doc comments describe the API, not the ordering choice — this one
/// must NOT satisfy the audit.
pub fn bare(x: &AtomicU64) -> u64 {
    x.load(Ordering::Relaxed)
}

pub fn unjustified(x: &AtomicU64) {
    // a total order felt nice (no seqcst marker, so this fails)
    x.store(1, Ordering::SeqCst);
}

pub fn healthy(x: &AtomicU64) -> u64 {
    // acquire: pairs with the fixture's imaginary release store
    x.load(Ordering::Acquire)
}
