//! Seeded violation: a crate root missing both required lint
//! attributes (`crate-attrs` rule). Never compiled — the lint's own
//! tests feed this file to the rule functions.

pub fn undocumented_and_unprotected() {}
