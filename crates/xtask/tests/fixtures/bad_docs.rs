//! Seeded violations for the `spec-grammar` rule. Never compiled.
//!
//! A registered composite wrapping an unregistered inner scheme:
//! `sharded(2,no-such-scheme(4))` must be flagged, while the healthy
//! `sharded(2,ltree(4,2))` and non-spec code spans like
//! `Params::new(4, 2)` must not.
