//! Seeded violation for the `metric-names` rule: mints a series name
//! that no naming table documents (plus healthy names that are).

fn main() {
    let documented = "net/requests";
    let family = "net/conn7/round-trips";
    let prefix_filter = "obs/op/";
    let undocumented = "obs/op/no_such_op";
    let _ = (documented, family, prefix_filter, undocumented);
}
