//! Seeded R7 violation: two functions acquire the same two locks in
//! opposite orders — a genuine deadlock the interleaving explorer
//! could only find if both paths happened to be modeled.

fn forward(recv: &std::sync::Mutex<Vec<u8>>, send: &std::sync::Mutex<Vec<u8>>) {
    let r = recv.lock();
    let s = send.lock();
    drop(s);
    drop(r);
}

fn backward(recv: &std::sync::Mutex<Vec<u8>>, send: &std::sync::Mutex<Vec<u8>>) {
    let s = send.lock();
    let r = recv.lock();
    drop(r);
    drop(s);
}
