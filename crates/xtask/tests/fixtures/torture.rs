//! Lexer torture fixture: every nasty token class in one file.
/* outer /* nested /* deeper */ still nested */ outer again */
//// Four slashes: a plain line comment, not rustdoc.
/*** three stars: plain block comment ***/
/**/
pub fn torture<'a, 'b: 'a>(x: &'a str) -> char {
    let _r = r#"raw "with quotes" and \no escapes"#;
    let _r2 = r##"one hash "# inside"##;
    let _b = b"bytes \x00\n";
    let _bc = b'\xff';
    let _rb = br#"raw bytes "with quotes""#;
    let _c = 'a';
    let _esc = '\n';
    let _q = '\'';
    let _life: &'a str = x;
    let _range = 0..10;
    let _float = 1.5e3;
    let _hex = 0xFF_u64;
    let r#type = 7usize;
    let _ = r#type;
    // line comment with 'a lifetime-looking text and "quotes"
    let _s = "escaped \" quote and \\ backslash";
    let _multi = "a string
spanning lines";
    _c
}
