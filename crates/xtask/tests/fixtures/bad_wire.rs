//! Seeded R10 violations: a duplicate encode tag, an encode/decode
//! disagreement, and a tag that is decoded but never encoded. (Never
//! compiled — only lexed by the wire-tag extractor.)

fn put_error(b: &mut Vec<u8>, e: &LTreeError) {
    match e {
        LTreeError::UnknownHandle { handle } => {
            put_u8(b, 0);
            put_u64(b, *handle);
        }
        LTreeError::DeletedLeaf { handle } => {
            put_u8(b, 0);
            put_u64(b, *handle);
        }
        LTreeError::EmptyTree => {
            put_u8(b, 2);
        }
    }
}

fn decode_error(buf: &[u8]) -> LTreeError {
    match tag {
        0 => LTreeError::UnknownHandle { handle },
        2 => LTreeError::NotEmpty,
        7 => LTreeError::Remote { context },
        _ => unreachable!(),
    }
}
