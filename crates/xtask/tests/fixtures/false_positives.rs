//! Regression fixture for the old false-positive classes: every
//! pattern below lives in a comment or a string literal, and the
//! token-based rules (R2/R3/R5/R6) must report ZERO findings here.
//!
//! Rustdoc may quote anything: dial `127.0.0.1:7878`, unlink
//! `/tmp/somewhere`, chain `.lock().unwrap()`, mint `net/nope` — none
//! of these are code.

// Plain comments too: a port like 127.0.0.1:7878, a path like
// /tmp/ltree-scratch, a chain like .write().unwrap(), and a quoted
// series name like "net/not-a-real-series".

/* Block comments as well: localhost:9999 and /var/run/ltree and
   .read().unwrap() — still not findings. */

pub fn healthy() {
    // A string literal may *mention* the lock-unwrap chain — it is
    // prose, not a call chain, once the rule reads tokens:
    let _doc = "never call .lock().unwrap() — recover the poison instead";
    // Raw strings can hold comment-looking text with the same chains:
    let _raw = r#"
        // .read().unwrap() inside a raw string
    "#;
}
