//! Seeded violations in a tests dir: a fixed TCP port (R2), a
//! poison-propagating unwrap (R3) and a fixed filesystem path (R5).

#[test]
fn bad() {
    let _addr = "127.0.0.1:7878";
    let _path = "/tmp/ltree-fixture";
    let _v = m.lock().unwrap();
}
