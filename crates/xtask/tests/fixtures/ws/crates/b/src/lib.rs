//! Fixture crate `wb`: uses `wa` although the declared crate graph
//! does not permit the edge (R9 fires on the manifest and the `use`).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use wa::thing;
