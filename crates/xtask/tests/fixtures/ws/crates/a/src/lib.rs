//! Fixture crate `wa`: fully clean.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A healthy item.
pub fn thing() -> u32 {
    1
}
