//! A justified escape hatch: the bare-ordering finding below is
//! suppressed for this file, and nothing else is.

// xtask-allow: atomics-audit — fixture proving a justified hatch suppresses findings

use std::sync::atomic::{AtomicU64, Ordering};

pub fn quiet(x: &AtomicU64) -> u64 {
    x.load(Ordering::Relaxed)
}
