//! Fixture crate root: missing both lint attributes (R1), carrying a
//! genuine two-lock ordering cycle (R7) and an unjustified `SeqCst`
//! (R8).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub struct Queues {
    pub recv: Mutex<Vec<u8>>,
    pub send: Mutex<Vec<u8>>,
    pub halt: AtomicBool,
}

impl Queues {
    pub fn forward(&self) {
        let r = self.recv.lock();
        let s = self.send.lock();
        drop(s);
        drop(r);
    }

    pub fn backward(&self) {
        let s = self.send.lock();
        let r = self.recv.lock();
        drop(r);
        drop(s);
    }

    pub fn stop(&self) {
        self.halt.store(true, Ordering::SeqCst);
    }
}
