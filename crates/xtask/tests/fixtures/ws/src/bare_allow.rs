//! An unjustified escape hatch: produces an `xtask-allow` finding and
//! suppresses nothing.

// xtask-allow: fixed-port
