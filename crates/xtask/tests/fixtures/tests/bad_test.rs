//! Seeded violations for the `fixed-port`, `lock-unwrap` and
//! `fixed-path` rules. Never compiled — the lint's own tests feed this
//! file to the rule functions (and the workspace walker skips
//! `fixtures/` directories).

fn bad_port() {
    let server = LabelServer::bind("127.0.0.1:7878");
    let ok = TcpListener::bind("127.0.0.1:0"); // OS-assigned: allowed
    let _ = (server, ok);
}

fn bad_lock(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn bad_path() {
    let wal = std::path::Path::new("/tmp/ltree-test/wal.log");
    let ok = ltree::remote::scratch_dir("wal"); // derived at runtime: allowed
    let also_ok = std::env::temp_dir().join("x"); // allowed
    let _ = (wal, ok, also_ok);
}
