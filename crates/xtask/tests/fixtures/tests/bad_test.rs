//! Seeded violations for the `fixed-port` and `lock-unwrap` rules.
//! Never compiled — the lint's own tests feed this file to the rule
//! functions (and the workspace walker skips `fixtures/` directories).

fn bad_port() {
    let server = LabelServer::bind("127.0.0.1:7878");
    let ok = TcpListener::bind("127.0.0.1:0"); // OS-assigned: allowed
    let _ = (server, ok);
}

fn bad_lock(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
