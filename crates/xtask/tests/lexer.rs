//! Lexer contract tests: a torture fixture round-tripped token by
//! token, classification spot-checks for every nasty token class, and a
//! SplitMix64 fuzz asserting the lexer is total — never panics, spans
//! in-bounds and monotone — over random byte mutations of real
//! workspace files.

use std::path::Path;

use ltree::rng::SplitMix64;
use xtask::lexer::{lex, string_value, TokKind, Token};

fn torture_src() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/torture.rs");
    std::fs::read_to_string(path).expect("torture fixture exists")
}

/// The losslessness invariant: spans are monotone, non-overlapping and
/// in-bounds, and every byte between tokens is whitespace.
fn assert_covered(src: &str, tokens: &[Token]) {
    let bytes = src.as_bytes();
    let mut cursor = 0usize;
    let mut line = 1u32;
    for tok in tokens {
        assert!(tok.start >= cursor, "overlap at {tok}");
        assert!(tok.end > tok.start, "empty span at {tok}");
        assert!(tok.end <= src.len(), "out of bounds at {tok}");
        for &b in &bytes[cursor..tok.start] {
            assert!(
                b.is_ascii_whitespace(),
                "uncovered byte {b:#x} before {tok}"
            );
        }
        let expected_line = line + count_newlines(&bytes[cursor..tok.start]);
        assert_eq!(tok.line, expected_line, "line drift at {tok}");
        line = expected_line + count_newlines(&bytes[tok.start..tok.end]);
        cursor = tok.end;
    }
    for &b in &bytes[cursor..] {
        assert!(b.is_ascii_whitespace(), "uncovered trailing byte {b:#x}");
    }
}

fn count_newlines(bytes: &[u8]) -> u32 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u32
}

#[test]
fn torture_fixture_round_trips_token_by_token() {
    let src = torture_src();
    let tokens = lex(&src);
    assert_covered(&src, &tokens);
    // Reconstruction: token texts joined by the original gaps equal the
    // source, byte for byte.
    let mut rebuilt = String::new();
    let mut cursor = 0usize;
    for tok in &tokens {
        rebuilt.push_str(&src[cursor..tok.start]);
        rebuilt.push_str(tok.text(&src));
        cursor = tok.end;
    }
    rebuilt.push_str(&src[cursor..]);
    assert_eq!(rebuilt, src);
}

/// Find the first token whose text matches, panicking with the full
/// stream on a miss so failures are diagnosable.
fn find<'a>(tokens: &'a [Token], src: &str, text: &str) -> &'a Token {
    tokens
        .iter()
        .find(|t| t.text(src) == text)
        .unwrap_or_else(|| panic!("no token `{text}` in {tokens:?}"))
}

#[test]
fn torture_fixture_classifies_every_nasty_class() {
    let src = torture_src();
    let tokens = lex(&src);

    // Nested block comment: one token spanning all three levels.
    let nested = find(
        &tokens,
        &src,
        "/* outer /* nested /* deeper */ still nested */ outer again */",
    );
    assert_eq!(nested.kind, TokKind::BlockComment);

    // `////` and `/***` are plain comments, not rustdoc.
    assert_eq!(
        find(
            &tokens,
            &src,
            "//// Four slashes: a plain line comment, not rustdoc."
        )
        .kind,
        TokKind::LineComment
    );
    assert_eq!(
        find(&tokens, &src, "/*** three stars: plain block comment ***/").kind,
        TokKind::BlockComment
    );
    // `/**/` is empty, hence a plain block comment.
    assert_eq!(find(&tokens, &src, "/**/").kind, TokKind::BlockComment);
    // `//!` inner doc on line 1.
    assert_eq!(tokens[0].kind, TokKind::LineDoc);

    // Raw strings at both hash depths, verbatim values.
    let raw = find(
        &tokens,
        &src,
        r####"r#"raw "with quotes" and \no escapes"#"####,
    );
    assert_eq!(raw.kind, TokKind::RawStr);
    assert_eq!(
        string_value(raw, &src).as_deref(),
        Some(r#"raw "with quotes" and \no escapes"#)
    );
    assert_eq!(
        find(&tokens, &src, r####"r##"one hash "# inside"##"####).kind,
        TokKind::RawStr
    );

    // Byte strings, byte chars, raw byte strings.
    assert_eq!(
        find(&tokens, &src, r#"b"bytes \x00\n""#).kind,
        TokKind::ByteStr
    );
    assert_eq!(find(&tokens, &src, r"b'\xff'").kind, TokKind::ByteChar);
    assert_eq!(
        find(&tokens, &src, r####"br#"raw bytes "with quotes""#"####).kind,
        TokKind::RawByteStr
    );

    // Chars vs lifetimes — including escaped quote and newline chars.
    assert_eq!(find(&tokens, &src, "'a'").kind, TokKind::Char);
    assert_eq!(find(&tokens, &src, r"'\n'").kind, TokKind::Char);
    assert_eq!(find(&tokens, &src, r"'\''").kind, TokKind::Char);
    assert_eq!(find(&tokens, &src, "'a").kind, TokKind::Lifetime);
    assert_eq!(find(&tokens, &src, "'b").kind, TokKind::Lifetime);

    // Numbers: range operator not swallowed, float exponent, hex with
    // suffix, integer with suffix.
    assert_eq!(find(&tokens, &src, "0").kind, TokKind::Num);
    assert_eq!(find(&tokens, &src, "10").kind, TokKind::Num);
    assert_eq!(find(&tokens, &src, "1.5e3").kind, TokKind::Num);
    assert_eq!(find(&tokens, &src, "0xFF_u64").kind, TokKind::Num);
    assert_eq!(find(&tokens, &src, "7usize").kind, TokKind::Num);

    // Raw identifier.
    assert_eq!(find(&tokens, &src, "r#type").kind, TokKind::RawIdent);

    // Escapes inside ordinary strings unescape, multi-line strings are
    // one token.
    let esc = find(&tokens, &src, r#""escaped \" quote and \\ backslash""#);
    assert_eq!(esc.kind, TokKind::Str);
    assert_eq!(
        string_value(esc, &src).as_deref(),
        Some(r#"escaped " quote and \ backslash"#)
    );
    let multi = find(&tokens, &src, "\"a string\nspanning lines\"");
    assert_eq!(multi.kind, TokKind::Str);
}

#[test]
fn unterminated_constructs_lex_to_end_of_input() {
    for src in [
        "/* never closed",
        "\"never closed",
        "r#\"never closed",
        "b'",
        "// fine\n/* open /* nested",
    ] {
        let tokens = lex(src);
        assert_covered(src, &tokens);
    }
}

// ------------------------------------------------------------------
// Fuzz: mutate real workspace files byte by byte and assert the lexer
// stays total. Deterministic seeds so failures reproduce.
// ------------------------------------------------------------------

#[test]
fn fuzzed_mutations_of_real_files_never_break_the_lexer() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sources = [
        manifest.join("src/lexer.rs"),
        manifest.join("src/rules.rs"),
        manifest.join("tests/fixtures/torture.rs"),
        manifest.join("../core/src/error.rs"),
        manifest.join("../remote/src/wire.rs"),
    ];
    for (i, path) in sources.iter().enumerate() {
        let original = std::fs::read_to_string(path).expect("source exists");
        let mut rng = SplitMix64::new(0xA11C_E5ED ^ (i as u64));
        for round in 0..40 {
            let mut bytes = original.clone().into_bytes();
            // Up to eight random byte substitutions per round — enough
            // to split string delimiters, break comment closers and
            // truncate escapes.
            let edits = 1 + (rng.next_u64() % 8) as usize;
            for _ in 0..edits {
                let at = (rng.next_u64() as usize) % bytes.len();
                bytes[at] = (rng.next_u64() & 0xFF) as u8;
            }
            // Invalid UTF-8 becomes U+FFFD — the lexer only ever sees
            // valid strings, like the model layer guarantees.
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            let tokens = lex(&mutated);
            let mut cursor = 0usize;
            for tok in &tokens {
                assert!(
                    tok.start >= cursor && tok.end > tok.start && tok.end <= mutated.len(),
                    "bad span {tok} (file {}, round {round})",
                    path.display()
                );
                cursor = tok.end;
            }
        }
    }
}
