//! The workspace model: every source file read and lexed **once**,
//! crate manifests parsed, function items located — the compact derived
//! structure the semantic rules query instead of rescanning the raw
//! tree (the same move the ancestry-labeling line of work makes for
//! tree queries: answer structural questions from a derived model).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};

/// One lexed workspace source file. The token stream is produced once
/// at load time and shared by every rule (the old linter re-read and
/// re-scanned the tree once per rule).
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path.
    pub path: PathBuf,
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Name of the workspace package owning this file, when known.
    pub crate_name: Option<String>,
    /// Is the file inside a directory literally named `tests`?
    pub in_tests: bool,
    /// Raw content.
    pub content: String,
    /// Complete token stream (comments included).
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Tokens that are not comments — the stream most structural rules
    /// pattern-match over.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| !t.kind.is_comment())
    }
}

/// One workspace crate as declared by its `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct CrateManifest {
    /// Package name (`[package] name`).
    pub name: String,
    /// Manifest directory relative to the workspace root (`""` for the
    /// root package).
    pub dir: String,
    /// `[dependencies]` keys.
    pub deps: Vec<String>,
    /// `[dev-dependencies]` keys.
    pub dev_deps: Vec<String>,
    /// 1-based manifest lines of each `[dependencies]` entry, keyed by
    /// dep name (for findings that point at the manifest).
    pub dep_lines: BTreeMap<String, usize>,
}

/// The loaded workspace: files, manifests, and the architecture doc.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Every `.rs` file outside `target/`, dot-dirs and `fixtures/`,
    /// lexed, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Markdown files the doc rules scan: `(path, content)` for
    /// `ARCHITECTURE.md` and every `README.md`.
    pub markdown: Vec<(PathBuf, String)>,
    /// Workspace crate manifests (root package included, when present).
    pub crates: Vec<CrateManifest>,
    /// `ARCHITECTURE.md` content, when the root has one.
    pub architecture: Option<String>,
}

/// Is this a path component the walker never descends into?
/// (`fixtures/` holds the lint's own seeded violations.)
fn skipped_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if !skipped_dir(&name) {
                walk(&path, out)?;
            }
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Minimal `Cargo.toml` reader: package name plus the keys of
/// `[dependencies]` / `[dev-dependencies]`. The workspace is
/// dependency-free, so every entry is a `key = { path = … }` or
/// `key = "…"` line — a full TOML parser is not needed.
fn parse_manifest(dir_rel: &str, text: &str) -> Option<CrateManifest> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    let mut dep_lines = BTreeMap::new();
    let mut section = "";
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line;
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        match section {
            "[package]" if key == "name" => {
                name = line[eq + 1..].trim().trim_matches('"').to_string().into();
            }
            "[dependencies]" => {
                deps.push(key.to_string());
                dep_lines.insert(key.to_string(), idx + 1);
            }
            "[dev-dependencies]" => {
                dev_deps.push(key.to_string());
                dep_lines.entry(key.to_string()).or_insert(idx + 1);
            }
            _ => {}
        }
    }
    Some(CrateManifest {
        name: name?,
        dir: dir_rel.to_string(),
        deps,
        dev_deps,
        dep_lines,
    })
}

impl Workspace {
    /// Walk and read the workspace rooted at `root` — each file read
    /// and lexed exactly once.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        walk(root, &mut paths)?;
        paths.sort();

        let mut crates = Vec::new();
        if let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) {
            if let Some(m) = parse_manifest("", &text) {
                crates.push(m);
            }
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in fs::read_dir(&crates_dir)? {
                let dir = entry?.path();
                let manifest = dir.join("Cargo.toml");
                if let Ok(text) = fs::read_to_string(&manifest) {
                    let dir_rel = format!(
                        "crates/{}",
                        dir.file_name()
                            .map(|n| n.to_string_lossy())
                            .unwrap_or_default()
                    );
                    if let Some(m) = parse_manifest(&dir_rel, &text) {
                        crates.push(m);
                    }
                }
            }
        }

        let mut files = Vec::new();
        let mut markdown = Vec::new();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            match path.extension().and_then(|e| e.to_str()) {
                Some("rs") => {
                    let content = fs::read_to_string(&path)?;
                    let tokens = lex(&content);
                    let crate_name = owning_crate(&rel, &crates);
                    let in_tests = rel.split('/').any(|c| c == "tests");
                    files.push(SourceFile {
                        path,
                        rel,
                        crate_name,
                        in_tests,
                        content,
                        tokens,
                    });
                }
                Some("md") => {
                    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    if name == "ARCHITECTURE.md" || name == "README.md" {
                        markdown.push((path.clone(), fs::read_to_string(&path)?));
                    }
                }
                _ => {}
            }
        }

        let architecture = fs::read_to_string(root.join("ARCHITECTURE.md")).ok();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            markdown,
            crates,
            architecture,
        })
    }

    /// The manifest for `name`, if any.
    pub fn manifest(&self, name: &str) -> Option<&CrateManifest> {
        self.crates.iter().find(|c| c.name == name)
    }
}

/// Which workspace package owns a file at `rel`? Files under
/// `crates/<dir>/` belong to that crate; everything else (root `src/`,
/// `tests/`, `examples/`) belongs to the root package.
fn owning_crate(rel: &str, crates: &[CrateManifest]) -> Option<String> {
    for c in crates {
        if !c.dir.is_empty() && rel.starts_with(&format!("{}/", c.dir)) {
            return Some(c.name.clone());
        }
    }
    crates
        .iter()
        .find(|c| c.dir.is_empty())
        .map(|c| c.name.clone())
}

/// One function item located in a token stream: its name, the type of
/// the innermost enclosing `impl` block (if any), and the token-index
/// range of its body (braces included).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type of the innermost enclosing `impl`, last path segment
    /// (`impl Instrumented for ShardedScheme<S>` → `ShardedScheme`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, `{` and `}` included.
    pub body: Range<usize>,
}

#[derive(Debug)]
enum Scope {
    Impl(String),
    Fn { item: usize },
    Other,
}

/// Locate every `fn` item (with a body) in `file`, attributing each to
/// its innermost enclosing `impl` type. Signature parsing tracks paren
/// and angle-bracket depth so generic bounds and `->` arrows never
/// confuse the body-brace search; a `;` before the body (trait method
/// declarations) abandons the candidate.
pub fn fn_items(file: &SourceFile) -> Vec<FnItem> {
    let src = &file.content;
    let toks: Vec<(usize, &Token)> = file
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_comment())
        .collect();
    let mut items: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // A pending `fn`: (name, line, paren depth, angle depth).
    let mut pending_fn: Option<(String, u32, i32, i32)> = None;

    let mut k = 0;
    while k < toks.len() {
        let (idx, tok) = toks[k];
        let text = tok.text(src);
        match tok.kind {
            TokKind::Ident if text == "impl" && pending_fn.is_none() => {
                pending_impl = Some(parse_impl_type(&toks, k + 1, src));
            }
            TokKind::Ident if text == "fn" && pending_fn.is_none() => {
                let name = toks
                    .get(k + 1)
                    .filter(|(_, t)| matches!(t.kind, TokKind::Ident | TokKind::RawIdent))
                    .map(|(_, t)| t.text(src).trim_start_matches("r#").to_string());
                if let Some(name) = name {
                    pending_fn = Some((name, tok.line, 0, 0));
                    k += 2;
                    continue;
                }
            }
            TokKind::Punct => {
                let c = text.as_bytes()[0];
                if let Some((name, line, paren, angle)) = pending_fn.as_mut() {
                    match c {
                        b'(' | b'[' => *paren += 1,
                        b')' | b']' => *paren -= 1,
                        b'<' if *paren == 0 => *angle += 1,
                        b'>' if *paren == 0 => {
                            // `->` and `=>` are arrows, not closers.
                            let prev = k.checked_sub(1).map(|p| toks[p].1.text(src)).unwrap_or("");
                            if prev != "-" && prev != "=" {
                                *angle = (*angle - 1).max(0);
                            }
                        }
                        b';' if *paren == 0 && *angle == 0 => {
                            pending_fn = None; // bodyless declaration
                        }
                        b'{' if *paren == 0 && *angle == 0 => {
                            let impl_type = scopes.iter().rev().find_map(|s| match s {
                                Scope::Impl(t) => Some(t.clone()),
                                _ => None,
                            });
                            items.push(FnItem {
                                name: name.clone(),
                                impl_type,
                                line: *line,
                                body: idx..idx, // end patched at `}`
                            });
                            let item = items.len() - 1;
                            pending_fn = None;
                            scopes.push(Scope::Fn { item });
                            k += 1;
                            continue;
                        }
                        _ => {}
                    }
                } else if c == b'{' {
                    scopes.push(match pending_impl.take() {
                        Some(t) => Scope::Impl(t),
                        None => Scope::Other,
                    });
                } else if c == b'}' {
                    if let Some(Scope::Fn { item }) = scopes.pop() {
                        items[item].body.end = idx + 1;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Unterminated bodies (truncated input) extend to the last token.
    let end = file.tokens.len();
    for item in &mut items {
        if item.body.end <= item.body.start {
            item.body.end = end;
        }
    }
    items
}

/// Parse the self type of an `impl` header starting at `toks[k]`:
/// skip the generic parameter list, then take the last path segment of
/// the type — and if a top-level `for` follows (trait impls), take the
/// type after it instead.
fn parse_impl_type(toks: &[(usize, &Token)], mut k: usize, src: &str) -> String {
    let mut angle = 0i32;
    let mut last_seg = String::new();
    while k < toks.len() {
        let t = toks[k].1;
        let text = t.text(src);
        match text {
            "<" => angle += 1,
            ">" => {
                let prev = k.checked_sub(1).map(|p| toks[p].1.text(src)).unwrap_or("");
                if prev != "-" && prev != "=" {
                    angle = (angle - 1).max(0);
                }
            }
            "{" | "where" if angle == 0 => break,
            "for" if angle == 0 => last_seg.clear(),
            _ if t.kind == TokKind::Ident && angle == 0 => last_seg = text.to_string(),
            _ => {}
        }
        k += 1;
    }
    last_seg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(content: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::from("mem.rs"),
            rel: "mem.rs".into(),
            crate_name: None,
            in_tests: false,
            content: content.to_string(),
            tokens: lex(content),
        }
    }

    #[test]
    fn fn_items_find_bodies_and_impl_types() {
        let f = file(
            "impl<S: Scheme> Instrumented for Sharded<S> {\n\
             fn stats(&self) -> u64 { self.n }\n\
             }\n\
             fn free(x: Vec<u8>) -> Result<(), E> { drop(x); Ok(()) }\n\
             trait T { fn decl(&self); }\n",
        );
        let items = fn_items(&f);
        let names: Vec<_> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["stats", "free"]);
        assert_eq!(items[0].impl_type.as_deref(), Some("Sharded"));
        assert_eq!(items[1].impl_type, None);
        // Body ranges cover the braces.
        let body: Vec<_> = f.tokens[items[1].body.clone()]
            .iter()
            .map(|t| t.text(&f.content))
            .collect();
        assert_eq!(body.first().copied(), Some("{"));
        assert_eq!(body.last().copied(), Some("}"));
    }

    #[test]
    fn manifests_parse_name_and_dep_keys() {
        let m = parse_manifest(
            "crates/x",
            "[package]\nname = \"x\"\n[dependencies]\na = { path = \"../a\" }\n\
             [dev-dependencies]\nb = { path = \"../b\" }\n",
        )
        .unwrap();
        assert_eq!(m.name, "x");
        assert_eq!(m.deps, vec!["a"]);
        assert_eq!(m.dev_deps, vec!["b"]);
        assert_eq!(m.dep_lines["a"], 4);
    }
}
