//! Machine-read sections of `ARCHITECTURE.md`.
//!
//! Two conventions make the architecture doc *load-bearing* instead of
//! descriptive prose that drifts:
//!
//! * **`[xtask:crate-graph]`** — the declared crate dependency graph.
//!   One `name = dep dep …` line per workspace package; a following
//!   `[xtask:crate-graph.dev]` section declares the extra edges
//!   `[dev-dependencies]` (tests/examples) may add. Rule 9
//!   (`crate-layering`) fails the build on any `Cargo.toml` or `use`
//!   edge the graph does not permit.
//! * **`[xtask:wire-error-tags]`** — the `LTreeError`-variant ↔ wire
//!   tag table, `tag = Variant` per line plus one
//!   `canonicalized = Variant …` line for the variants
//!   `wire_error` folds into `Remote` before encoding. Rule 10
//!   (`wire-tags`) cross-checks it against the encode and decode paths
//!   in `wire.rs` and the `LTreeError` enum itself.
//!
//! Both parsers return `Err(reason)` on a missing or malformed section
//! — the lint surfaces that as a finding, so an edit that breaks the
//! machine-read shape fails CI the same way a bad edge does.

use std::collections::{BTreeMap, BTreeSet};

/// The declared crate dependency graph.
#[derive(Debug, Default, Clone)]
pub struct CrateGraph {
    /// Permitted `[dependencies]` edges: crate → set of dep names.
    pub edges: BTreeMap<String, BTreeSet<String>>,
    /// Extra edges permitted only for dev contexts (`[dev-dependencies]`,
    /// code under `tests/` / `examples/` / `benches/`).
    pub dev_edges: BTreeMap<String, BTreeSet<String>>,
}

impl CrateGraph {
    /// Is `from → to` permitted? `dev` widens the check to the
    /// dev-dependency edges.
    pub fn allows(&self, from: &str, to: &str, dev: bool) -> bool {
        if from == to {
            return true;
        }
        let main = self.edges.get(from).is_some_and(|s| s.contains(to));
        let devd = dev && self.dev_edges.get(from).is_some_and(|s| s.contains(to));
        main || devd
    }

    /// Is `name` declared at all (has a graph row)?
    pub fn declares(&self, name: &str) -> bool {
        self.edges.contains_key(name)
    }
}

fn crate_name_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
}

/// Parse the `[xtask:crate-graph]` (and optional
/// `[xtask:crate-graph.dev]`) section out of the architecture doc.
pub fn parse_crate_graph(text: &str) -> Result<CrateGraph, String> {
    let mut graph = CrateGraph::default();
    #[derive(PartialEq)]
    enum State {
        Seeking,
        Main,
        Dev,
    }
    let mut state = State::Seeking;
    let mut seen = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        match line {
            "[xtask:crate-graph]" => {
                state = State::Main;
                seen = true;
                continue;
            }
            "[xtask:crate-graph.dev]" => {
                state = State::Dev;
                continue;
            }
            _ => {}
        }
        if state == State::Seeking {
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if line.starts_with("```") {
            state = State::Seeking; // fence closed the block
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!(
                "line {}: expected `name = deps…`, got `{line}`",
                idx + 1
            ));
        };
        let name = line[..eq].trim();
        if !crate_name_ok(name) {
            return Err(format!("line {}: bad crate name `{name}`", idx + 1));
        }
        let mut deps = BTreeSet::new();
        for dep in line[eq + 1..].split_whitespace() {
            if !crate_name_ok(dep) {
                return Err(format!("line {}: bad dep name `{dep}`", idx + 1));
            }
            deps.insert(dep.to_string());
        }
        let map = match state {
            State::Dev => &mut graph.dev_edges,
            _ => &mut graph.edges,
        };
        if map.insert(name.to_string(), deps).is_some() {
            return Err(format!("line {}: duplicate row for `{name}`", idx + 1));
        }
    }
    if !seen {
        return Err("no [xtask:crate-graph] section found".into());
    }
    Ok(graph)
}

/// The declared wire-tag table.
#[derive(Debug, Default, Clone)]
pub struct WireTagTable {
    /// tag → `LTreeError` variant name.
    pub tags: BTreeMap<u8, String>,
    /// Variants `wire_error` canonicalizes away before encoding.
    pub canonicalized: BTreeSet<String>,
}

/// Parse the `[xtask:wire-error-tags]` section out of the architecture
/// doc.
pub fn parse_wire_tags(text: &str) -> Result<WireTagTable, String> {
    let mut table = WireTagTable::default();
    let mut in_section = false;
    let mut seen = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line == "[xtask:wire-error-tags]" {
            in_section = true;
            seen = true;
            continue;
        }
        if !in_section {
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if line.starts_with("```") || line.starts_with('[') {
            in_section = false;
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!(
                "line {}: expected `tag = Variant`, got `{line}`",
                idx + 1
            ));
        };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        if key == "canonicalized" {
            for v in val.split_whitespace() {
                table.canonicalized.insert(v.to_string());
            }
            continue;
        }
        let tag: u8 = key
            .parse()
            .map_err(|_| format!("line {}: bad tag `{key}`", idx + 1))?;
        if val.is_empty() || !val.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Err(format!("line {}: bad variant name `{val}`", idx + 1));
        }
        if table.tags.insert(tag, val.to_string()).is_some() {
            return Err(format!("line {}: duplicate tag `{tag}`", idx + 1));
        }
    }
    if !seen {
        return Err("no [xtask:wire-error-tags] section found".into());
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_graph_parses_main_and_dev_sections() {
        let doc = "\
prose\n```text\n[xtask:crate-graph]\na =\nb = a\n[xtask:crate-graph.dev]\nb = c\n```\nmore\n";
        let g = parse_crate_graph(doc).unwrap();
        assert!(g.allows("b", "a", false));
        assert!(!g.allows("a", "b", false));
        assert!(!g.allows("b", "c", false));
        assert!(g.allows("b", "c", true));
        assert!(g.allows("a", "a", false), "self edges always allowed");
        assert!(g.declares("a") && !g.declares("c"));
    }

    #[test]
    fn malformed_graph_rows_error() {
        assert!(parse_crate_graph("[xtask:crate-graph]\nnot a row\n").is_err());
        assert!(parse_crate_graph("[xtask:crate-graph]\nBad = a\n").is_err());
        assert!(parse_crate_graph("no section").is_err());
        assert!(parse_crate_graph("[xtask:crate-graph]\na =\na =\n").is_err());
    }

    #[test]
    fn wire_tags_parse_and_reject_duplicates() {
        let t = parse_wire_tags(
            "[xtask:wire-error-tags]\n0 = UnknownHandle\n1 = DeletedLeaf\n\
             canonicalized = InvalidSpec InvalidParams\n```\n",
        )
        .unwrap();
        assert_eq!(t.tags[&0], "UnknownHandle");
        assert!(t.canonicalized.contains("InvalidSpec"));
        assert!(parse_wire_tags("[xtask:wire-error-tags]\n0 = A\n0 = B\n").is_err());
        assert!(parse_wire_tags("[xtask:wire-error-tags]\nx = A\n").is_err());
        assert!(parse_wire_tags("nothing").is_err());
    }
}
